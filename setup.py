"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; this shim lets
``python setup.py develop`` provide the same editable install through
setuptools' legacy path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
