"""Bench the island engine: migration overhead on a full-mesh archipelago.

The island engine (DESIGN.md §10) runs reference dynamics per island
plus a migration layer — one uniform per recipe step on islands with
inbound edges, and a borrow-import path when the coin hits.  This bench
times one 3-island cell three ways and pins the contract the feature
must keep:

* **isolated serial** — baseline: each island run alone through the
  reference engine on its own dynamics stream, in series;
* **mesh rate=0** — the archipelago loop with migration compiled in
  but never firing; must stay **bit-identical** to the isolated runs
  (the §10 determinism contract);
* **mesh rate=0.1** — the tripwire mode: migration actually firing;
  may cost at most the isolated wall-clock times the documented slack.

Two entry points:

* pytest (CI smoke)::

      PYTHONPATH=src python -m pytest benchmarks/bench_islands.py -q

* standalone, e.g. the CI tripwire::

      PYTHONPATH=src python benchmarks/bench_islands.py --fast --check
"""

from __future__ import annotations

import argparse
import os
import time

from _results import smoke_write_enabled, write_bench_result
from repro.lexicon.builder import standard_lexicon
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.islands import (
    IslandSimulation,
    MigrationTopology,
    island_seed_streams,
)
from repro.models.params import CuisineSpec
from repro.rng import ensure_rng, spawn_seeds
from repro.synthesis.worldgen import WorldKitchen

#: Overhead tripwire budget: the full-mesh archipelago may cost at most
#: the isolated-serial wall-clock times this slack, plus a small
#: absolute allowance for timer noise at smoke sizes.  The slack is the
#: *documented migration overhead*: one uniform per recipe step, the
#: borrow-import path on hits, and the round-robin bookkeeping.
MIGRATION_SLACK = 2.5
MIGRATION_NOISE_SECONDS = 0.75

#: The per-edge rate of the tripwire mesh.
TRIPWIRE_RATE = 0.1

_REGIONS = ("ITA", "GRC", "SP")


def _bench_specs(scale: float) -> list[CuisineSpec]:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=20190408)
    dataset = kitchen.generate_dataset(region_codes=_REGIONS, scale=scale)
    return [
        CuisineSpec.from_view(dataset.cuisine(code), lexicon)
        for code in _REGIONS
    ]


def _signature(run) -> tuple:
    return (run.transactions, run.final_pool_size, run.trace.__dict__)


def migration_budget(isolated_seconds: float) -> float:
    """Seconds the tripwire mesh pass may take before failing."""
    return isolated_seconds * MIGRATION_SLACK + MIGRATION_NOISE_SECONDS


def run_islands_comparison(
    n_runs: int, scale: float, seed: int = 7
) -> dict:
    """Time a 3-island cell: isolated serial vs rate-0 vs live mesh."""
    specs = _bench_specs(scale)
    model = CopyMutateRandom()
    masters = spawn_seeds(ensure_rng(seed), n_runs)

    # Baseline: every island alone, reference engine, in series, on the
    # exact dynamics streams the archipelago would give it.
    start = time.perf_counter()
    isolated_signatures = []
    for master in masters:
        for spec in specs:
            dynamics_seed, _ = island_seed_streams(master, spec.region_code)
            run = model.run(spec, seed=dynamics_seed, engine="reference")
            isolated_signatures.append(_signature(run))
    isolated_seconds = time.perf_counter() - start

    # Rate-0 mesh: the archipelago loop with migration never firing.
    zero_mesh = IslandSimulation(
        model, specs, MigrationTopology.full_mesh(_REGIONS, 0.0)
    )
    start = time.perf_counter()
    zero_signatures = []
    for master in masters:
        outcome = zero_mesh.run(seed=master)
        for spec in specs:
            zero_signatures.append(_signature(outcome.runs[spec.region_code]))
    zero_seconds = time.perf_counter() - start

    # Live mesh: the tripwire mode.
    live_mesh = IslandSimulation(
        model,
        specs,
        MigrationTopology.full_mesh(_REGIONS, TRIPWIRE_RATE),
    )
    start = time.perf_counter()
    borrow_events = 0
    for master in masters:
        outcome = live_mesh.run(seed=master)
        borrow_events += sum(outcome.borrow_events.values())
    mesh_seconds = time.perf_counter() - start

    timings = {
        "isolated serial": isolated_seconds,
        "mesh rate=0": zero_seconds,
        f"mesh rate={TRIPWIRE_RATE}": mesh_seconds,
    }
    cell_runs = n_runs * len(specs)
    rows = [
        {
            "mode": label,
            "seconds": seconds,
            "overhead": (
                seconds / isolated_seconds if isolated_seconds > 0 else 1.0
            ),
            "runs_per_second": (
                cell_runs / seconds if seconds > 0 else float("inf")
            ),
        }
        for label, seconds in timings.items()
    ]
    return {
        "cell": (
            f"ISL(CM-R) x {len(specs)} islands x {n_runs} archipelagos "
            f"(scale {scale})"
        ),
        "n_runs": n_runs,
        "n_islands": len(specs),
        "cpu_count": os.cpu_count() or 1,
        "bit_identical": zero_signatures == isolated_signatures,
        "borrow_events": borrow_events,
        "isolated_seconds": isolated_seconds,
        "mesh_seconds": mesh_seconds,
        "mesh_budget_seconds": migration_budget(isolated_seconds),
        "rows": rows,
    }


def _render(result: dict) -> str:
    lines = [
        f"islands: {result['cell']} ({result['cpu_count']} cores); "
        f"rate-0 bit-identical: {result['bit_identical']}; "
        f"borrows at rate={TRIPWIRE_RATE}: {result['borrow_events']}",
        f"{'mode':<18}{'seconds':>10}{'overhead':>10}{'runs/s':>10}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['mode']:<18}{row['seconds']:>10.3f}"
            f"{row['overhead']:>9.2f}x{row['runs_per_second']:>10.1f}"
        )
    lines.append(
        f"overhead tripwire: {result['mesh_seconds']:.3f}s vs "
        f"budget {result['mesh_budget_seconds']:.3f}s"
    )
    return "\n".join(lines)


def _check(result: dict) -> str | None:
    """The --check predicate; returns a failure message or ``None``."""
    if not result["bit_identical"]:
        return "FAIL: rate-0 mesh diverges from isolated reference runs"
    if result["borrow_events"] == 0:
        return f"FAIL: no borrows at rate={TRIPWIRE_RATE}"
    if result["mesh_seconds"] > result["mesh_budget_seconds"]:
        return (
            f"FAIL: full-mesh pass {result['mesh_seconds']:.3f}s exceeded "
            f"the isolated-serial budget "
            f"{result['mesh_budget_seconds']:.3f}s"
        )
    return None


def test_migration_overhead_stays_bounded(benchmark):
    """Pytest entry: overhead matrix plus the bit-identity tripwire."""
    n_runs = int(os.environ.get("REPRO_BENCH_RUNS", "4"))
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
    result = benchmark.pedantic(
        run_islands_comparison,
        args=(n_runs, scale),
        rounds=1,
        iterations=1,
    )
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("islands", result)
    failure = _check(result)
    assert failure is None, failure


def main(argv: list[str] | None = None) -> int:
    """Standalone comparison (and the CI ``--fast --check`` tripwire)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=12,
                        help="archipelago executions (default: 12)")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke sizing (scale 0.1, 4 runs) for CI tripwires",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit 1 unless the rate-0 mesh is bit-identical to isolated "
            "runs, migration actually fires, and the full mesh stays "
            "within the isolated-serial budget"
        ),
    )
    args = parser.parse_args(argv)
    scale = 0.1 if args.fast else args.scale
    n_runs = 4 if args.fast else args.runs
    result = run_islands_comparison(n_runs, scale, seed=args.seed)
    print(_render(result))
    # --fast is the CI tripwire; only full-size runs may replace the
    # committed acceptance artifact.
    if not args.fast or smoke_write_enabled():
        write_bench_result("islands", result)
    failure = _check(result)
    if failure is not None:
        print(failure)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
