"""Micro-benchmarks for the hot components under the experiments.

These are genuine performance benchmarks (multiple rounds) covering the
pipeline stages whose cost dominates the table/figure regeneration:
corpus synthesis, mention resolution, itemset mining and single model
runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.itemsets import apriori, eclat, ingredient_transactions
from repro.models.params import CuisineSpec
from repro.models.registry import create_model
from repro.synthesis.noise import MentionRenderer
from repro.synthesis.worldgen import WorldKitchen


@pytest.fixture(scope="module")
def ita_transactions(world_context):
    return ingredient_transactions(world_context.dataset.cuisine("ITA"))


def test_corpus_generation(benchmark, lexicon):
    kitchen = WorldKitchen(lexicon, seed=1)

    def generate():
        return kitchen.generate_cuisine("ITA", n_recipes=2000)

    recipes = benchmark(generate)
    assert len(recipes) == 2000


def test_mention_resolution(benchmark, lexicon):
    renderer = MentionRenderer(seed=2)
    mentions = [
        renderer.render(ingredient) for ingredient in list(lexicon)[:200]
    ]

    def resolve_all():
        return [lexicon.resolve(mention) for mention in mentions]

    resolutions = benchmark(resolve_all)
    assert sum(1 for r in resolutions if r.ingredient is not None) > 190


def test_eclat_mining(benchmark, ita_transactions):
    result = benchmark(eclat, ita_transactions, 0.05)
    assert len(result) > 10


def test_apriori_mining(benchmark, ita_transactions):
    result = benchmark(apriori, ita_transactions, 0.05)
    assert len(result) > 10


def test_fpgrowth_mining(benchmark, ita_transactions):
    from repro.analysis.itemsets import fpgrowth

    result = benchmark(fpgrowth, ita_transactions, 0.05)
    assert len(result) > 10


@pytest.mark.parametrize("model_name", ["CM-R", "CM-C", "CM-M", "NM"])
def test_single_model_run(benchmark, world_context, model_name):
    view = world_context.dataset.cuisine("GRC")
    spec = CuisineSpec.from_view(view, world_context.lexicon)
    model = create_model(model_name)

    def run():
        return model.run(spec, seed=3)

    run_result = benchmark(run)
    assert run_result.n_recipes == spec.n_recipes


def test_nutrition_table_build(benchmark, lexicon):
    from repro.nutrition import build_nutrition_table

    table = benchmark(build_nutrition_table, lexicon, 5)
    assert len(table) == len(lexicon)


def test_recipe_generation(benchmark, world_context):
    from repro.generation import GenerationConstraints, RecipeGenerator

    view = world_context.dataset.cuisine("GRC")
    spec = CuisineSpec.from_view(view, world_context.lexicon)
    run = create_model("CM-C").run(spec, seed=9)
    generator = RecipeGenerator(
        run, world_context.lexicon, reference=view.as_id_sets()
    )
    constraints = GenerationConstraints(
        include=("olive oil",), exclude_categories=("Meat",),
        min_size=5, max_size=9,
    )

    def generate():
        return generator.generate(constraints, seed=11)

    recipe = benchmark(generate)
    assert "olive oil" in recipe.names
