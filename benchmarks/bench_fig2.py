"""Bench ``fig2``: per-category usage boxplots across cuisines.

Paper reference (Fig. 2): Vegetable, Additive, Spice, Dairy, Herb, Plant
and Fruit are used more frequently than other categories; INSC/AFR are
spice-heavy where JPN/ANZ/IRL are not; SCND/FRA/IRL are dairy-heavy where
JPN/SEA/THA/KOR are not.
"""

from __future__ import annotations

from repro.experiments.fig2 import run_fig2
from repro.lexicon.categories import Category


def bench_run(context):
    return run_fig2(context)


def test_fig2(benchmark, world_context):
    result = benchmark.pedantic(
        bench_run, args=(world_context,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    spice_heavy, spice_light = result.spice_contrast()
    dairy_heavy, dairy_light = result.dairy_contrast()
    assert spice_heavy > spice_light
    assert dairy_heavy > dairy_light
    expected_dominant = {
        Category.VEGETABLE, Category.ADDITIVE, Category.SPICE,
        Category.DAIRY, Category.HERB, Category.PLANT, Category.FRUIT,
    }
    assert len(set(result.dominant) & expected_dominant) >= 5
