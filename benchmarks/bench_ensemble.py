"""Bench ``ensemble``: cross-run throughput, per-run vectorized vs batched.

``bench_algorithm1`` tracks the speed of one run; this bench tracks the
quantity the paper protocol actually spends — the wall-clock of a whole
100-run same-cell ensemble.  For each paper model it times

* the per-run baseline: a serial loop of ``engine="vectorized"`` runs,
  discarding each result (the best a single core does run-by-run), and
* the batched engine: one ``run_batched`` pass advancing every run at
  once through stacked arrays (DESIGN.md §7),

then verifies — outside the timed regions — that the batched runs are
bit-identical to their per-run vectorized counterparts, run by run.

The acceptance target is a ≥3× batched speedup for every model at the
paper-scale cell (100 runs, ITA at scale 1.0) on a single core.
Results are written to ``BENCH_ensemble.json`` at the repo root so the
perf trajectory is tracked across PRs.

Methodology notes: timings are best-of-``repeats`` with the cyclic GC
disabled inside the timed regions (the per-run baseline allocates
millions of small containers, and allocator/GC state otherwise bleeds
between measurements); each timed region discards its results so
neither engine pays the other's liveness.

Entry points:

* pytest (CI smoke; sized by ``REPRO_BENCH_SCALE``)::

      PYTHONPATH=src python -m pytest benchmarks/bench_ensemble.py -q

* standalone — the acceptance run (full scale) or the CI perf tripwire
  (``--fast --check`` exits 1 if batching loses or identity breaks)::

      PYTHONPATH=src python benchmarks/bench_ensemble.py
      PYTHONPATH=src python benchmarks/bench_ensemble.py --fast --check
"""

from __future__ import annotations

import argparse
import gc
import os
import time

from _results import smoke_write_enabled, write_bench_result
from repro.lexicon.builder import standard_lexicon
from repro.models.batched import run_batched
from repro.models.params import CuisineSpec
from repro.models.registry import PAPER_MODELS, create_model
from repro.rng import ensure_rng, rng_from_seed, spawn_seeds
from repro.synthesis.worldgen import WorldKitchen

#: Root seed for the per-run seed stream (the paper's publication date,
#: like the corpus benches).
ROOT_SEED = 20190408


def _bench_spec(region: str, scale: float) -> CuisineSpec:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=ROOT_SEED)
    dataset = kitchen.generate_dataset(region_codes=(region,), scale=scale)
    return CuisineSpec.from_view(dataset.cuisine(region), lexicon)


def _best_of(fn, repeats: int) -> float:
    """Best-of wall-clock of ``fn`` with the cyclic GC off while timed."""
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def _runs_identical(model, spec, seeds) -> bool:
    """Untimed: batched results equal per-run vectorized, run by run.

    The batched list is cheap to hold (a lazy view over one shared
    tensor); the vectorized runs are produced, compared, and discarded
    one at a time so the check never holds two eager ensembles.
    """
    batched = run_batched(
        model, spec, [rng_from_seed(seed) for seed in seeds]
    )
    for seed, batched_run in zip(seeds, batched):
        vectorized = model.run(spec, seed=seed, engine="vectorized")
        if (
            batched_run.transactions != vectorized.transactions
            or batched_run.trace != vectorized.trace
            or batched_run.final_pool_size != vectorized.final_pool_size
        ):
            return False
    return True


def run_ensemble_matrix(
    region: str = "ITA",
    scale: float = 1.0,
    n_runs: int = 100,
    repeats: int = 2,
    model_names: tuple[str, ...] = PAPER_MODELS,
    verify: bool = True,
) -> dict:
    """Time both paths on every model; returns the result table."""
    spec = _bench_spec(region, scale)
    seeds = spawn_seeds(ensure_rng(ROOT_SEED), n_runs)
    rows = []
    bit_identical = True
    for name in model_names:
        model = create_model(name)

        def run_vectorized_loop():
            for seed in seeds:
                model.run(spec, seed=seed, engine="vectorized")

        def run_batched_pass():
            run_batched(
                model, spec, [rng_from_seed(seed) for seed in seeds]
            )

        vec_seconds = _best_of(run_vectorized_loop, repeats)
        batched_seconds = _best_of(run_batched_pass, repeats)
        if verify:
            bit_identical = bit_identical and _runs_identical(
                model, spec, seeds
            )
        rows.append(
            {
                "model": name,
                "vectorized_seconds": vec_seconds,
                "batched_seconds": batched_seconds,
                "vectorized_runs_per_second": n_runs / vec_seconds,
                "batched_runs_per_second": n_runs / batched_seconds,
                "speedup": vec_seconds / batched_seconds,
            }
        )
    speedups = [row["speedup"] for row in rows]
    return {
        "region": region,
        "scale": scale,
        "n_runs": n_runs,
        "repeats": repeats,
        "spec": {
            "n_ingredients": spec.n_ingredients,
            "n_recipes": spec.n_recipes,
            "recipe_size": spec.recipe_size,
            "phi": spec.phi,
        },
        "bit_identical": bit_identical,
        "min_speedup": min(speedups),
        "mean_speedup": sum(speedups) / len(speedups),
        "rows": rows,
    }


def _render(result: dict) -> str:
    spec = result["spec"]
    lines = [
        f"ensemble engines: {result['n_runs']} runs, {result['region']} @ "
        f"scale {result['scale']} (|I|={spec['n_ingredients']}, "
        f"N={spec['n_recipes']}, s={spec['recipe_size']}); bit-identical: "
        f"{result['bit_identical']}",
        f"{'model':<8}{'vec s':>10}{'batched s':>11}{'vec runs/s':>12}"
        f"{'bat runs/s':>12}{'speedup':>9}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['model']:<8}{row['vectorized_seconds']:>10.3f}"
            f"{row['batched_seconds']:>11.3f}"
            f"{row['vectorized_runs_per_second']:>12.1f}"
            f"{row['batched_runs_per_second']:>12.1f}"
            f"{row['speedup']:>8.2f}x"
        )
    lines.append(
        f"min speedup {result['min_speedup']:.2f}x, "
        f"mean {result['mean_speedup']:.2f}x"
    )
    return "\n".join(lines)


def _floor(scale: float, n_runs: int) -> float:
    """Speedup floor by cell size.

    The ≥3× acceptance claim holds at paper-scale cells, where segments
    between pool growths are long (~46 steps) and stacking amortizes.
    Tiny cells (scale < 0.15) have segments of a few steps, where the
    batched engine's per-wave overhead can genuinely lose to the
    per-run loop — there only bit-identity is enforced.
    """
    if scale >= 0.5 and n_runs >= 50:
        return 3.0
    if scale >= 0.15:
        return 1.0
    return 0.0


def test_ensemble_throughput(benchmark):
    """Pytest entry: small cell, both paths, identity + no-regression.

    Sized by ``REPRO_BENCH_SCALE`` like the other benches.  Asserts
    bit-identity and that batching is not slower even at smoke sizes;
    the ≥3× acceptance claim is asserted at paper scale only
    (standalone run).
    """
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
    n_runs = 16
    result = benchmark.pedantic(
        run_ensemble_matrix,
        kwargs={
            "region": "ITA", "scale": scale, "n_runs": n_runs, "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("ensemble", result)
    assert result["bit_identical"]
    assert result["min_speedup"] >= _floor(scale, n_runs)


def main(argv: list[str] | None = None) -> int:
    """Standalone ensemble comparison (the acceptance-criterion runner)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="ITA")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="corpus scale (default: 1.0, the paper sizes)")
    parser.add_argument("--runs", type=int, default=100,
                        help="runs per ensemble (paper: 100)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats per path (best-of)")
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke sizing (scale 0.2, 24 runs, 1 repeat) for CI tripwires",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit 1 unless batched beats the per-run loop on every model "
            "(>=3x at paper scale) with bit-identical results"
        ),
    )
    args = parser.parse_args(argv)
    scale = 0.2 if args.fast else args.scale
    n_runs = 24 if args.fast else args.runs
    repeats = 1 if args.fast else args.repeats
    result = run_ensemble_matrix(
        region=args.region, scale=scale, n_runs=n_runs, repeats=repeats
    )
    print(_render(result))
    # --fast is the CI tripwire; only full-size runs may replace the
    # committed acceptance artifact.
    if not args.fast or smoke_write_enabled():
        write_bench_result("ensemble", result)
    if not result["bit_identical"]:
        print("FAIL: batched results diverge from vectorized")
        return 1
    if args.check:
        floor = _floor(scale, n_runs)
        if result["min_speedup"] < floor:
            print(
                f"FAIL: min speedup {result['min_speedup']:.2f}x below "
                f"{floor:.1f}x floor"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
