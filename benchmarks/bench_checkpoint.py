"""Bench checkpointing: snapshot overhead on a serial ensemble.

Crash-consistent checkpointing (DESIGN.md §9) buys bounded re-work on a
mid-run death, and its price is the periodic snapshot: pickling the
engine's full state planes plus an fsync-free atomic rename, every
``checkpoint_every`` steps.  This bench times one ensemble three ways
and pins the contract the feature must keep:

* **plain** — baseline ``execute_runs`` into a cache, snapshots off;
* **every=500** — a realistic snapshot period (engine steps are
  micro-steps — thousands per run even at smoke scale — so a useful
  period is hundreds of them); the tripwire mode;
* **every=50** — ten times denser, showing how the overhead scales.

All three must stay bit-identical for the fixed master seed (a
checkpointed run takes the exact same RNG draws), and a completed run
must leave **zero** snapshots behind — ``finished()`` discards them.

Two entry points:

* pytest (CI smoke)::

      PYTHONPATH=src python -m pytest benchmarks/bench_checkpoint.py -q

* standalone, e.g. the CI tripwire::

      PYTHONPATH=src python benchmarks/bench_checkpoint.py --fast --check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path

from _results import smoke_write_enabled, write_bench_result
from repro.lexicon.builder import standard_lexicon
from repro.models.params import CuisineSpec
from repro.models.registry import create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import RuntimeConfig, execute_runs
from repro.synthesis.worldgen import WorldKitchen

# Overhead tripwire budget: the every=500 checkpointed pass may cost
# at most the plain wall-clock times this slack, plus a small absolute
# allowance for timer noise at smoke sizes.
CHECKPOINT_SLACK = 3.0
CHECKPOINT_NOISE_SECONDS = 0.75

#: The snapshot period the tripwire judges (a realistic setting: a
#: handful of snapshots per run, not one per micro-step).
TRIPWIRE_EVERY = 500


def _bench_spec(scale: float) -> CuisineSpec:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=20190408)
    dataset = kitchen.generate_dataset(region_codes=("ITA",), scale=scale)
    return CuisineSpec.from_view(dataset.cuisine("ITA"), lexicon)


def _timed(model, spec, seeds, runtime) -> tuple[float, list]:
    start = time.perf_counter()
    runs = execute_runs(model, spec, seeds, runtime=runtime)
    return time.perf_counter() - start, runs


def checkpoint_budget(plain_seconds: float) -> float:
    """Seconds the tripwire checkpointed pass may take before failing."""
    return plain_seconds * CHECKPOINT_SLACK + CHECKPOINT_NOISE_SECONDS


def run_checkpoint_comparison(
    n_runs: int,
    scale: float,
    workdir: Path,
    model_name: str = "CM-R",
    seed: int = 7,
) -> dict:
    """Time one ensemble plain vs checkpointed at two snapshot periods."""
    spec = _bench_spec(scale)
    model = create_model(model_name)
    seeds = spawn_seeds(ensure_rng(seed), n_runs)

    modes: list[tuple[str, int | None]] = [
        ("plain", None),
        (f"every={TRIPWIRE_EVERY}", TRIPWIRE_EVERY),
        ("every=50", 50),
    ]
    timings: dict[str, float] = {}
    signatures: dict[str, list] = {}
    leftover_snapshots: dict[str, int] = {}
    for label, every in modes:
        cache_dir = workdir / f"cache-{label.replace('=', '-')}"
        runtime = RuntimeConfig(cache_dir=cache_dir, checkpoint_every=every)
        elapsed, runs = _timed(model, spec, seeds, runtime)
        timings[label] = elapsed
        signatures[label] = [
            (run.transactions, run.final_pool_size) for run in runs
        ]
        leftover_snapshots[label] = len(list(cache_dir.glob("*.ckpt.pkl")))

    reference = signatures["plain"]
    bit_identical = all(sig == reference for sig in signatures.values())
    snapshots_discarded = all(
        count == 0 for count in leftover_snapshots.values()
    )
    plain = timings["plain"]
    tripwire = timings[f"every={TRIPWIRE_EVERY}"]
    rows = [
        {
            "mode": label,
            "seconds": timings[label],
            "overhead": timings[label] / plain if plain > 0 else 1.0,
            "runs_per_second": (
                n_runs / timings[label]
                if timings[label] > 0
                else float("inf")
            ),
        }
        for label, _every in modes
    ]
    return {
        "ensemble": f"{model_name} x {n_runs} runs (scale {scale})",
        "n_runs": n_runs,
        "cpu_count": os.cpu_count() or 1,
        "bit_identical": bit_identical,
        "snapshots_discarded": snapshots_discarded,
        "plain_seconds": plain,
        "checkpointed_seconds": tripwire,
        "checkpoint_budget_seconds": checkpoint_budget(plain),
        "rows": rows,
    }


def _render(result: dict) -> str:
    lines = [
        f"checkpointing: {result['ensemble']} "
        f"({result['cpu_count']} cores); bit-identical: "
        f"{result['bit_identical']}; snapshots discarded: "
        f"{result['snapshots_discarded']}",
        f"{'mode':<16}{'seconds':>10}{'overhead':>10}{'runs/s':>10}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['mode']:<16}{row['seconds']:>10.3f}"
            f"{row['overhead']:>9.2f}x{row['runs_per_second']:>10.1f}"
        )
    lines.append(
        f"overhead tripwire: {result['checkpointed_seconds']:.3f}s vs "
        f"budget {result['checkpoint_budget_seconds']:.3f}s"
    )
    return "\n".join(lines)


def _check(result: dict) -> str | None:
    """The --check predicate; returns a failure message or ``None``."""
    if not result["bit_identical"]:
        return "FAIL: checkpointed results diverge from plain"
    if not result["snapshots_discarded"]:
        return "FAIL: completed runs left snapshots behind"
    if result["checkpointed_seconds"] > result["checkpoint_budget_seconds"]:
        return (
            f"FAIL: checkpointed pass "
            f"{result['checkpointed_seconds']:.3f}s exceeded the plain "
            f"budget {result['checkpoint_budget_seconds']:.3f}s"
        )
    return None


def test_checkpoint_overhead_stays_bounded(benchmark, tmp_path):
    """Pytest entry: overhead matrix plus the snapshot tripwire."""
    n_runs = int(os.environ.get("REPRO_BENCH_RUNS", "8"))
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
    result = benchmark.pedantic(
        run_checkpoint_comparison,
        args=(n_runs, scale, tmp_path),
        rounds=1,
        iterations=1,
    )
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("checkpoint", result)
    failure = _check(result)
    assert failure is None, failure


def main(argv: list[str] | None = None) -> int:
    """Standalone comparison (and the CI ``--fast --check`` tripwire)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=24,
                        help="runs in the ensemble (default: 24)")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke sizing (scale 0.1, 8 runs) for CI tripwires",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit 1 unless results are bit-identical, completed runs "
            "discarded their snapshots, and the every=500 pass stays "
            "within the plain-run budget"
        ),
    )
    args = parser.parse_args(argv)
    scale = 0.1 if args.fast else args.scale
    n_runs = 8 if args.fast else args.runs
    with tempfile.TemporaryDirectory(prefix="bench-checkpoint-") as tmp:
        result = run_checkpoint_comparison(
            n_runs, scale, Path(tmp), seed=args.seed
        )
    print(_render(result))
    # --fast is the CI tripwire; only full-size runs may replace the
    # committed acceptance artifact.
    if not args.fast or smoke_write_enabled():
        write_bench_result("checkpoint", result)
    failure = _check(result)
    if failure is not None:
        print(failure)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
