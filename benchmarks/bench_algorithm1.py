"""Bench ``algorithm1``: single-run engine throughput, reference vs vectorized.

PR 1/2 parallelized *across* runs; this bench tracks the speed of one
run — the quantity that bounds every worker core.  For each paper model
it times the reference (scalar) and vectorized engines on the same
cuisine spec and reports recipes/second plus the speedup, verifying the
engines walk identical (m, n) trajectories while they race.

The acceptance target is a ≥3× vectorized speedup at paper-default
CuisineSpec sizes (``--scale 1.0``, the full Table I counts).  Results
are written to ``BENCH_algorithm1.json`` at the repo root so the perf
trajectory is tracked across PRs.

Entry points:

* pytest (CI smoke; sized by ``REPRO_BENCH_SCALE``)::

      PYTHONPATH=src python -m pytest benchmarks/bench_algorithm1.py -q

* standalone — the acceptance run (full scale) or the CI perf tripwire
  (``--fast --check`` exits 1 if the vectorized engine is slower)::

      PYTHONPATH=src python benchmarks/bench_algorithm1.py
      PYTHONPATH=src python benchmarks/bench_algorithm1.py --fast --check
"""

from __future__ import annotations

import argparse
import os
import time

from _results import smoke_write_enabled, write_bench_result
from repro.lexicon.builder import standard_lexicon
from repro.models.params import CuisineSpec
from repro.models.registry import PAPER_MODELS, create_model
from repro.synthesis.worldgen import WorldKitchen


def _bench_spec(region: str, scale: float) -> CuisineSpec:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=20190408)
    dataset = kitchen.generate_dataset(region_codes=(region,), scale=scale)
    return CuisineSpec.from_view(dataset.cuisine(region), lexicon)


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_engine_matrix(
    region: str = "ITA",
    scale: float = 1.0,
    repeats: int = 3,
    model_names: tuple[str, ...] = PAPER_MODELS,
    seed: int = 7,
) -> dict:
    """Time both engines on every model; returns the result table."""
    spec = _bench_spec(region, scale)
    rows = []
    structure_identical = True
    for name in model_names:
        reference = create_model(name, engine="reference")
        vectorized = create_model(name, engine="vectorized")
        ref_seconds, ref_run = _best_of(
            lambda: reference.run(spec, seed=seed), repeats
        )
        vec_seconds, vec_run = _best_of(
            lambda: vectorized.run(spec, seed=seed), repeats
        )
        structure_identical = structure_identical and (
            ref_run.final_pool_size == vec_run.final_pool_size
            and ref_run.n_recipes == vec_run.n_recipes
        )
        rows.append(
            {
                "model": name,
                "reference_seconds": ref_seconds,
                "vectorized_seconds": vec_seconds,
                "reference_recipes_per_second": spec.n_recipes / ref_seconds,
                "vectorized_recipes_per_second": spec.n_recipes / vec_seconds,
                "speedup": ref_seconds / vec_seconds,
            }
        )
    speedups = [row["speedup"] for row in rows]
    return {
        "region": region,
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "spec": {
            "n_ingredients": spec.n_ingredients,
            "n_recipes": spec.n_recipes,
            "recipe_size": spec.recipe_size,
            "phi": spec.phi,
        },
        "structure_identical": structure_identical,
        "min_speedup": min(speedups),
        "mean_speedup": sum(speedups) / len(speedups),
        "rows": rows,
    }


def _render(result: dict) -> str:
    spec = result["spec"]
    lines = [
        f"algorithm1 engines: {result['region']} @ scale {result['scale']} "
        f"(|I|={spec['n_ingredients']}, N={spec['n_recipes']}, "
        f"s={spec['recipe_size']}); trajectories identical: "
        f"{result['structure_identical']}",
        f"{'model':<8}{'ref s':>10}{'vec s':>10}{'ref r/s':>12}"
        f"{'vec r/s':>12}{'speedup':>9}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['model']:<8}{row['reference_seconds']:>10.3f}"
            f"{row['vectorized_seconds']:>10.3f}"
            f"{row['reference_recipes_per_second']:>12.0f}"
            f"{row['vectorized_recipes_per_second']:>12.0f}"
            f"{row['speedup']:>8.2f}x"
        )
    lines.append(
        f"min speedup {result['min_speedup']:.2f}x, "
        f"mean {result['mean_speedup']:.2f}x"
    )
    return "\n".join(lines)


def test_engine_throughput(benchmark):
    """Pytest entry: small spec, both engines, trajectory + no-regression.

    Sized by ``REPRO_BENCH_SCALE`` like the other benches.  Asserts the
    vectorized engine is not slower than the reference even at smoke
    sizes; the ≥3× acceptance claim is asserted at paper scale only
    (standalone run).
    """
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
    result = benchmark.pedantic(
        run_engine_matrix,
        kwargs={"region": "ITA", "scale": scale, "repeats": 2},
        rounds=1,
        iterations=1,
    )
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("algorithm1", result)
    assert result["structure_identical"]
    assert result["min_speedup"] >= 1.0
    if scale >= 0.5:
        assert result["min_speedup"] >= 3.0


def main(argv: list[str] | None = None) -> int:
    """Standalone engine comparison (the acceptance-criterion runner)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="ITA")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="corpus scale (default: 1.0, the paper sizes)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per engine (best-of)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke sizing (scale 0.05, 1 repeat) for CI tripwires",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit 1 unless the vectorized engine beats the reference on "
            "every model (and by >=3x at scale >= 0.5)"
        ),
    )
    args = parser.parse_args(argv)
    scale = 0.05 if args.fast else args.scale
    repeats = 1 if args.fast else args.repeats
    result = run_engine_matrix(
        region=args.region, scale=scale, repeats=repeats, seed=args.seed
    )
    print(_render(result))
    # --fast is the CI tripwire; only full-size runs may replace the
    # committed acceptance artifact.
    if not args.fast or smoke_write_enabled():
        write_bench_result("algorithm1", result)
    if not result["structure_identical"]:
        return 1
    if args.check:
        floor = 3.0 if scale >= 0.5 else 1.0
        if result["min_speedup"] < floor:
            print(
                f"FAIL: min speedup {result['min_speedup']:.2f}x below "
                f"{floor:.1f}x floor"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
