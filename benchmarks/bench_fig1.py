"""Bench ``fig1``: recipe size distributions.

Paper reference (Fig. 1): per-cuisine recipe size distributions are
Gaussian-like, bounded between 2 and 38, mean approx. 9, and homogeneous
across cuisines (the inset pools all recipes).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig1 import run_fig1


def bench_run(context):
    return run_fig1(context)


def test_fig1(benchmark, world_context):
    result = benchmark.pedantic(
        bench_run, args=(world_context,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.all_in_paper_bounds()
    assert 7.5 <= result.aggregate.mean <= 10.5
    # Homogeneity: the spread of per-cuisine means stays tight.
    means = [d.mean for d in result.per_cuisine.values()]
    assert float(np.std(means)) < 1.0
