"""Bench ``distributed``: the work-queue backend vs serial, cold and warm.

The distributed backend (DESIGN.md §8) pays a real coordination tax —
spool I/O, worker spawn, heartbeat polling — that only amortizes over
work that is expensive relative to a pickle round-trip.  This bench
times one ensemble four ways and pins the contract the backend must
keep:

* **cold serial** — baseline ``execute_runs`` into an empty cache;
* **cold distributed** — the same ensemble through two local workers,
  whose write-through puts must leave the shared cache fully populated
  (the result rendezvous);
* **warm serial** / **warm distributed** — the same calls again, now
  served from disk.  The tripwire: on a warm cache the distributed
  backend must not fall behind serial, because a fully-hit sweep never
  spools a single task.

All four paths must stay bit-identical for the fixed master seed.

Two entry points:

* pytest (CI smoke)::

      PYTHONPATH=src python -m pytest benchmarks/bench_distributed.py -q

* standalone, e.g. the CI tripwire::

      PYTHONPATH=src python benchmarks/bench_distributed.py --fast --check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path

from _results import smoke_write_enabled, write_bench_result
from repro.lexicon.builder import standard_lexicon
from repro.models.params import CuisineSpec
from repro.models.registry import create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import (
    DistributedConfig,
    RunCache,
    RuntimeConfig,
    execute_runs,
)
from repro.synthesis.worldgen import WorldKitchen

# Warm-cache tripwire budget: a fully-hit distributed pass does no spool
# I/O, so it may cost at most the serial wall-clock times this slack
# plus a small absolute allowance for timer noise at smoke sizes.
WARM_SLACK = 3.0
WARM_NOISE_SECONDS = 0.75


def _bench_spec(scale: float) -> CuisineSpec:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=20190408)
    dataset = kitchen.generate_dataset(region_codes=("ITA",), scale=scale)
    return CuisineSpec.from_view(dataset.cuisine("ITA"), lexicon)


def _distributed_runtime(cache_dir: Path) -> RuntimeConfig:
    return RuntimeConfig(
        backend="distributed",
        jobs=2,
        cache_dir=cache_dir,
        distributed=DistributedConfig(
            local_workers=2,
            poll_interval=0.01,
            heartbeat_interval=0.1,
            lease_timeout=5.0,
            attach_deadline=60.0,
        ),
    )


def _timed(model, spec, seeds, runtime) -> tuple[float, list]:
    start = time.perf_counter()
    runs = execute_runs(model, spec, seeds, runtime=runtime)
    return time.perf_counter() - start, runs


def warm_budget(warm_serial: float) -> float:
    """Seconds a warm distributed pass may take before the check fails."""
    return warm_serial * WARM_SLACK + WARM_NOISE_SECONDS


def run_distributed_comparison(
    n_runs: int,
    scale: float,
    workdir: Path,
    model_name: str = "CM-R",
    seed: int = 7,
) -> dict:
    """Time one ensemble cold/warm through serial and distributed paths."""
    spec = _bench_spec(scale)
    model = create_model(model_name)
    seeds = spawn_seeds(ensure_rng(seed), n_runs)
    serial_cache = workdir / "serial-cache"
    dist_cache = workdir / "distributed-cache"
    serial_runtime = RuntimeConfig(cache_dir=serial_cache)
    dist_runtime = _distributed_runtime(dist_cache)

    cold_serial, serial_runs = _timed(model, spec, seeds, serial_runtime)
    cold_dist, dist_runs = _timed(model, spec, seeds, dist_runtime)
    warm_serial, warm_serial_runs = _timed(model, spec, seeds, serial_runtime)
    warm_dist, warm_dist_runs = _timed(model, spec, seeds, dist_runtime)

    def signature(runs):
        return [(run.transactions, run.final_pool_size) for run in runs]

    reference = signature(serial_runs)
    bit_identical = all(
        signature(runs) == reference
        for runs in (dist_runs, warm_serial_runs, warm_dist_runs)
    )
    # The rendezvous contract: workers themselves populated the cache.
    workers_wrote_cache = len(RunCache(dist_cache)) == n_runs
    rows = [
        {"mode": mode, "seconds": elapsed,
         "runs_per_second": n_runs / elapsed if elapsed > 0 else float("inf")}
        for mode, elapsed in (
            ("cold serial", cold_serial),
            ("cold distributed (2 workers)", cold_dist),
            ("warm serial", warm_serial),
            ("warm distributed (2 workers)", warm_dist),
        )
    ]
    return {
        "ensemble": f"{model_name} x {n_runs} runs (scale {scale})",
        "n_runs": n_runs,
        "cpu_count": os.cpu_count() or 1,
        "bit_identical": bit_identical,
        "workers_wrote_cache": workers_wrote_cache,
        "warm_serial_seconds": warm_serial,
        "warm_distributed_seconds": warm_dist,
        "warm_budget_seconds": warm_budget(warm_serial),
        "rows": rows,
    }


def _render(result: dict) -> str:
    lines = [
        f"distributed backend: {result['ensemble']} "
        f"({result['cpu_count']} cores); bit-identical: "
        f"{result['bit_identical']}; workers wrote cache: "
        f"{result['workers_wrote_cache']}",
        f"{'mode':<30}{'seconds':>10}{'runs/s':>10}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['mode']:<30}{row['seconds']:>10.3f}"
            f"{row['runs_per_second']:>10.1f}"
        )
    lines.append(
        f"warm tripwire: {result['warm_distributed_seconds']:.3f}s vs "
        f"budget {result['warm_budget_seconds']:.3f}s"
    )
    return "\n".join(lines)


def _check(result: dict) -> str | None:
    """The --check predicate; returns a failure message or ``None``."""
    if not result["bit_identical"]:
        return "FAIL: distributed results diverge from serial"
    if not result["workers_wrote_cache"]:
        return "FAIL: workers did not populate the shared run cache"
    if result["warm_distributed_seconds"] > result["warm_budget_seconds"]:
        return (
            f"FAIL: warm distributed "
            f"{result['warm_distributed_seconds']:.3f}s fell behind the "
            f"warm-serial budget {result['warm_budget_seconds']:.3f}s"
        )
    return None


def test_distributed_warm_cache_keeps_pace(benchmark, tmp_path):
    """Pytest entry: cold/warm matrix plus the warm-cache tripwire."""
    n_runs = int(os.environ.get("REPRO_BENCH_RUNS", "8"))
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
    result = benchmark.pedantic(
        run_distributed_comparison,
        args=(n_runs, scale, tmp_path),
        rounds=1,
        iterations=1,
    )
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("distributed", result)
    failure = _check(result)
    assert failure is None, failure


def main(argv: list[str] | None = None) -> int:
    """Standalone comparison (and the CI ``--fast --check`` tripwire)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=24,
                        help="runs in the ensemble (default: 24)")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke sizing (scale 0.1, 8 runs) for CI tripwires",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit 1 unless results are bit-identical, workers populated "
            "the cache, and warm distributed stays within the warm-serial "
            "budget"
        ),
    )
    args = parser.parse_args(argv)
    scale = 0.1 if args.fast else args.scale
    n_runs = 8 if args.fast else args.runs
    with tempfile.TemporaryDirectory(prefix="bench-distributed-") as tmp:
        result = run_distributed_comparison(
            n_runs, scale, Path(tmp), seed=args.seed
        )
    print(_render(result))
    # --fast is the CI tripwire; only full-size runs may replace the
    # committed acceptance artifact.
    if not args.fast or smoke_write_enabled():
        write_bench_result("distributed", result)
    failure = _check(result)
    if failure is not None:
        print(failure)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
