"""Bench ``runtime``: ensemble throughput across executor backends.

Measures raw run-execution throughput (``execute_runs``, no mining) for
the serial, thread and process backends, verifies the backends stay
bit-identical while racing, and reports runs/second plus speedup over
serial.

Two entry points:

* pytest (with the shared bench fixtures)::

      PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py -q

* standalone, e.g. the acceptance check — a 100-run ensemble at
  ``--jobs 4``::

      PYTHONPATH=src python benchmarks/bench_runtime.py --runs 100 --jobs 4

The ≥2x process-backend speedup target only holds on multi-core hosts;
the pytest assertion is therefore gated on ``os.cpu_count()``.
"""

from __future__ import annotations

import argparse
import os
import time

from _results import smoke_write_enabled, write_bench_result
from repro.lexicon.builder import standard_lexicon
from repro.models.params import CuisineSpec
from repro.models.registry import create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import RuntimeConfig, execute_runs
from repro.synthesis.worldgen import WorldKitchen

def _bench_spec(region: str = "ITA", scale: float = 0.05) -> CuisineSpec:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=20190408)
    dataset = kitchen.generate_dataset(region_codes=(region,), scale=scale)
    return CuisineSpec.from_view(dataset.cuisine(region), lexicon)


def _measure(model, spec, seeds, config: RuntimeConfig) -> tuple[float, list]:
    start = time.perf_counter()
    runs = execute_runs(model, spec, seeds, runtime=config)
    return time.perf_counter() - start, runs


def run_throughput_matrix(
    n_runs: int, jobs: int, region: str = "ITA", scale: float = 0.05,
    seed: int = 7,
) -> dict:
    """Time every backend on one ensemble; returns a result table."""
    spec = _bench_spec(region=region, scale=scale)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(seed), n_runs)
    configs = (
        RuntimeConfig(),
        RuntimeConfig(backend="thread", jobs=jobs),
        RuntimeConfig(backend="process", jobs=jobs),
    )
    rows = []
    signatures = []
    serial_elapsed = None
    for config in configs:
        elapsed, runs = _measure(model, spec, seeds, config)
        if serial_elapsed is None:
            serial_elapsed = elapsed
        signatures.append([run.transactions for run in runs])
        rows.append(
            {
                "backend": config.backend,
                "jobs": config.resolve_jobs() if config.backend != "serial" else 1,
                "seconds": elapsed,
                "runs_per_second": n_runs / elapsed if elapsed > 0 else float("inf"),
                "speedup_vs_serial": serial_elapsed / elapsed if elapsed > 0 else float("inf"),
            }
        )
    return {
        "n_runs": n_runs,
        "region": region,
        "cpu_count": os.cpu_count() or 1,
        "bit_identical": all(sig == signatures[0] for sig in signatures[1:]),
        "rows": rows,
    }


def _render(result: dict) -> str:
    lines = [
        f"runtime throughput: {result['n_runs']}-run CM-R ensemble on "
        f"{result['region']} ({result['cpu_count']} cores); "
        f"bit-identical across backends: {result['bit_identical']}",
        f"{'backend':<10}{'jobs':>6}{'seconds':>10}{'runs/s':>10}{'speedup':>9}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['backend']:<10}{row['jobs']:>6}"
            f"{row['seconds']:>10.3f}{row['runs_per_second']:>10.1f}"
            f"{row['speedup_vs_serial']:>8.2f}x"
        )
    return "\n".join(lines)


def test_runtime_throughput(benchmark):
    """Pytest entry: bench one parallel ensemble, verify determinism.

    Sized by the same knobs as the other benches (see
    ``benchmarks/conftest.py``): ``REPRO_BENCH_RUNS`` and
    ``REPRO_BENCH_SCALE``.
    """
    n_runs = int(os.environ.get("REPRO_BENCH_RUNS", "4"))
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
    result = benchmark.pedantic(
        run_throughput_matrix,
        args=(n_runs, 4),
        kwargs={"scale": scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("runtime", result)
    assert result["bit_identical"]
    process_row = result["rows"][-1]
    assert process_row["backend"] == "process"
    # The speedup claim needs real cores; assert only where it can hold.
    if result["cpu_count"] >= 4 and n_runs >= 20:
        assert process_row["speedup_vs_serial"] >= 2.0


def main(argv: list[str] | None = None) -> int:
    """Standalone throughput report (the acceptance-criterion runner)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=100,
                        help="ensemble size (default: 100)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for parallel backends (default: 4)")
    parser.add_argument("--region", default="ITA")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    result = run_throughput_matrix(
        args.runs, args.jobs, region=args.region, scale=args.scale,
        seed=args.seed,
    )
    print(_render(result))
    write_bench_result("runtime", result)
    return 0 if result["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
