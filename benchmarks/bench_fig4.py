"""Bench ``fig4`` (and ``fig4_categories``): models vs empirical curves.

Paper reference (Fig. 4 + Sec. VI): all copy-mutate variants reproduce
the empirical rank-frequency distribution of ingredient combinations
(small MAE in the legend) while the null model shows a rapid, abrupt
decline with much higher MAE; the winning CM variant differs by cuisine;
at the *category* level every model (incl. NM) fits, so that statistic is
not discriminating.
"""

from __future__ import annotations

from repro.experiments.fig4 import run_fig4


def bench_ingredient(context):
    return run_fig4(context, level="ingredient")


def bench_category(context):
    return run_fig4(
        context, level="category", region_codes=("ITA", "GRC", "KOR")
    )


def test_fig4_ingredient(benchmark, trio_context):
    result = benchmark.pedantic(
        bench_ingredient, args=(trio_context,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Headline shape: every CM variant beats NM on every cuisine.
    for code, evaluation in result.evaluations.items():
        nm = evaluation.distances["NM"]
        for name in ("CM-R", "CM-C", "CM-M"):
            assert evaluation.distances[name] < nm, (code, name)
    assert result.null_separation() > 2.0


def test_fig4_category(benchmark, trio_context):
    result = benchmark.pedantic(
        bench_category, args=(trio_context,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Negative result: NM is no longer separable at the category level.
    assert result.null_separation() < 2.0
