"""Bench ``sweep``: end-to-end grid wall-clock vs the serial baseline.

The paper's headline protocol aggregates 100-run ensembles over the full
4-models × 25-cuisines grid.  This bench times that grid (at bench
scale) three ways:

* **serial per-cell** — the pre-sweep baseline: one ``execute_runs``
  call per (model, cuisine) cell, serial backend;
* **per-cell process** — parallel within each cell, but cells still walk
  serially (workers idle while each small ensemble drains);
* **sharded sweep** — the whole grid flattened through
  :func:`repro.runtime.sweep.execute_sweep` in one process-backend pass.

and verifies all three stay bit-identical for the fixed master seed.

Two entry points:

* pytest (CI smoke)::

      PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py -q

* standalone, e.g. the full-grid acceptance run::

      PYTHONPATH=src python benchmarks/bench_sweep.py --runs 100 --jobs 8
"""

from __future__ import annotations

import argparse
import os
import time

from _results import smoke_write_enabled, write_bench_result
from repro.lexicon.builder import standard_lexicon
from repro.models.params import CuisineSpec
from repro.models.registry import PAPER_MODELS, create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import (
    RuntimeConfig,
    execute_runs,
    execute_sweep,
    plan_grid,
)
from repro.synthesis.worldgen import WorldKitchen


def _grid_specs(
    region_codes: tuple[str, ...] | None, scale: float
) -> list[CuisineSpec]:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=20190408)
    dataset = kitchen.generate_dataset(region_codes=region_codes, scale=scale)
    return [
        CuisineSpec.from_view(dataset.cuisine(code), lexicon)
        for code in dataset.region_codes()
    ]


def _per_cell_baseline(
    models, specs, n_runs: int, seed: int, config: RuntimeConfig
) -> tuple[float, list]:
    """The pre-sweep path: one execute_runs call per grid cell."""
    root = ensure_rng(seed)
    start = time.perf_counter()
    cells = []
    for spec in specs:
        for model in models:
            cells.append(
                execute_runs(
                    model, spec, spawn_seeds(root, n_runs), runtime=config
                )
            )
    return time.perf_counter() - start, cells


def run_grid_comparison(
    n_runs: int,
    jobs: int,
    region_codes: tuple[str, ...] | None = None,
    model_names: tuple[str, ...] = PAPER_MODELS,
    scale: float = 0.04,
    seed: int = 7,
) -> dict:
    """Time the grid serially, per-cell parallel, and as a sharded sweep."""
    specs = _grid_specs(region_codes, scale)
    models = [create_model(name) for name in model_names]
    process = RuntimeConfig(backend="process", jobs=jobs)

    serial_elapsed, serial_cells = _per_cell_baseline(
        models, specs, n_runs, seed, RuntimeConfig()
    )
    per_cell_elapsed, per_cell_cells = _per_cell_baseline(
        models, specs, n_runs, seed, process
    )
    plan = plan_grid(models, specs, n_runs=n_runs, seed=seed)
    start = time.perf_counter()
    sweep = execute_sweep(plan, runtime=process)
    sweep_elapsed = time.perf_counter() - start

    def signatures(cells):
        return [[run.transactions for run in cell] for cell in cells]

    reference = signatures(serial_cells)
    bit_identical = (
        signatures(per_cell_cells) == reference
        and signatures(cell.runs for cell in sweep.cells) == reference
    )
    total_runs = plan.total_runs
    rows = [
        {"mode": mode, "seconds": elapsed,
         "runs_per_second": total_runs / elapsed if elapsed > 0 else float("inf"),
         "speedup_vs_serial": serial_elapsed / elapsed if elapsed > 0 else float("inf")}
        for mode, elapsed in (
            ("serial per-cell", serial_elapsed),
            (f"process per-cell (jobs={jobs})", per_cell_elapsed),
            (f"sharded sweep (jobs={jobs})", sweep_elapsed),
        )
    ]
    return {
        "grid": f"{len(model_names)} models x {len(specs)} cuisines x "
                f"{n_runs} runs",
        "total_runs": total_runs,
        "cpu_count": os.cpu_count() or 1,
        "bit_identical": bit_identical,
        "rows": rows,
    }


def _render(result: dict) -> str:
    lines = [
        f"grid sweep: {result['grid']} = {result['total_runs']} runs "
        f"({result['cpu_count']} cores); bit-identical across paths: "
        f"{result['bit_identical']}",
        f"{'mode':<28}{'seconds':>10}{'runs/s':>10}{'speedup':>9}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['mode']:<28}{row['seconds']:>10.3f}"
            f"{row['runs_per_second']:>10.1f}"
            f"{row['speedup_vs_serial']:>8.2f}x"
        )
    return "\n".join(lines)


def test_grid_sweep_throughput(benchmark):
    """Pytest entry: a small grid, all three paths, determinism verified.

    Sized by ``REPRO_BENCH_RUNS`` / ``REPRO_BENCH_SCALE`` like the other
    benches; the default keeps CI smoke under a minute.
    """
    n_runs = int(os.environ.get("REPRO_BENCH_RUNS", "3"))
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
    result = benchmark.pedantic(
        run_grid_comparison,
        args=(n_runs, 4),
        kwargs={"region_codes": ("ITA", "GRC", "KOR"), "scale": scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("sweep", result)
    assert result["bit_identical"]
    sweep_row = result["rows"][-1]
    assert sweep_row["mode"].startswith("sharded sweep")
    # The grid-level speedup claim needs real cores and real work.
    if result["cpu_count"] >= 4 and n_runs >= 20:
        assert sweep_row["speedup_vs_serial"] >= 2.0


def main(argv: list[str] | None = None) -> int:
    """Standalone grid comparison (the acceptance-criterion runner)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=25,
                        help="runs per (model, cuisine) cell (default: 25)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="workers for parallel paths; 0 = all cores")
    parser.add_argument("--regions", nargs="*", default=None,
                        help="region codes (default: all 25)")
    parser.add_argument("--scale", type=float, default=0.04)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    result = run_grid_comparison(
        args.runs,
        args.jobs,
        region_codes=tuple(args.regions) if args.regions else None,
        scale=args.scale,
        seed=args.seed,
    )
    print(_render(result))
    write_bench_result("sweep", result)
    return 0 if result["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
