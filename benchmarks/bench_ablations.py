"""Bench the ablation sweeps over DESIGN.md's called-out design choices.

* pool size m (paper fixes 20),
* mutation count M (paper: 4 / 6),
* the 5% support threshold,
* Eq. 2 read as absolute vs squared error.

Shape to reproduce: conclusions are stable across all four sweeps — the
copy-mutate family keeps fitting and the null model keeps failing.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_ablation_m,
    run_ablation_metric,
    run_ablation_minsup,
    run_ablation_mutations,
)


def test_ablation_m(benchmark, trio_context):
    result = benchmark.pedantic(
        run_ablation_m,
        args=(trio_context,),
        kwargs={"values": (5, 10, 20, 40), "region_codes": ("GRC", "KOR")},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    distances = [float(d) for d in result.column("mean_distance")]
    assert all(d < 0.25 for d in distances)


def test_ablation_mutations(benchmark, trio_context):
    result = benchmark.pedantic(
        run_ablation_mutations,
        args=(trio_context,),
        kwargs={
            "values": (1, 2, 4, 6, 8),
            "model_names": ("CM-R", "CM-C"),
            "region_codes": ("GRC", "KOR"),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert len(result.rows) == 5


def test_ablation_minsup(benchmark, world_context):
    result = benchmark.pedantic(
        run_ablation_minsup,
        args=(world_context,),
        kwargs={"values": (0.02, 0.05, 0.08, 0.12)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    distances = [float(row[1]) for row in result.rows]
    # Cross-cuisine homogeneity holds at every threshold.
    assert all(d < 0.15 for d in distances)


def test_ablation_metric(benchmark, trio_context):
    result = benchmark.pedantic(
        run_ablation_metric,
        args=(trio_context,),
        kwargs={"region_codes": ("GRC", "KOR")},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    for row in result.rows:
        assert row[1] != "NM"  # absolute reading
        assert row[3] != "NM"  # squared reading


def test_ablation_null_sampling(benchmark, trio_context):
    from repro.experiments.ablations import run_ablation_null_sampling

    result = benchmark.pedantic(
        run_ablation_null_sampling,
        args=(trio_context,),
        kwargs={"region_codes": ("GRC", "KOR")},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    for row in result.rows:
        _region, cm, nm_pool, nm_universe = row
        assert float(nm_pool) > float(cm)
        assert float(nm_universe) > float(cm)
