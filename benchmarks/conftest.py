"""Shared benchmark fixtures.

Benchmarks regenerate every paper table/figure at a reduced scale so the
suite completes in minutes; set ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_RUNS``
to raise fidelity (e.g. scale 1.0 and 100 runs reproduce the paper's full
protocol at full cost).
"""

from __future__ import annotations

import os

import pytest

from repro.config import MiningConfig
from repro.experiments.base import ExperimentContext
from repro.lexicon.builder import standard_lexicon
from repro.synthesis.worldgen import WorldKitchen

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20190408"))


@pytest.fixture(scope="session")
def lexicon():
    return standard_lexicon()


@pytest.fixture(scope="session")
def world_context(lexicon) -> ExperimentContext:
    """All 25 cuisines at bench scale."""
    kitchen = WorldKitchen(lexicon, seed=BENCH_SEED)
    dataset = kitchen.generate_dataset(scale=BENCH_SCALE)
    return ExperimentContext(
        lexicon=lexicon,
        dataset=dataset,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        mining=MiningConfig(min_support=0.05),
        ensemble_runs=BENCH_RUNS,
    )


@pytest.fixture(scope="session")
def trio_context(lexicon) -> ExperimentContext:
    """Three representative cuisines (large/medium/small) at bench scale."""
    kitchen = WorldKitchen(lexicon, seed=BENCH_SEED)
    dataset = kitchen.generate_dataset(
        region_codes=("ITA", "GRC", "KOR"), scale=max(BENCH_SCALE, 0.04)
    )
    return ExperimentContext(
        lexicon=lexicon,
        dataset=dataset,
        scale=max(BENCH_SCALE, 0.04),
        seed=BENCH_SEED,
        mining=MiningConfig(min_support=0.05),
        ensemble_runs=BENCH_RUNS,
    )
