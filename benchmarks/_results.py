"""Machine-readable benchmark results, tracked across PRs.

Every bench dumps its wall-clock matrix to ``BENCH_<name>.json`` at the
repo root via :func:`write_bench_result`, so the perf trajectory of the
hot paths is diffable from PR to PR instead of living only in CI logs.
The payload always carries the host context that makes timings
comparable (python/numpy versions, CPU count) next to the bench's own
numbers.

The committed JSONs are *acceptance artifacts* produced by full-size
standalone runs; reduced-size entry points (pytest smoke, ``--fast``
tripwires) must not clobber them, so benches write from those paths
only when ``REPRO_BENCH_WRITE=1`` is set explicitly
(:func:`smoke_write_enabled`).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def smoke_write_enabled() -> bool:
    """Whether reduced-size entry points may overwrite the JSONs."""
    return os.environ.get("REPRO_BENCH_WRITE", "") == "1"


def bench_environment() -> dict:
    """Host context stamped into every bench result."""
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
        "platform": sys.platform,
    }


def write_bench_result(name: str, payload: dict) -> Path:
    """Write one bench's result to ``BENCH_<name>.json`` at the repo root.

    Args:
        name: Bench identifier (``algorithm1``, ``runtime``, ``sweep``).
        payload: The bench's result matrix (JSON-serializable).

    Returns:
        The path written.
    """
    document = {
        "bench": name,
        "generated_unix": int(time.time()),
        "environment": bench_environment(),
        **payload,
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
