"""Bench ``table1``: regenerate Table I and print the paper's rows.

Paper reference (Table I): per-cuisine recipe counts, unique-ingredient
counts and top-5 overrepresented ingredients.  The *shape* to reproduce:
the measured top-5 sets should largely coincide with the published ones
(ITA led by olive/parmesan/basil/garlic/tomato, MEX by tortilla/cilantro/
lime/cumin/tomato, ...).
"""

from __future__ import annotations

from repro.experiments.table1 import run_table1


def bench_run(context):
    return run_table1(context)


def test_table1(benchmark, world_context):
    result = benchmark.pedantic(
        bench_run, args=(world_context,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Shape assertions: strong overlap with the published Table I.
    assert result.mean_top5_overlap() >= 3.5
    assert len(result.rows) == 25
