"""Bench ``storage``: the memory-mapped columnar corpus store at scale.

PR 10 added :mod:`repro.storage.columnar` — a single-file columnar
container (CSR ingredient planes + packed-bit transaction planes,
DESIGN.md §11) that streams corpus generation to disk and mines straight
off ``np.memmap`` views.  This bench drives both corpus representations
through the same workload — *materialize the ITA cuisine and mine its
frequent combinations at support 0.05* — at 1×, 10× and 100× the
paper's corpus sizes:

* ``pickle`` — ``load_pickle`` (full object materialization), then
  the PR-5 bitset miner over ``as_id_sets()``;
* ``columnar`` — ``ColumnarCorpus.open`` (no object materialization),
  then :func:`~repro.analysis.itemsets_bitset.mine_packed` over the
  stored packed-bit planes, zero-copy.

Every measured mode runs in its own subprocess so peak RSS
(``ru_maxrss``) is attributable to that mode alone, and both modes'
mining results are digest-compared for bit-identity before any speedup
is reported.  The pickle input is exported *from* the packed corpus, so
both sides mine byte-for-byte the same world even at chunked scales.

Acceptance targets: columnar open+mine beats pickle load+mine at every
scale >= 10×, and its peak RSS at the largest scale stays below the
object path's.  Results go to ``BENCH_storage.json`` at the repo root.

Entry points:

* pytest (CI smoke; sized by ``REPRO_BENCH_SCALE``)::

      PYTHONPATH=src python -m pytest benchmarks/bench_storage.py -q

* standalone — the acceptance run (1×/10×/100×) or the CI perf
  tripwire (``--fast --check`` exits 1 if the columnar path falls
  behind pickle at 1×, or the results disagree)::

      PYTHONPATH=src python benchmarks/bench_storage.py
      PYTHONPATH=src python benchmarks/bench_storage.py --fast --check
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

if __name__ == "__main__" and "--worker" in sys.argv:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from _results import smoke_write_enabled, write_bench_result  # noqa: E402

REGION = "ITA"
MIN_SUPPORT = 0.05
SEED = 20190408


def _peak_rss_mib() -> float:
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _mining_digest(result) -> str:
    """Stable content digest of a mining result (order included)."""
    hasher = hashlib.sha256()
    for itemset in result.itemsets:
        hasher.update(repr((tuple(itemset.items), itemset.support)).encode())
    hasher.update(str(result.n_transactions).encode())
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Workers: one measured mode per subprocess, JSON on stdout
# ---------------------------------------------------------------------------


def _worker_build_columnar(path: Path, scale: float) -> dict:
    from repro.lexicon.builder import standard_lexicon
    from repro.synthesis.worldgen import WorldKitchen

    kitchen = WorldKitchen(standard_lexicon(), seed=SEED)
    start = time.perf_counter()
    with kitchen.generate_columnar(
        path, region_codes=(REGION,), scale=scale
    ) as corpus:
        n_recipes = corpus.n_recipes
    return {
        "seconds": time.perf_counter() - start,
        "n_recipes": n_recipes,
        "bytes": path.stat().st_size,
        "peak_rss_mib": _peak_rss_mib(),
    }


def _worker_export_pickle(path: Path, pickle_path: Path) -> dict:
    from repro.corpus.io import save_pickle
    from repro.storage.columnar import ColumnarCorpus

    start = time.perf_counter()
    with ColumnarCorpus.open(path) as corpus:
        save_pickle(corpus.to_dataset(), pickle_path)
    return {
        "seconds": time.perf_counter() - start,
        "bytes": pickle_path.stat().st_size,
        "peak_rss_mib": _peak_rss_mib(),
    }


def _worker_mine_pickle(pickle_path: Path) -> dict:
    from repro.analysis.itemsets_bitset import bitset_eclat
    from repro.corpus.io import load_pickle

    start = time.perf_counter()
    dataset = load_pickle(pickle_path)
    transactions = dataset.cuisine(REGION).as_id_sets()
    load_seconds = time.perf_counter() - start
    start = time.perf_counter()
    result = bitset_eclat(transactions, min_support=MIN_SUPPORT)
    mine_seconds = time.perf_counter() - start
    return {
        "load_seconds": load_seconds,
        "mine_seconds": mine_seconds,
        "total_seconds": load_seconds + mine_seconds,
        "peak_rss_mib": _peak_rss_mib(),
        "n_itemsets": len(result.itemsets),
        "digest": _mining_digest(result),
    }


def _worker_mine_columnar(path: Path) -> dict:
    from repro.storage.columnar import ColumnarCorpus

    start = time.perf_counter()
    corpus = ColumnarCorpus.open(path)
    open_seconds = time.perf_counter() - start
    start = time.perf_counter()
    result = corpus.mine(REGION, min_support=MIN_SUPPORT)
    mine_seconds = time.perf_counter() - start
    corpus.close()
    return {
        "load_seconds": open_seconds,
        "mine_seconds": mine_seconds,
        "total_seconds": open_seconds + mine_seconds,
        "peak_rss_mib": _peak_rss_mib(),
        "n_itemsets": len(result.itemsets),
        "digest": _mining_digest(result),
    }


_WORKERS = {
    "build-columnar": lambda args: _worker_build_columnar(
        Path(args.path), args.scale
    ),
    "export-pickle": lambda args: _worker_export_pickle(
        Path(args.path), Path(args.pickle_path)
    ),
    "mine-pickle": lambda args: _worker_mine_pickle(Path(args.pickle_path)),
    "mine-columnar": lambda args: _worker_mine_columnar(Path(args.path)),
}


def _spawn(worker: str, **kwargs: object) -> dict:
    """Run one worker in a fresh interpreter; returns its JSON result."""
    command = [sys.executable, str(Path(__file__).resolve()), "--worker", worker]
    for key, value in kwargs.items():
        command.extend([f"--{key.replace('_', '-')}", str(value)])
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"worker {worker} failed:\n{completed.stderr[-2000:]}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


# ---------------------------------------------------------------------------
# The scale matrix
# ---------------------------------------------------------------------------


def run_storage_matrix(scales: tuple[float, ...] = (1.0, 10.0, 100.0)) -> dict:
    """Build + mine both representations at each scale; returns the table."""
    rows = []
    with tempfile.TemporaryDirectory() as raw_dir:
        workdir = Path(raw_dir)
        for scale in scales:
            columnar_path = workdir / f"ita_{scale:g}x.col"
            pickle_path = workdir / f"ita_{scale:g}x.pkl"
            build = _spawn("build-columnar", path=columnar_path, scale=scale)
            export = _spawn(
                "export-pickle", path=columnar_path, pickle_path=pickle_path
            )
            pickle_run = _spawn("mine-pickle", pickle_path=pickle_path)
            columnar_run = _spawn("mine-columnar", path=columnar_path)
            columnar_path.unlink()
            pickle_path.unlink()
            identical = pickle_run["digest"] == columnar_run["digest"]
            rows.append({
                "scale": scale,
                "n_recipes": build["n_recipes"],
                "columnar_bytes": build["bytes"],
                "pickle_bytes": export["bytes"],
                "build_columnar_seconds": build["seconds"],
                "build_peak_rss_mib": build["peak_rss_mib"],
                "pickle": pickle_run,
                "columnar": columnar_run,
                "identical": identical,
                "speedup": (
                    pickle_run["total_seconds"] / columnar_run["total_seconds"]
                    if columnar_run["total_seconds"] > 0
                    else float("inf")
                ),
                "rss_ratio": (
                    columnar_run["peak_rss_mib"] / pickle_run["peak_rss_mib"]
                    if pickle_run["peak_rss_mib"] > 0
                    else float("inf")
                ),
            })
    return {
        "region": REGION,
        "min_support": MIN_SUPPORT,
        "seed": SEED,
        "scales": [row["scale"] for row in rows],
        "identical_all": all(row["identical"] for row in rows),
        "rows": rows,
    }


def _render(result: dict) -> str:
    lines = [
        f"columnar store: {result['region']} @ support "
        f"{result['min_support']}, scales {result['scales']}; "
        f"results identical: {result['identical_all']}",
        f"{'scale':>6}{'recipes':>10}{'col MiB':>9}{'pkl MiB':>9}"
        f"{'pkl s':>9}{'col s':>9}{'speedup':>9}"
        f"{'pkl RSS':>9}{'col RSS':>9}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['scale']:>5.0f}x{row['n_recipes']:>10}"
            f"{row['columnar_bytes'] / 2**20:>9.1f}"
            f"{row['pickle_bytes'] / 2**20:>9.1f}"
            f"{row['pickle']['total_seconds']:>9.2f}"
            f"{row['columnar']['total_seconds']:>9.3f}"
            f"{row['speedup']:>8.1f}x"
            f"{row['pickle']['peak_rss_mib']:>9.0f}"
            f"{row['columnar']['peak_rss_mib']:>9.0f}"
        )
    return "\n".join(lines)


def _check(result: dict, fast: bool) -> int:
    """The CI tripwire / acceptance gate; returns the exit code."""
    if not result["identical_all"]:
        print("FAIL: packed-plane mining disagrees with the object path")
        return 1
    for row in result["rows"]:
        floor = 1.0
        if row["scale"] >= 10.0 and row["speedup"] < floor:
            print(
                f"FAIL: columnar speedup {row['speedup']:.2f}x at "
                f"{row['scale']:g}x below {floor:.1f}x floor"
            )
            return 1
    if fast:
        # 1× tripwire: the memory-mapped path must at least keep pace.
        smallest = result["rows"][0]
        if smallest["speedup"] < 1.0:
            print(
                f"FAIL: columnar speedup {smallest['speedup']:.2f}x at "
                f"{smallest['scale']:g}x below the 1.0x tripwire"
            )
            return 1
    else:
        largest = result["rows"][-1]
        if largest["rss_ratio"] >= 1.0:
            print(
                f"FAIL: columnar peak RSS {largest['rss_ratio']:.2f}x of "
                "the pickle path at the largest scale (must stay below 1)"
            )
            return 1
    return 0


def test_storage_throughput():
    """Pytest entry: one reduced scale, bit-identity + no-regression."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
    result = run_storage_matrix(scales=(max(scale, 0.02),))
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("storage", result)
    assert result["identical_all"]
    row = result["rows"][0]
    assert row["columnar"]["n_itemsets"] == row["pickle"]["n_itemsets"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scales", type=float, nargs="*", default=None,
        help="scale multipliers to measure (default: 1 10 100)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke sizing (1x only) for CI tripwires",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit 1 unless packed and object mining agree bit-for-bit "
            "and the columnar path meets its speedup/RSS floors"
        ),
    )
    parser.add_argument("--worker", choices=sorted(_WORKERS), default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--path", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--pickle-path", dest="pickle_path", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=float, default=1.0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker is not None:
        print(json.dumps(_WORKERS[args.worker](args)))
        return 0

    if args.fast:
        scales: tuple[float, ...] = (1.0,)
    elif args.scales:
        scales = tuple(args.scales)
    else:
        scales = (1.0, 10.0, 100.0)
    result = run_storage_matrix(scales=scales)
    print(_render(result))
    # --fast is the CI tripwire; only full-size runs may replace the
    # committed acceptance artifact.
    if not args.fast or smoke_write_enabled():
        write_bench_result("storage", result)
    if args.check:
        return _check(result, fast=args.fast)
    return 0 if result["identical_all"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
