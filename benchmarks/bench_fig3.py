"""Bench ``fig3``: invariance of combination rank-frequency curves.

Paper reference (Fig. 3): per-cuisine rank-frequency distributions of
frequent ingredient combinations (3a) and category combinations (3b) are
remarkably similar; average pairwise MAE 0.035 and 0.052 respectively;
low-count cuisines are the most distinct.
"""

from __future__ import annotations

from repro.experiments.fig3 import run_fig3


def bench_run(context):
    return run_fig3(context)


def test_fig3(benchmark, world_context):
    result = benchmark.pedantic(
        bench_run, args=(world_context,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Shape: homogeneous curves -> small average pairwise distance.
    # (At bench scale, mining noise inflates the paper's full-corpus
    # 0.035/0.052 somewhat.)
    assert result.ingredient.average_distance < 0.12
    assert result.category.average_distance < 0.30
