"""Bench ``mining``: the frequent-itemset fast path on a paper-scale ensemble.

PR 3 made Algorithm 1 itself 3.6–5.1× faster, which left per-run mining
as the dominant cost of every ensemble aggregation.  This bench times
the four ways an ensemble's rank-frequency curve can be produced, on the
paper protocol (ITA, 100 runs, support 0.05 at ``--scale 1.0``):

* ``eclat-serial`` — the pure-Python reference miner, serial map;
* ``bitset-serial`` — the packed-bit engine
  (:mod:`repro.analysis.itemsets_bitset`), serial map;
* ``bitset-process`` — the bitset engine fanned out process-parallel
  through the picklable :func:`~repro.models.ensemble.mine_curve_task`
  path (informative on multi-core hosts; equals serial on one core);
* ``warm-cache`` — a second aggregation served entirely from the
  mined-curve cache (zero mining calls).

All four curves are verified bit-identical before any speedup is
reported.  The acceptance target is a ≥3× bitset-over-eclat speedup at
paper scale; results go to ``BENCH_mining.json`` at the repo root.

Entry points:

* pytest (CI smoke; sized by ``REPRO_BENCH_SCALE``/``REPRO_BENCH_RUNS``)::

      PYTHONPATH=src python -m pytest benchmarks/bench_mining.py -q

* standalone — the acceptance run (full scale) or the CI perf tripwire
  (``--fast --check`` exits 1 if the bitset engine falls behind eclat)::

      PYTHONPATH=src python benchmarks/bench_mining.py
      PYTHONPATH=src python benchmarks/bench_mining.py --fast --check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import numpy as np

from _results import smoke_write_enabled, write_bench_result
from repro.config import MiningConfig
from repro.lexicon.builder import standard_lexicon
from repro.models.ensemble import ensemble_curve
from repro.models.params import CuisineSpec
from repro.models.registry import create_model
from repro.rng import rng_from_seed, spawn_seeds
from repro.runtime import CurveCache, RuntimeConfig, execute_runs
from repro.synthesis.worldgen import WorldKitchen


def _bench_spec(region: str, scale: float) -> CuisineSpec:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=20190408)
    dataset = kitchen.generate_dataset(region_codes=(region,), scale=scale)
    return CuisineSpec.from_view(dataset.cuisine(region), lexicon)


def run_mining_matrix(
    region: str = "ITA",
    scale: float = 1.0,
    n_runs: int = 100,
    min_support: float = 0.05,
    seed: int = 7,
    model_name: str = "CM-R",
) -> dict:
    """Time every mining mode on one ensemble; returns the result table."""
    spec = _bench_spec(region, scale)
    model = create_model(model_name)
    seeds = spawn_seeds(rng_from_seed(seed), n_runs)
    generate_start = time.perf_counter()
    runs = execute_runs(model, spec, seeds)
    generate_seconds = time.perf_counter() - generate_start

    modes: list[tuple[str, float]] = []
    curves: dict[str, np.ndarray] = {}

    eclat = MiningConfig(min_support=min_support, algorithm="eclat")
    start = time.perf_counter()
    curves["eclat-serial"] = ensemble_curve(
        runs, model_name, mining=eclat
    ).frequencies
    modes.append(("eclat-serial", time.perf_counter() - start))

    bitset = MiningConfig(min_support=min_support, algorithm="bitset")
    start = time.perf_counter()
    curves["bitset-serial"] = ensemble_curve(
        runs, model_name, mining=bitset
    ).frequencies
    modes.append(("bitset-serial", time.perf_counter() - start))

    process_runtime = RuntimeConfig(backend="process", jobs=0)
    jobs = process_runtime.resolve_jobs()
    start = time.perf_counter()
    curves["bitset-process"] = ensemble_curve(
        runs, model_name, mining=bitset, runtime=process_runtime
    ).frequencies
    modes.append(("bitset-process", time.perf_counter() - start))

    warm_hits = 0
    with tempfile.TemporaryDirectory() as cache_dir:
        fill_cache = CurveCache(cache_dir)
        ensemble_curve(
            runs, model_name, mining=bitset, curve_cache=fill_cache
        )
        warm_cache = CurveCache(cache_dir)
        start = time.perf_counter()
        curves["warm-cache"] = ensemble_curve(
            runs, model_name, mining=bitset, curve_cache=warm_cache
        ).frequencies
        modes.append(("warm-cache", time.perf_counter() - start))
        warm_hits = warm_cache.stats.hits

    reference = curves["eclat-serial"]
    curves_identical = all(
        np.array_equal(reference, frequencies)
        for frequencies in curves.values()
    )
    seconds = dict(modes)
    rows = [
        {
            "mode": mode,
            "seconds": elapsed,
            "runs_per_second": n_runs / elapsed if elapsed > 0 else float("inf"),
            "speedup_vs_eclat": (
                seconds["eclat-serial"] / elapsed if elapsed > 0 else float("inf")
            ),
        }
        for mode, elapsed in modes
    ]
    return {
        "region": region,
        "scale": scale,
        "n_runs": n_runs,
        "min_support": min_support,
        "seed": seed,
        "model": model_name,
        "spec": {
            "n_ingredients": spec.n_ingredients,
            "n_recipes": spec.n_recipes,
            "recipe_size": spec.recipe_size,
            "phi": spec.phi,
        },
        "generate_seconds": generate_seconds,
        "process_jobs": jobs,
        "curves_identical": curves_identical,
        "warm_cache_hits": warm_hits,
        "bitset_speedup": seconds["eclat-serial"] / seconds["bitset-serial"],
        "process_speedup": seconds["eclat-serial"] / seconds["bitset-process"],
        "warm_speedup": seconds["eclat-serial"] / seconds["warm-cache"],
        "rows": rows,
    }


def _render(result: dict) -> str:
    spec = result["spec"]
    lines = [
        f"mining fast path: {result['region']} @ scale {result['scale']} "
        f"(N={spec['n_recipes']}, s={spec['recipe_size']}), "
        f"{result['n_runs']} runs @ support {result['min_support']}; "
        f"curves identical: {result['curves_identical']}; "
        f"warm hits: {result['warm_cache_hits']}/{result['n_runs']}",
        f"{'mode':<16}{'seconds':>10}{'runs/s':>10}{'vs eclat':>10}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['mode']:<16}{row['seconds']:>10.3f}"
            f"{row['runs_per_second']:>10.1f}"
            f"{row['speedup_vs_eclat']:>9.2f}x"
        )
    lines.append(
        f"bitset {result['bitset_speedup']:.2f}x, process "
        f"{result['process_speedup']:.2f}x (jobs={result['process_jobs']}), "
        f"warm cache {result['warm_speedup']:.2f}x"
    )
    return "\n".join(lines)


def test_mining_throughput(benchmark):
    """Pytest entry: small ensemble, all modes, identity + no-regression.

    Sized by ``REPRO_BENCH_SCALE``/``REPRO_BENCH_RUNS`` like the other
    benches.  Asserts the bitset engine is not slower than pure-Python
    eclat even at smoke sizes and that the warm pass is pure cache hits;
    the ≥3× acceptance claim is asserted at paper scale only
    (standalone run).
    """
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
    n_runs = int(os.environ.get("REPRO_BENCH_RUNS", "8"))
    result = benchmark.pedantic(
        run_mining_matrix,
        kwargs={"region": "ITA", "scale": scale, "n_runs": n_runs},
        rounds=1,
        iterations=1,
    )
    print()
    print(_render(result))
    if smoke_write_enabled():
        write_bench_result("mining", result)
    assert result["curves_identical"]
    assert result["warm_cache_hits"] == n_runs
    assert result["bitset_speedup"] >= 1.0
    if scale >= 0.5 and n_runs >= 50:
        assert result["bitset_speedup"] >= 3.0


def main(argv: list[str] | None = None) -> int:
    """Standalone mining comparison (the acceptance-criterion runner)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--region", default="ITA")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="corpus scale (default: 1.0, the paper sizes)")
    parser.add_argument("--runs", type=int, default=100,
                        help="ensemble runs to mine (paper: 100)")
    parser.add_argument("--min-support", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke sizing (scale 0.05, 8 runs) for CI tripwires",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit 1 unless the bitset engine beats pure-Python eclat "
            "(by >=3x at scale >= 0.5 with >= 50 runs), curves are "
            "identical and the warm pass is pure cache hits"
        ),
    )
    args = parser.parse_args(argv)
    scale = 0.05 if args.fast else args.scale
    n_runs = 8 if args.fast else args.runs
    result = run_mining_matrix(
        region=args.region, scale=scale, n_runs=n_runs,
        min_support=args.min_support, seed=args.seed,
    )
    print(_render(result))
    # --fast is the CI tripwire; only full-size runs may replace the
    # committed acceptance artifact.
    if not args.fast or smoke_write_enabled():
        write_bench_result("mining", result)
    if not result["curves_identical"]:
        print("FAIL: mining modes disagree")
        return 1
    if args.check:
        if result["warm_cache_hits"] != n_runs:
            print(
                f"FAIL: warm pass hit the curve cache "
                f"{result['warm_cache_hits']}/{n_runs} times"
            )
            return 1
        floor = 3.0 if (scale >= 0.5 and n_runs >= 50) else 1.0
        if result["bitset_speedup"] < floor:
            print(
                f"FAIL: bitset speedup {result['bitset_speedup']:.2f}x "
                f"below {floor:.1f}x floor"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
