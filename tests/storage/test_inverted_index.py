"""Tests for the inverted index, incl. property-based support checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.recipe import Recipe
from repro.storage.inverted_index import (
    InvertedIndex,
    intersect_pair,
    intersect_postings,
)


@pytest.fixture()
def index(tiny_dataset):
    return InvertedIndex(tiny_dataset.recipes)


def test_postings_sorted_rows(index):
    postings = index.postings(0)
    assert list(postings) == sorted(postings)


def test_document_frequency(index):
    assert index.document_frequency(0) == 4  # tomato
    assert index.document_frequency(5) == 4  # cumin
    assert index.document_frequency(999) == 0


def test_support_single(index):
    assert index.support([0]) == 4


def test_support_conjunction(index):
    assert index.support([0, 7]) == 3  # tomato AND basil: ITA recipes 0-2
    assert index.support([0, 5]) == 1  # tomato AND cumin: KOR recipe 7


def test_support_empty_itemset_is_all(index):
    assert index.support([]) == 8


def test_support_unseen_item(index):
    assert index.support([0, 999]) == 0


def test_rows_containing(index):
    rows = index.rows_containing([0, 7])
    assert [index.recipe_at(int(r)).recipe_id for r in rows] == [0, 1, 2]


def test_vocabulary(index):
    assert index.vocabulary == tuple(range(10))


def test_document_frequencies_consistent(index):
    frequencies = index.document_frequencies()
    for ingredient_id, count in frequencies.items():
        assert count == index.document_frequency(ingredient_id)


def test_intersect_postings_empty_input():
    assert intersect_postings([]).size == 0


def test_intersect_postings_basic():
    a = np.array([1, 3, 5, 7], dtype=np.int64)
    b = np.array([3, 4, 5], dtype=np.int64)
    assert list(intersect_postings([a, b])) == [3, 5]


def test_intersect_postings_disjoint():
    a = np.array([1, 2], dtype=np.int64)
    b = np.array([3, 4], dtype=np.int64)
    assert intersect_postings([a, b]).size == 0


@st.composite
def recipes_strategy(draw):
    n = draw(st.integers(1, 30))
    recipes = []
    for recipe_id in range(n):
        ids = draw(st.sets(st.integers(0, 15), min_size=1, max_size=8))
        recipes.append(Recipe(recipe_id, "ITA", tuple(ids)))
    return recipes


@given(recipes_strategy(), st.sets(st.integers(0, 15), min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_support_matches_bruteforce(recipes, query):
    index = InvertedIndex(recipes)
    expected = sum(
        1 for recipe in recipes if query <= set(recipe.ingredient_ids)
    )
    assert index.support(query) == expected


@given(recipes_strategy())
@settings(max_examples=50, deadline=None)
def test_document_frequency_matches_bruteforce(recipes):
    index = InvertedIndex(recipes)
    for ingredient_id in range(16):
        expected = sum(
            1 for recipe in recipes
            if ingredient_id in recipe.ingredient_ids
        )
        assert index.document_frequency(ingredient_id) == expected


# ---------------------------------------------------------------------------
# intersect_pair strategy equivalence (galloping vs sort-based)
# ---------------------------------------------------------------------------


def _sorted_unique(values) -> np.ndarray:
    return np.unique(np.asarray(list(values), dtype=np.int64))


def test_intersect_pair_gallop_branch():
    # |small|=2 against |other|=1000 takes the searchsorted branch.
    small = _sorted_unique([5, 999])
    other = np.arange(1000, dtype=np.int64)
    result = intersect_pair(small, other)
    assert result.tolist() == [5, 999]


def test_intersect_pair_sort_branch():
    # Comparable sizes take the np.isin branch.
    small = _sorted_unique(range(0, 40, 2))
    other = _sorted_unique(range(0, 40, 3))
    result = intersect_pair(small, other)
    assert result.tolist() == sorted(set(small.tolist()) & set(other.tolist()))


def test_intersect_pair_gallop_miss_past_end():
    # An element past other's end probes index 0 safely and never matches.
    small = _sorted_unique([2000, 2001])
    other = np.arange(1000, dtype=np.int64)
    assert intersect_pair(small, other).size == 0


def test_intersect_pair_empty_sides():
    empty = np.array([], dtype=np.int64)
    other = np.array([1, 2, 3], dtype=np.int64)
    assert intersect_pair(empty, other).size == 0
    assert intersect_pair(other, empty).size == 0


@given(
    st.sets(st.integers(0, 10_000), max_size=12),
    st.sets(st.integers(0, 10_000), max_size=400),
)
@settings(max_examples=120, deadline=None)
def test_intersect_pair_branches_agree(small_values, other_values):
    """Both strategies must return the identical sorted intersection."""
    small = _sorted_unique(small_values)
    other = _sorted_unique(other_values)
    expected = sorted(set(small.tolist()) & set(other.tolist()))
    assert intersect_pair(small, other).tolist() == expected
    # Force the sort-based reference explicitly for the same inputs.
    reference = small[np.isin(small, other, assume_unique=True)]
    assert reference.tolist() == expected
