"""Tests for the memory-mapped columnar corpus store (DESIGN.md §11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.itemsets import available_algorithms, mine_frequent_itemsets
from repro.corpus.dataset import RecipeDataset
from repro.corpus.recipe import Recipe
from repro.corpus.stats import corpus_stats
from repro.errors import StorageError
from repro.runtime import cache_corruptions, clear_cache_corruptions
from repro.runtime.curve_cache import transactions_fingerprint
from repro.storage.columnar import (
    COLUMNAR_FORMAT_VERSION,
    COLUMNAR_SUFFIX,
    ColumnarCorpus,
    ColumnarRecipeStore,
    ColumnarWriter,
    pack_dataset,
)
from repro.storage.store import RecipeStore


@pytest.fixture(scope="module")
def packed_path(tmp_path_factory, small_corpus):
    path = tmp_path_factory.mktemp("columnar") / f"small{COLUMNAR_SUFFIX}"
    with pack_dataset(small_corpus, path):
        pass
    return path


@pytest.fixture()
def corpus(packed_path):
    with ColumnarCorpus.open(packed_path) as opened:
        yield opened


# ---------------------------------------------------------------------------
# Round-trip
# ---------------------------------------------------------------------------


def test_roundtrip_recipes_exact(corpus, small_corpus):
    assert list(corpus.to_dataset()) == list(small_corpus)


def test_roundtrip_tiny_dataset(tmp_path, tiny_dataset):
    path = tmp_path / f"tiny{COLUMNAR_SUFFIX}"
    with pack_dataset(tiny_dataset, path) as packed:
        assert list(packed.to_dataset()) == list(tiny_dataset)


def test_region_codes_sorted(corpus, small_corpus):
    assert corpus.region_codes() == small_corpus.region_codes()


def test_cuisine_slices_match_dataset(corpus, small_corpus):
    for code in small_corpus.region_codes():
        view = small_corpus.cuisine(code)
        assert corpus.cuisine_size(code) == len(view)
        rows = corpus.cuisine_rows(code)
        got = [corpus.recipe(int(row)) for row in rows]
        assert got == list(view.recipes)


def test_transactions_match_as_id_sets(corpus, small_corpus):
    for code in small_corpus.region_codes():
        assert corpus.transactions(code) == small_corpus.cuisine(code).as_id_sets()


def test_stats_match_corpus_stats(corpus, small_corpus):
    assert corpus.stats() == corpus_stats(small_corpus)


def test_iter_recipes(corpus, small_corpus):
    assert list(corpus.iter_recipes()) == list(small_corpus)


def test_len_and_counts(corpus, small_corpus):
    assert len(corpus) == len(small_corpus)
    assert corpus.n_recipes == len(small_corpus)


def test_sizes_vector(corpus, small_corpus):
    expected = [len(r.ingredient_ids) for r in small_corpus]
    assert corpus.sizes().tolist() == expected


def test_ingredient_universe_global(corpus, small_corpus):
    expected = sorted({i for r in small_corpus for i in r.ingredient_ids})
    assert corpus.ingredient_universe().tolist() == expected


def test_ingredient_universe_cuisine(corpus, small_corpus):
    for code in small_corpus.region_codes():
        expected = sorted(
            {i for r in small_corpus.cuisine(code).recipes
             for i in r.ingredient_ids}
        )
        assert corpus.ingredient_universe(code).tolist() == expected


def test_unknown_region_raises(corpus):
    with pytest.raises(StorageError):
        corpus.cuisine_rows("XXX")


def test_pack_is_deterministic(tmp_path, tiny_dataset):
    first = tmp_path / f"a{COLUMNAR_SUFFIX}"
    second = tmp_path / f"b{COLUMNAR_SUFFIX}"
    pack_dataset(tiny_dataset, first).close()
    pack_dataset(tiny_dataset, second).close()
    assert first.read_bytes() == second.read_bytes()


def test_no_text_mode_drops_titles(tmp_path, tiny_dataset):
    path = tmp_path / f"bare{COLUMNAR_SUFFIX}"
    with pack_dataset(tiny_dataset, path, store_text=False) as packed:
        assert not packed.store_text
        recipe = packed.recipe(0)
        assert recipe.title == ""
        assert recipe.ingredient_ids == tiny_dataset.recipes[0].ingredient_ids


# ---------------------------------------------------------------------------
# Packed planes and mining
# ---------------------------------------------------------------------------


def test_packed_planes_stored_by_default(corpus, small_corpus):
    names = corpus.plane_names()
    for code in small_corpus.region_codes():
        assert f"bits:{code}" in names
        assert f"bititems:{code}" in names


def test_mining_bit_identical_to_every_algorithm(tmp_path, tiny_dataset):
    path = tmp_path / f"mine{COLUMNAR_SUFFIX}"
    with pack_dataset(tiny_dataset, path) as packed:
        for code in tiny_dataset.region_codes():
            packed_result = packed.mine(code, min_support=0.3)
            transactions = tiny_dataset.cuisine(code).as_id_sets()
            for algorithm in available_algorithms():
                reference = mine_frequent_itemsets(
                    transactions, min_support=0.3, algorithm=algorithm
                )
                assert packed_result.itemsets == reference.itemsets
                assert packed_result.n_transactions == reference.n_transactions


def test_mining_bit_identical_at_corpus_scale(corpus, small_corpus):
    for code in small_corpus.region_codes():
        packed_result = corpus.mine(code, min_support=0.05)
        reference = mine_frequent_itemsets(
            small_corpus.cuisine(code).as_id_sets(),
            min_support=0.05,
            algorithm="bitset",
        )
        assert packed_result.itemsets == reference.itemsets
        assert packed_result.n_transactions == reference.n_transactions


def test_mining_without_stored_bitplanes_matches(tmp_path, small_corpus):
    code = small_corpus.region_codes()[0]
    path = tmp_path / f"nobits{COLUMNAR_SUFFIX}"
    with pack_dataset(small_corpus, path, bitplanes=False) as bare:
        assert not any(n.startswith("bits:") for n in bare.plane_names())
        fallback = bare.mine(code, min_support=0.05)
    with pack_dataset(
        small_corpus, tmp_path / f"bits{COLUMNAR_SUFFIX}"
    ) as stored:
        assert fallback.itemsets == stored.mine(code, min_support=0.05).itemsets


def test_packed_matches_packbits_layout(corpus, small_corpus):
    code = small_corpus.region_codes()[0]
    packed = corpus.packed(code)
    transactions = small_corpus.cuisine(code).as_id_sets()
    universe = packed.item_ids.tolist()
    dense = np.zeros((len(universe), len(transactions)), dtype=np.uint8)
    position = {item: row for row, item in enumerate(universe)}
    for column, transaction in enumerate(transactions):
        for item in transaction:
            dense[position[item], column] = 1
    assert np.array_equal(packed.matrix, np.packbits(dense, axis=1))
    assert packed.n_transactions == len(transactions)


def test_fingerprint_interop_with_object_path(corpus, small_corpus):
    for code in small_corpus.region_codes():
        object_fp = transactions_fingerprint(
            small_corpus.cuisine(code).as_id_sets()
        )
        assert corpus.transactions_fingerprint_for(code) == object_fp


# ---------------------------------------------------------------------------
# Store facade
# ---------------------------------------------------------------------------


def test_facade_parity_with_eager_store(corpus, small_corpus, lexicon):
    eager = RecipeStore(small_corpus, lexicon)
    facade = corpus.as_store(lexicon)
    assert isinstance(facade, ColumnarRecipeStore)
    assert facade.region_codes() == eager.region_codes()
    code = eager.region_codes()[0]
    probe = list(small_corpus.cuisine(code).recipes[0].ingredient_ids[:2])
    assert facade.support(probe) == eager.support(probe)
    assert facade.support(probe, region_code=code) == eager.support(
        probe, region_code=code
    )
    assert facade.relative_support(probe) == eager.relative_support(probe)
    assert facade.cooccurrence(probe[0]) == eager.cooccurrence(probe[0])
    assert facade.cooccurrence(probe[0], region_code=code) == eager.cooccurrence(
        probe[0], region_code=code
    )


def test_facade_rejects_unknown_ids(tmp_path, tiny_lexicon):
    dataset = RecipeDataset([Recipe(0, "ITA", (0, 999))])
    path = tmp_path / f"bad{COLUMNAR_SUFFIX}"
    with ColumnarWriter(path) as writer:
        writer.add_recipes(dataset.recipes)
    with ColumnarCorpus.open(path) as packed:
        with pytest.raises(StorageError, match=r"recipe 0 references ids"):
            packed.as_store(tiny_lexicon)


def test_facade_error_message_matches_eager_store(tmp_path, tiny_lexicon):
    dataset = RecipeDataset([Recipe(3, "KOR", (1, 2, 999))])
    try:
        RecipeStore(dataset, tiny_lexicon)
    except StorageError as error:
        eager_message = str(error)
    path = tmp_path / f"bad{COLUMNAR_SUFFIX}"
    with ColumnarWriter(path) as writer:
        writer.add_recipes(dataset.recipes)
    with ColumnarCorpus.open(path) as packed:
        with pytest.raises(StorageError) as info:
            packed.as_store(tiny_lexicon)
    assert str(info.value) == eager_message


# ---------------------------------------------------------------------------
# Writer validation
# ---------------------------------------------------------------------------


def test_writer_rejects_duplicate_recipe_ids(tmp_path):
    path = tmp_path / f"dup{COLUMNAR_SUFFIX}"
    with pytest.raises(StorageError, match="duplicate"):
        with ColumnarWriter(path) as writer:
            writer.add_recipes(
                [Recipe(0, "ITA", (1, 2)), Recipe(0, "KOR", (3, 4))]
            )
    assert not path.exists()


def test_writer_rejects_unsorted_ingredient_ids(tmp_path):
    path = tmp_path / f"unsorted{COLUMNAR_SUFFIX}"
    with pytest.raises(StorageError):
        with ColumnarWriter(path) as writer:
            writer.add_chunk(
                "ITA",
                lengths=np.array([2], dtype=np.int64),
                flat_ids=np.array([5, 3], dtype=np.int64),
                recipe_ids=np.array([0], dtype=np.int64),
            )
    assert not path.exists()


def test_writer_rejects_length_mismatch(tmp_path):
    path = tmp_path / f"mismatch{COLUMNAR_SUFFIX}"
    with pytest.raises(StorageError):
        with ColumnarWriter(path) as writer:
            writer.add_chunk(
                "ITA",
                lengths=np.array([3], dtype=np.int64),
                flat_ids=np.array([1, 2], dtype=np.int64),
                recipe_ids=np.array([0], dtype=np.int64),
            )


def test_writer_rejects_negative_ids(tmp_path):
    path = tmp_path / f"negative{COLUMNAR_SUFFIX}"
    with pytest.raises(StorageError):
        with ColumnarWriter(path) as writer:
            writer.add_chunk(
                "ITA",
                lengths=np.array([1], dtype=np.int64),
                flat_ids=np.array([-1], dtype=np.int64),
                recipe_ids=np.array([0], dtype=np.int64),
            )


def test_writer_abort_leaves_no_file(tmp_path):
    path = tmp_path / f"aborted{COLUMNAR_SUFFIX}"
    writer = ColumnarWriter(path)
    writer.add_recipes([Recipe(0, "ITA", (1, 2))])
    writer.abort()
    assert not path.exists()
    assert not list(tmp_path.iterdir())


def test_writer_temp_files_cleaned_on_success(tmp_path, tiny_dataset):
    path = tmp_path / f"clean{COLUMNAR_SUFFIX}"
    pack_dataset(tiny_dataset, path).close()
    assert [entry.name for entry in tmp_path.iterdir()] == [path.name]


# ---------------------------------------------------------------------------
# Corruption quarantine (§9 conventions)
# ---------------------------------------------------------------------------


@pytest.fixture()
def _clean_corruptions():
    clear_cache_corruptions()
    yield
    clear_cache_corruptions()


def _pack_tiny(tmp_path, tiny_dataset):
    path = tmp_path / f"victim{COLUMNAR_SUFFIX}"
    pack_dataset(tiny_dataset, path).close()
    return path


def test_corrupt_magic_quarantined(tmp_path, tiny_dataset, _clean_corruptions):
    path = _pack_tiny(tmp_path, tiny_dataset)
    raw = bytearray(path.read_bytes())
    raw[:4] = b"XXXX"
    path.write_bytes(bytes(raw))
    with pytest.raises(StorageError, match="quarantined"):
        ColumnarCorpus.open(path)
    assert not path.exists()
    assert path.with_suffix(path.suffix + ".bad").exists()
    events = cache_corruptions()
    assert events and events[-1].store == "ColumnarCorpus"
    assert events[-1].kind == "corrupt-header"


def test_torn_write_quarantined(tmp_path, tiny_dataset, _clean_corruptions):
    path = _pack_tiny(tmp_path, tiny_dataset)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(StorageError):
        ColumnarCorpus.open(path)
    assert not path.exists()
    assert path.with_suffix(path.suffix + ".bad").exists()
    assert cache_corruptions()[-1].store == "ColumnarCorpus"


def test_footer_checksum_mismatch_quarantined(
    tmp_path, tiny_dataset, _clean_corruptions
):
    path = _pack_tiny(tmp_path, tiny_dataset)
    raw = bytearray(path.read_bytes())
    # Flip a byte inside the JSON footer (between the planes and the
    # trailer) so the trailer's footer digest no longer matches.
    raw[-60] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(StorageError):
        ColumnarCorpus.open(path)
    assert path.with_suffix(path.suffix + ".bad").exists()


def test_verify_catches_plane_bitrot(tmp_path, tiny_dataset, _clean_corruptions):
    path = _pack_tiny(tmp_path, tiny_dataset)
    raw = bytearray(path.read_bytes())
    # Flip a byte in the first plane, past the magic: the footer still
    # parses, so only verify=True catches it.
    raw[len(b"RPCOL") + 70] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(StorageError, match="checksum"):
        ColumnarCorpus.open(path, verify=True)
    assert path.with_suffix(path.suffix + ".bad").exists()
    assert cache_corruptions()[-1].kind == "checksum-mismatch"


def test_missing_file_raises_without_quarantine(tmp_path, _clean_corruptions):
    with pytest.raises(StorageError):
        ColumnarCorpus.open(tmp_path / f"absent{COLUMNAR_SUFFIX}")
    assert cache_corruptions() == ()


def test_format_version_mismatch_quarantined(
    tmp_path, tiny_dataset, _clean_corruptions
):
    assert COLUMNAR_FORMAT_VERSION == 1
    path = _pack_tiny(tmp_path, tiny_dataset)
    raw = path.read_bytes()
    mutated = raw.replace(b'"version":1', b'"version":9')
    assert mutated != raw
    # Re-stamp the trailer's footer digest so only the version differs.
    import hashlib
    import struct

    offset, length = struct.unpack("<QQ", mutated[-48:-32])
    footer = mutated[offset : offset + length]
    mutated = mutated[:-32] + hashlib.sha256(footer).digest()
    path.write_bytes(mutated)
    with pytest.raises(StorageError, match="version"):
        ColumnarCorpus.open(path)
    assert path.with_suffix(path.suffix + ".bad").exists()


# ---------------------------------------------------------------------------
# Disk stats
# ---------------------------------------------------------------------------


def test_disk_stats_accounts_every_plane(corpus):
    disk = corpus.disk_stats()
    assert disk.n_recipes == corpus.n_recipes
    assert disk.n_planes == len(corpus.plane_names())
    assert {plane.name for plane in disk.planes} == set(corpus.plane_names())
    assert disk.total_bytes == corpus.path.stat().st_size
    assert sum(plane.nbytes for plane in disk.planes) <= disk.total_bytes
