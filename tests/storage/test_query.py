"""Tests for the conjunctive query layer."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.storage.query import HasCategory, HasIngredient, Query, SizeBetween
from repro.storage.store import RecipeStore


@pytest.fixture()
def store(tiny_dataset, tiny_lexicon):
    return RecipeStore(tiny_dataset, tiny_lexicon)


def test_has_ingredient_by_id(store):
    query = Query([HasIngredient(0)])
    assert query.count(store) == 4


def test_has_ingredient_by_name(store):
    query = Query([HasIngredient("tomato")])
    assert query.count(store) == 4


def test_has_ingredient_via_alias(store):
    query = Query([HasIngredient("roma tomatoes")])
    assert query.count(store) == 4


def test_has_ingredient_unresolvable_raises(store):
    with pytest.raises(QueryError):
        Query([HasIngredient("unicorn")]).count(store)


def test_has_category(store):
    query = Query([HasCategory("Spice")])
    assert query.count(store) == 4  # all KOR recipes


def test_conjunction(store):
    query = Query([HasIngredient("tomato"), HasCategory("Spice")])
    assert query.count(store) == 1  # KOR recipe 7


def test_size_between(store):
    assert Query([SizeBetween(4, 4)]).count(store) == 2
    assert Query([SizeBetween(2, 3)]).count(store) == 6


def test_size_bounds_validated():
    with pytest.raises(QueryError):
        SizeBetween(0, 5)
    with pytest.raises(QueryError):
        SizeBetween(5, 2)


def test_empty_query_rejected():
    with pytest.raises(QueryError):
        Query([])


def test_execute_returns_recipes(store):
    recipes = Query([HasIngredient("basil")]).execute(store, region_code="ITA")
    assert [recipe.recipe_id for recipe in recipes] == [0, 1, 2]


def test_execute_scoped_to_cuisine(store):
    query = Query([HasIngredient("tomato")])
    assert query.count(store, region_code="KOR") == 1
