"""Property-based round-trip tests for the columnar store (DESIGN.md §11)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.dataset import RecipeDataset
from repro.corpus.recipe import Recipe
from repro.storage.columnar import COLUMNAR_SUFFIX, pack_dataset

recipe_strategy = st.builds(
    Recipe,
    recipe_id=st.integers(0, 10**6),
    region_code=st.sampled_from(["ITA", "KOR", "MEX", "USA", "IND"]),
    ingredient_ids=st.sets(st.integers(0, 720), min_size=1, max_size=20).map(
        lambda ids: tuple(sorted(ids))
    ),
    title=st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=20
    ),
    source=st.sampled_from(["", "allrecipes", "epicurious"]),
)


@st.composite
def dataset_strategy(draw):
    recipes = draw(st.lists(recipe_strategy, min_size=1, max_size=30))
    unique = {}
    for recipe in recipes:
        unique[recipe.recipe_id] = recipe
    return RecipeDataset(unique.values())


def _pack(tmp_path_factory, dataset, **kwargs):
    path = (
        tmp_path_factory.mktemp("colprop") / f"corpus{COLUMNAR_SUFFIX}"
    )
    return pack_dataset(dataset, path, **kwargs)


@given(dataset_strategy())
@settings(max_examples=40, deadline=None)
def test_roundtrip_exact(tmp_path_factory, dataset):
    with _pack(tmp_path_factory, dataset) as packed:
        assert list(packed.to_dataset()) == list(dataset)


@given(dataset_strategy())
@settings(max_examples=25, deadline=None)
def test_cuisine_slices_and_ids(tmp_path_factory, dataset):
    with _pack(tmp_path_factory, dataset) as packed:
        assert packed.region_codes() == dataset.region_codes()
        for code in dataset.region_codes():
            view = dataset.cuisine(code)
            assert packed.cuisine_size(code) == len(view)
            rows = packed.cuisine_rows(code)
            got_ids = [int(packed.recipe_ids[row]) for row in rows]
            assert got_ids == [r.recipe_id for r in view.recipes]


@given(dataset_strategy())
@settings(max_examples=25, deadline=None)
def test_transaction_sets_roundtrip(tmp_path_factory, dataset):
    with _pack(tmp_path_factory, dataset) as packed:
        for code in dataset.region_codes():
            assert packed.transactions(code) == dataset.cuisine(code).as_id_sets()


@given(dataset_strategy(), st.booleans())
@settings(max_examples=20, deadline=None)
def test_packed_mining_matches_object_path(tmp_path_factory, dataset, bitplanes):
    from repro.analysis.itemsets import mine_frequent_itemsets

    with _pack(tmp_path_factory, dataset, bitplanes=bitplanes) as packed:
        for code in dataset.region_codes():
            reference = mine_frequent_itemsets(
                dataset.cuisine(code).as_id_sets(),
                min_support=0.4,
                algorithm="bitset",
                max_size=3,
            )
            mined = packed.mine(code, min_support=0.4, max_size=3)
            assert mined.itemsets == reference.itemsets
