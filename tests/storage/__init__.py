"""Test package: storage."""
