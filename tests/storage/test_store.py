"""Tests for RecipeStore."""

from __future__ import annotations

import pytest

from repro.corpus.dataset import RecipeDataset
from repro.corpus.recipe import Recipe
from repro.errors import StorageError
from repro.lexicon.categories import Category
from repro.storage.store import RecipeStore


@pytest.fixture()
def store(tiny_dataset, tiny_lexicon):
    return RecipeStore(tiny_dataset, tiny_lexicon)


def test_rejects_unknown_ids(tiny_lexicon):
    dataset = RecipeDataset([Recipe(0, "ITA", (999,))])
    with pytest.raises(StorageError):
        RecipeStore(dataset, tiny_lexicon)


def test_region_codes(store):
    assert store.region_codes() == ("ITA", "KOR")


def test_cuisine_index_unknown_raises(store):
    with pytest.raises(StorageError):
        store.cuisine_index("FRA")


def test_support_global_and_cuisine(store):
    assert store.support([0]) == 4
    assert store.support([0], region_code="ITA") == 3
    assert store.support([0], region_code="KOR") == 1


def test_relative_support(store):
    assert store.relative_support([0], region_code="ITA") == pytest.approx(0.75)
    assert store.relative_support([0]) == pytest.approx(0.5)


def test_category_projection(store):
    categories = store.project_to_categories([0, 1, 5])
    assert categories == frozenset({Category.VEGETABLE, Category.SPICE})


def test_category_vector(store):
    vector = store.category_vector([0, 1, 5, 6])
    assert vector[Category.VEGETABLE] == 2
    assert vector[Category.SPICE] == 2


def test_cuisine_view_passthrough(store, tiny_dataset):
    assert store.cuisine_view("ITA").n_recipes == 4


def test_cooccurrence_counts(store):
    # tomato (0) co-occurs with basil (7) in ITA recipes 0, 1, 2.
    counts = store.cooccurrence(0)
    assert counts[7] == 3
    assert counts[1] == 2  # onion with tomato: recipes 0, 2
    assert 0 not in counts  # anchor excluded


def test_cooccurrence_scoped(store):
    counts = store.cooccurrence(0, region_code="KOR")
    assert counts == {5: 1, 6: 1, 9: 1}


def test_top_cooccurring_order(store):
    ranked = store.top_cooccurring(0, k=2)
    assert ranked[0] == (7, 3)
    assert ranked[1][1] <= 3


def test_cooccurrence_unseen_ingredient(store):
    assert store.cooccurrence(999) == {}


def test_unknown_id_error_names_recipe_and_ids(tiny_lexicon):
    dataset = RecipeDataset([
        Recipe(0, "ITA", (0, 1)),
        Recipe(7, "KOR", (2, 404, 505)),
    ])
    with pytest.raises(StorageError) as info:
        RecipeStore(dataset, tiny_lexicon)
    message = str(info.value)
    assert "recipe 7 references ids not in the lexicon" in message
    assert "404" in message


def test_validation_accepts_all_known_ids(tiny_dataset, tiny_lexicon):
    # The vectorized np.isin check must accept a fully valid corpus.
    store = RecipeStore(tiny_dataset, tiny_lexicon)
    assert len(store.dataset) == len(tiny_dataset)
