"""API-quality gates: public-surface documentation and conventions.

These tests enforce the repository's documentation contract: every
public module, class and function across the package carries a
docstring, and the top-level ``__all__`` names resolve.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

_SKIP_MODULES = {"repro.lexicon._seed_data"}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in _SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, (
        f"{module.__name__} has undocumented public callables: "
        f"{undocumented}"
    )


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_all_exports_resolve(module):
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_top_level_exports_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_version_present():
    assert repro.__version__
