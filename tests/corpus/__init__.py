"""Test package: corpus."""
