"""Tests for dataset merge and subsampling utilities."""

from __future__ import annotations

import pytest

from repro.corpus.dataset import RecipeDataset
from repro.corpus.merge import merge_datasets, reassign_ids, subsample_dataset
from repro.corpus.recipe import Recipe
from repro.errors import CorpusError


def _dataset(region, n, start_id=0):
    return RecipeDataset(
        Recipe(start_id + i, region, (1 + i % 3, 10 + i % 2))
        for i in range(n)
    )


def test_reassign_ids_sequential():
    recipes = reassign_ids(
        [Recipe(50, "ITA", (1, 2)), Recipe(99, "KOR", (3, 4))], start_id=7
    )
    assert [r.recipe_id for r in recipes] == [7, 8]
    assert [r.region_code for r in recipes] == ["ITA", "KOR"]


def test_merge_reassigns_overlapping_ids():
    merged = merge_datasets([_dataset("ITA", 5), _dataset("KOR", 5)])
    assert len(merged) == 10
    assert merged.region_codes() == ("ITA", "KOR")
    ids = [r.recipe_id for r in merged]
    assert ids == list(range(10))


def test_merge_without_reassign_conflicts():
    with pytest.raises(CorpusError):
        merge_datasets(
            [_dataset("ITA", 3), _dataset("KOR", 3)], reassign=False
        )


def test_merge_without_reassign_disjoint_ok():
    merged = merge_datasets(
        [_dataset("ITA", 3), _dataset("KOR", 3, start_id=100)],
        reassign=False,
    )
    assert len(merged) == 6


def test_merge_empty_rejected():
    with pytest.raises(CorpusError):
        merge_datasets([])


def test_subsample_per_cuisine(small_corpus):
    sampled = subsample_dataset(small_corpus, 0.25, seed=1)
    assert sampled.region_codes() == small_corpus.region_codes()
    for code in sampled.region_codes():
        original = small_corpus.cuisine(code).n_recipes
        kept = sampled.cuisine(code).n_recipes
        assert kept == max(1, round(original * 0.25))


def test_subsample_global(small_corpus):
    sampled = subsample_dataset(
        small_corpus, 0.1, seed=2, per_cuisine=False
    )
    assert len(sampled) == round(len(small_corpus) * 0.1)


def test_subsample_deterministic(small_corpus):
    a = subsample_dataset(small_corpus, 0.2, seed=5)
    b = subsample_dataset(small_corpus, 0.2, seed=5)
    assert [r.ingredient_ids for r in a] == [r.ingredient_ids for r in b]


def test_subsample_invalid_fraction(small_corpus):
    with pytest.raises(CorpusError):
        subsample_dataset(small_corpus, 0.0)
    with pytest.raises(CorpusError):
        subsample_dataset(small_corpus, 1.5)


def test_subsample_full_fraction(small_corpus):
    sampled = subsample_dataset(small_corpus, 1.0, seed=3)
    assert len(sampled) == len(small_corpus)
