"""Tests for dataset persistence (JSONL + CSV), incl. property round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.dataset import RecipeDataset
from repro.corpus.io import (
    load_csv,
    load_jsonl,
    load_raw_jsonl,
    save_csv,
    save_jsonl,
    save_raw_jsonl,
)
from repro.corpus.recipe import RawRecipe, Recipe
from repro.errors import SerializationError


def _as_records(dataset: RecipeDataset) -> list[tuple]:
    return [
        (r.recipe_id, r.region_code, r.ingredient_ids, r.title, r.source)
        for r in dataset
    ]


recipe_strategy = st.builds(
    Recipe,
    recipe_id=st.integers(0, 10**6),
    region_code=st.sampled_from(["ITA", "KOR", "MEX", "USA"]),
    ingredient_ids=st.sets(st.integers(0, 720), min_size=1, max_size=20).map(tuple),
    title=st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=20
    ),
    source=st.sampled_from(["", "allrecipes", "epicurious"]),
)


@st.composite
def dataset_strategy(draw):
    recipes = draw(st.lists(recipe_strategy, max_size=25))
    unique = {}
    for recipe in recipes:
        unique[recipe.recipe_id] = recipe
    return RecipeDataset(unique.values())


@given(dataset_strategy())
@settings(max_examples=40, deadline=None)
def test_jsonl_roundtrip(tmp_path_factory, dataset):
    path = tmp_path_factory.mktemp("io") / "corpus.jsonl"
    count = save_jsonl(dataset, path)
    assert count == len(dataset)
    loaded = load_jsonl(path)
    assert _as_records(loaded) == _as_records(dataset)


@given(dataset_strategy())
@settings(max_examples=40, deadline=None)
def test_csv_roundtrip(tmp_path_factory, dataset):
    path = tmp_path_factory.mktemp("io") / "corpus.csv"
    save_csv(dataset, path)
    loaded = load_csv(path)
    assert _as_records(loaded) == _as_records(dataset)


def test_jsonl_missing_file():
    with pytest.raises(SerializationError):
        load_jsonl("/nonexistent/corpus.jsonl")


def test_csv_missing_file():
    with pytest.raises(SerializationError):
        load_csv("/nonexistent/corpus.csv")


def test_jsonl_malformed_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(SerializationError):
        load_jsonl(path)


def test_jsonl_malformed_record(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"recipe_id": 1}\n')
    with pytest.raises(SerializationError):
        load_jsonl(path)


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "ok.jsonl"
    save_jsonl([Recipe(0, "ITA", (1, 2))], path)
    content = path.read_text() + "\n\n"
    path.write_text(content)
    assert len(load_jsonl(path)) == 1


def test_save_accepts_iterable(tmp_path):
    path = tmp_path / "it.jsonl"
    save_jsonl(iter([Recipe(0, "ITA", (1,))]), path)
    assert len(load_jsonl(path)) == 1


def test_raw_jsonl_roundtrip(tmp_path):
    raws = [
        RawRecipe(0, "Pasta", ("2 cups flour", "1 egg"), "Europe", "ITA",
                  country="Italy", source="allrecipes", instructions="Mix."),
        RawRecipe(1, "Soup", ("1 onion",), "Asia", "KOR"),
    ]
    path = tmp_path / "raw.jsonl"
    assert save_raw_jsonl(raws, path) == 2
    loaded = load_raw_jsonl(path)
    assert loaded == raws


def test_raw_jsonl_missing_file():
    with pytest.raises(SerializationError):
        load_raw_jsonl("/nonexistent/raw.jsonl")


def test_raw_jsonl_malformed(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"raw_id": 1}\n')
    with pytest.raises(SerializationError):
        load_raw_jsonl(path)


# ---------------------------------------------------------------------------
# Pickle and columnar persistence
# ---------------------------------------------------------------------------


def test_pickle_roundtrip(tmp_path, tiny_dataset):
    from repro.corpus.io import load_pickle, save_pickle

    path = tmp_path / "corpus.pkl"
    count = save_pickle(tiny_dataset, path)
    assert count == len(tiny_dataset)
    assert path.stat().st_size > 0
    assert _as_records(load_pickle(path)) == _as_records(tiny_dataset)


def test_pickle_missing_file(tmp_path):
    from repro.corpus.io import load_pickle

    with pytest.raises(SerializationError):
        load_pickle(tmp_path / "absent.pkl")


def test_pickle_garbage_file(tmp_path):
    from repro.corpus.io import load_pickle

    path = tmp_path / "garbage.pkl"
    path.write_bytes(b"not a pickle at all")
    with pytest.raises(SerializationError):
        load_pickle(path)


def test_columnar_roundtrip(tmp_path, tiny_dataset):
    from repro.corpus.io import load_columnar, save_columnar

    path = tmp_path / "corpus.col"
    count = save_columnar(tiny_dataset, path)
    assert count == len(tiny_dataset)
    assert path.stat().st_size > 0
    with load_columnar(path) as corpus:
        assert _as_records(corpus.to_dataset()) == _as_records(tiny_dataset)


@given(dataset_strategy())
@settings(max_examples=20, deadline=None)
def test_pickle_property_roundtrip(tmp_path_factory, dataset):
    from repro.corpus.io import load_pickle, save_pickle

    path = tmp_path_factory.mktemp("pickle") / "corpus.pkl"
    save_pickle(dataset, path)
    assert _as_records(load_pickle(path)) == _as_records(dataset)
