"""Tests for the nine-source registry."""

from __future__ import annotations

import pytest

from repro.config import PAPER
from repro.corpus.sources import SOURCES, source_weights, total_source_recipes


def test_nine_sources():
    assert len(SOURCES) == 9


def test_counts_sum_to_headline():
    assert total_source_recipes() == PAPER.total_recipes == 158544


def test_genius_kitchen_dominates():
    largest = max(SOURCES, key=lambda source: source.n_recipes)
    assert largest.key == "geniuskitchen"
    assert largest.n_recipes == 101226


def test_published_counts():
    by_key = {source.key: source.n_recipes for source in SOURCES}
    assert by_key["allrecipes"] == 16131
    assert by_key["foodnetwork"] == 15771
    assert by_key["epicurious"] == 11022
    assert by_key["tasteau"] == 7633
    assert by_key["thespruce"] == 3830
    assert by_key["tarladalal"] == 2538
    assert by_key["mykoreankitchen"] == 198
    assert by_key["kraftrecipes"] == 195


def test_weights_sum_to_one():
    assert sum(source_weights().values()) == pytest.approx(1.0)


def test_unique_keys():
    keys = [source.key for source in SOURCES]
    assert len(set(keys)) == len(keys)
