"""Tests for the Table I region registry."""

from __future__ import annotations

import pytest

from repro.config import PAPER
from repro.corpus.regions import (
    ALL_REGION_CODES,
    REGIONS,
    get_region,
    iter_regions,
)
from repro.errors import UnknownRegionError


def test_exactly_25_regions():
    assert len(REGIONS) == PAPER.n_regions == 25
    assert len(ALL_REGION_CODES) == 25
    assert len(set(ALL_REGION_CODES)) == 25


def test_published_recipe_counts():
    counts = {region.code: region.n_recipes for region in REGIONS}
    assert counts["ITA"] == 23179  # largest, per Sec. II
    assert counts["CAM"] == 470    # smallest, per Sec. II
    assert counts["INSC"] == 10531
    assert counts["USA"] == 16026


def test_largest_and_smallest_match_paper():
    largest = max(REGIONS, key=lambda region: region.n_recipes)
    smallest = min(REGIONS, key=lambda region: region.n_recipes)
    assert largest.code == "ITA"
    assert smallest.code == "CAM"


def test_published_totals_note():
    # The per-region counts sum to 158,460 — 84 short of the headline
    # 158,544 (a published discrepancy we preserve; DESIGN.md §2).
    assert sum(region.n_recipes for region in REGIONS) == 158460


def test_average_counts_match_narrative():
    # Sec. II: averages "6338 and 421 respectively".
    avg_recipes = sum(r.n_recipes for r in REGIONS) / 25
    avg_ingredients = sum(r.n_ingredients for r in REGIONS) / 25
    assert round(avg_recipes) in (6338, 6337)
    assert round(avg_ingredients) == 421


def test_insc_preserves_six_entry_top5():
    insc = get_region("INSC")
    assert len(insc.overrepresented) == 6  # paper typo preserved


def test_other_regions_have_five(
):
    for region in REGIONS:
        if region.code != "INSC":
            assert len(region.overrepresented) == 5, region.code


def test_get_region_by_code_and_name():
    assert get_region("ITA").name == "Italy"
    assert get_region("ita").code == "ITA"
    assert get_region("Italy").code == "ITA"
    assert get_region("italy").code == "ITA"


def test_get_region_passthrough():
    region = get_region("UK")
    assert get_region(region) is region


def test_get_region_unknown_raises():
    with pytest.raises(UnknownRegionError):
        get_region("ATLANTIS")


def test_phi_ratio():
    ita = get_region("ITA")
    assert ita.ingredients_per_recipe_ratio == pytest.approx(506 / 23179)


def test_iter_regions_order():
    assert iter_regions()[0].code == "AFR"
    assert iter_regions()[-1].code == "UK"
