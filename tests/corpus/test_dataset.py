"""Tests for RecipeDataset and CuisineView."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.dataset import CuisineView, RecipeDataset
from repro.corpus.recipe import Recipe
from repro.errors import CorpusError, EmptyCorpusError, UnknownRegionError


def test_len_and_iteration(tiny_dataset):
    assert len(tiny_dataset) == 8
    assert len(list(tiny_dataset)) == 8


def test_region_codes_sorted(tiny_dataset):
    assert tiny_dataset.region_codes() == ("ITA", "KOR")


def test_cuisine_view_contents(tiny_dataset):
    ita = tiny_dataset.cuisine("ITA")
    assert ita.n_recipes == 4
    assert ita.region_code == "ITA"


def test_cuisine_accepts_full_name(tiny_dataset):
    assert tiny_dataset.cuisine("Italy").n_recipes == 4


def test_cuisine_unknown_region_raises(tiny_dataset):
    with pytest.raises(UnknownRegionError):
        tiny_dataset.cuisine("NOWHERE")


def test_cuisine_known_but_absent_is_empty(tiny_dataset):
    view = tiny_dataset.cuisine("FRA")
    assert len(view) == 0
    assert not view


def test_duplicate_recipe_ids_rejected():
    with pytest.raises(CorpusError):
        RecipeDataset([Recipe(0, "ITA", (1,)), Recipe(0, "KOR", (2,))])


def test_view_region_mismatch_rejected():
    with pytest.raises(CorpusError):
        CuisineView("ITA", [Recipe(0, "KOR", (1,))])


def test_ingredient_universe(tiny_dataset):
    ita = tiny_dataset.cuisine("ITA")
    assert ita.ingredient_universe() == (0, 1, 2, 3, 4, 7, 8)
    assert ita.n_ingredients == 7


def test_average_recipe_size(tiny_dataset):
    ita = tiny_dataset.cuisine("ITA")
    assert ita.average_recipe_size() == pytest.approx((4 + 3 + 3 + 3) / 4)


def test_phi(tiny_dataset):
    ita = tiny_dataset.cuisine("ITA")
    assert ita.phi() == pytest.approx(7 / 4)


def test_empty_view_statistics_raise():
    view = CuisineView("ITA", ())
    with pytest.raises(EmptyCorpusError):
        view.average_recipe_size()
    with pytest.raises(EmptyCorpusError):
        view.phi()


def test_ingredient_recipe_counts(tiny_dataset):
    counts = tiny_dataset.cuisine("ITA").ingredient_recipe_counts()
    assert counts[0] == 3  # tomato in three ITA recipes
    assert counts[7] == 3
    assert counts[3] == 1


def test_global_counts(tiny_dataset):
    counts = tiny_dataset.global_ingredient_recipe_counts()
    assert counts[0] == 4  # tomato in 3 ITA + 1 KOR
    assert counts[5] == 4


def test_as_id_sets(tiny_dataset):
    sets = tiny_dataset.cuisine("KOR").as_id_sets()
    assert frozenset({1, 2, 5}) in sets


def test_sizes_array(tiny_dataset):
    sizes = tiny_dataset.sizes()
    assert sizes.dtype == np.int64
    assert sizes.sum() == sum(r.size for r in tiny_dataset)


def test_filter(tiny_dataset):
    big = tiny_dataset.filter(lambda recipe: recipe.size >= 4)
    assert len(big) == 2


def test_subset(tiny_dataset):
    kor_only = tiny_dataset.subset(["KOR"])
    assert kor_only.region_codes() == ("KOR",)
    assert len(kor_only) == 4


def test_total_recipes_by_region(tiny_dataset):
    assert tiny_dataset.total_recipes_by_region() == {"ITA": 4, "KOR": 4}


def test_empty_dataset_is_falsy():
    assert not RecipeDataset([])
