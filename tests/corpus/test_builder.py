"""Tests for the raw-to-standardized compilation pipeline."""

from __future__ import annotations

import pytest

from repro.corpus.builder import compile_corpus
from repro.corpus.recipe import RawRecipe


def _raw(raw_id, mentions, region="ITA"):
    return RawRecipe(
        raw_id=raw_id,
        title=f"recipe {raw_id}",
        mentions=tuple(mentions),
        continent="Europe",
        region=region,
        source="allrecipes",
    )


def test_compile_resolves_and_assigns_region(lexicon):
    raws = [_raw(0, ["2 tomatoes", "1 onion", "fresh basil"])]
    result = compile_corpus(raws, lexicon)
    assert result.report.n_compiled == 1
    recipe = result.dataset.recipes[0]
    assert recipe.region_code == "ITA"
    names = {lexicon.by_id(i).name for i in recipe.ingredient_ids}
    assert names == {"tomato", "onion", "basil"}


def test_compile_drops_unknown_region(lexicon):
    raws = [_raw(0, ["2 tomatoes", "1 onion"], region="NARNIA")]
    result = compile_corpus(raws, lexicon)
    assert result.report.n_dropped_unknown_region == 1
    assert len(result.dataset) == 0


def test_compile_drops_too_small(lexicon):
    # Only one resolvable mention -> below the min size of 2.
    raws = [_raw(0, ["2 tomatoes", "1 cup powdered unicorn"])]
    result = compile_corpus(raws, lexicon)
    assert result.report.n_dropped_too_small == 1
    assert result.report.unresolved_samples


def test_compile_respects_max_size(lexicon):
    names = [i.name for i in list(lexicon)[:50]]
    raws = [_raw(0, names)]
    result = compile_corpus(raws, lexicon, max_size=10)
    assert result.report.n_dropped_too_large == 1


def test_compile_dedupes_mentions(lexicon):
    raws = [_raw(0, ["tomato", "roma tomato", "tomatoes", "onion"])]
    result = compile_corpus(raws, lexicon)
    recipe = result.dataset.recipes[0]
    assert recipe.size == 2  # tomato (x3 mentions) + onion


def test_resolution_rate(lexicon):
    raws = [_raw(0, ["tomato", "onion", "powdered unicorn horn"])]
    result = compile_corpus(raws, lexicon, min_size=1)
    assert result.report.n_mentions_total == 3
    assert result.report.n_mentions_resolved == 2
    assert result.report.resolution_rate == pytest.approx(2 / 3)


def test_empty_input(lexicon):
    result = compile_corpus([], lexicon)
    assert result.report.n_raw == 0
    assert result.report.resolution_rate == 0.0
    assert len(result.dataset) == 0


def test_recipe_ids_sequential(lexicon):
    raws = [
        _raw(0, ["tomato", "onion"]),
        _raw(1, ["butter", "flour"], region="FRA"),
    ]
    result = compile_corpus(raws, lexicon, start_recipe_id=100)
    ids = [recipe.recipe_id for recipe in result.dataset]
    assert ids == [100, 101]


def test_region_accepts_full_names(lexicon):
    raws = [
        RawRecipe(0, "t", ("tomato", "onion"), "Europe", "Italy"),
    ]
    result = compile_corpus(raws, lexicon)
    assert result.dataset.recipes[0].region_code == "ITA"


# ---------------------------------------------------------------------------
# Streaming columnar compilation
# ---------------------------------------------------------------------------


def _mixed_raws():
    return [
        _raw(0, ["2 tomatoes", "1 onion", "fresh basil"]),
        _raw(1, ["2 tomatoes", "garlic clove", "butter"], region="FRA"),
        _raw(2, ["milk", "flour", "butter"], region="FRA"),
        _raw(3, ["1 cup powdered unicorn", "tomato"]),
        _raw(4, ["soy sauce", "rice", "garlic clove"], region="KOR"),
        _raw(5, ["tomato", "onion"], region="NARNIA"),
    ]


def test_compile_columnar_matches_eager(lexicon, tmp_path):
    from repro.corpus.builder import compile_corpus_columnar

    raws = _mixed_raws()
    eager = compile_corpus(raws, lexicon)
    with_path = tmp_path / "compiled.col"
    corpus, report = compile_corpus_columnar(raws, lexicon, with_path)
    with corpus:
        assert list(corpus.to_dataset()) == list(eager.dataset)
    assert report == eager.report


def test_compile_columnar_chunked_matches(lexicon, tmp_path):
    from repro.corpus.builder import compile_corpus_columnar

    raws = _mixed_raws()
    eager = compile_corpus(raws, lexicon)
    corpus, report = compile_corpus_columnar(
        raws, lexicon, tmp_path / "chunked.col", chunk_size=1
    )
    with corpus:
        assert list(corpus.to_dataset()) == list(eager.dataset)
    assert report == eager.report


def test_compile_columnar_empty_input(lexicon, tmp_path):
    from repro.corpus.builder import compile_corpus_columnar

    corpus, report = compile_corpus_columnar(
        [], lexicon, tmp_path / "empty.col"
    )
    with corpus:
        assert len(corpus) == 0
        assert corpus.region_codes() == ()
    assert report.n_compiled == 0
