"""Tests for descriptive corpus statistics."""

from __future__ import annotations

import pytest

from repro.corpus.dataset import CuisineView, RecipeDataset
from repro.corpus.stats import corpus_stats, cuisine_stats
from repro.errors import EmptyCorpusError


def test_cuisine_stats(tiny_dataset):
    stats = cuisine_stats(tiny_dataset.cuisine("ITA"))
    assert stats.region_code == "ITA"
    assert stats.n_recipes == 4
    assert stats.n_ingredients == 7
    assert stats.avg_recipe_size == pytest.approx(3.25)
    assert stats.min_recipe_size == 3
    assert stats.max_recipe_size == 4
    assert stats.phi == pytest.approx(7 / 4)


def test_cuisine_stats_empty_raises():
    with pytest.raises(EmptyCorpusError):
        cuisine_stats(CuisineView("ITA", ()))


def test_corpus_stats(tiny_dataset):
    stats = corpus_stats(tiny_dataset)
    assert stats.n_recipes == 8
    assert stats.n_cuisines == 2
    assert stats.avg_recipes_per_cuisine == pytest.approx(4.0)
    assert stats.largest_cuisine[1] == 4
    assert stats.smallest_cuisine[1] == 4
    assert stats.mean_recipe_size == pytest.approx(8 * 3.25 / 8, rel=0.2)
    assert len(stats.per_cuisine) == 2


def test_corpus_stats_empty_raises():
    with pytest.raises(EmptyCorpusError):
        corpus_stats(RecipeDataset([]))


def test_corpus_stats_identifies_largest(small_corpus):
    stats = corpus_stats(small_corpus)
    assert stats.largest_cuisine[0] == "ITA"  # largest of ITA/KOR/MEX
    assert stats.smallest_cuisine[0] == "KOR"
