"""Tests for Recipe and RawRecipe datatypes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.recipe import RawRecipe, Recipe


def test_recipe_sorts_and_dedupes():
    recipe = Recipe(0, "ITA", (3, 1, 2, 1))
    assert recipe.ingredient_ids == (1, 2, 3)
    assert recipe.size == 3


def test_recipe_requires_ingredients():
    with pytest.raises(ValueError):
        Recipe(0, "ITA", ())


def test_recipe_contains():
    recipe = Recipe(0, "ITA", (1, 5, 9))
    assert recipe.contains(5)
    assert not recipe.contains(4)
    assert not recipe.contains(100)


@given(st.sets(st.integers(0, 1000), min_size=1, max_size=40))
@settings(max_examples=100)
def test_contains_matches_membership(ids):
    recipe = Recipe(0, "ITA", tuple(ids))
    for candidate in list(ids)[:10]:
        assert recipe.contains(candidate)
    for candidate in range(1001, 1005):
        assert not recipe.contains(candidate)


def test_replace_ingredients():
    recipe = Recipe(7, "KOR", (1, 2), title="t", source="s")
    replaced = recipe.replace_ingredients((4, 3))
    assert replaced.recipe_id == 7
    assert replaced.region_code == "KOR"
    assert replaced.ingredient_ids == (3, 4)
    assert replaced.title == "t"
    assert replaced.source == "s"


def test_raw_recipe_requires_mentions():
    with pytest.raises(ValueError):
        RawRecipe(0, "title", (), "Europe", "ITA")


def test_raw_recipe_fields():
    raw = RawRecipe(
        1, "Pasta", ("2 cups flour",), "Europe", "ITA",
        country="Italy", source="allrecipes",
    )
    assert raw.region == "ITA"
    assert raw.mentions == ("2 cups flour",)
