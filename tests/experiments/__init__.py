"""Test package: experiments."""
