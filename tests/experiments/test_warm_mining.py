"""Acceptance tests: warm experiments perform zero mining calls.

With a ``cache_dir`` runtime, the first invocation of an experiment
fills both stores (runs + mined curves); a repeat invocation must serve
every run from the run cache and every mined curve — empirical and
per-run model curves alike — from the curve cache, reaching no miner at
all, and produce an identical result (DESIGN.md §6).
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentContext
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.runtime import RuntimeConfig


@pytest.fixture()
def cached_context(lexicon, small_corpus, tmp_path):
    return ExperimentContext(
        lexicon=lexicon,
        dataset=small_corpus,
        scale=0.06,
        seed=5,
        ensemble_runs=2,
        runtime=RuntimeConfig(cache_dir=tmp_path),
    )


def _forbid_mining(monkeypatch):
    def _no_mining(*_args, **_kwargs):
        raise AssertionError("warm invocation must not mine")

    # Every mining entry point used by the experiment drivers.
    monkeypatch.setattr(
        "repro.models.ensemble.mine_frequent_itemsets", _no_mining
    )
    monkeypatch.setattr(
        "repro.analysis.invariants.mine_frequent_itemsets", _no_mining
    )


def test_warm_fig4_zero_mining_calls(cached_context, monkeypatch):
    cold = run_fig4(cached_context, region_codes=("ITA", "KOR"))
    _forbid_mining(monkeypatch)
    warm = run_fig4(cached_context, region_codes=("ITA", "KOR"))
    assert warm.to_payload() == cold.to_payload()


def test_warm_fig3_zero_mining_calls(cached_context, monkeypatch):
    cold = run_fig3(cached_context)
    _forbid_mining(monkeypatch)
    warm = run_fig3(cached_context)
    assert warm.to_payload() == cold.to_payload()


def test_cold_and_warm_agree_with_uncached(
    lexicon, small_corpus, cached_context
):
    # The cache must be invisible in results: an uncached serial context
    # and a twice-run cached context agree exactly.
    uncached = ExperimentContext(
        lexicon=lexicon,
        dataset=small_corpus,
        scale=0.06,
        seed=5,
        ensemble_runs=2,
    )
    expected = run_fig4(uncached, region_codes=("ITA",))
    run_fig4(cached_context, region_codes=("ITA",))
    warm = run_fig4(cached_context, region_codes=("ITA",))
    assert warm.to_payload() == expected.to_payload()
