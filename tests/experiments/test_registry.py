"""Tests for the experiment registry."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentContext
from repro.experiments.registry import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
)


def test_design_md_experiment_index_covered():
    expected = {
        "table1", "fig1", "fig2", "fig3", "fig4", "fig4_categories",
        "ablation_m", "ablation_M", "ablation_minsup", "ablation_metric",
        "ablation_null_sampling", "islands", "non_equilibrium",
    }
    assert set(available_experiments()) == expected
    assert set(EXPERIMENTS) == expected


def test_run_experiment_dispatch(lexicon, small_corpus):
    context = ExperimentContext(
        lexicon=lexicon, dataset=small_corpus, scale=0.06
    )
    result = run_experiment("fig1", context)
    assert result.to_payload()["experiment"] == "fig1"


def test_unknown_experiment(lexicon, small_corpus):
    context = ExperimentContext(
        lexicon=lexicon, dataset=small_corpus, scale=0.06
    )
    with pytest.raises(ExperimentError):
        run_experiment("fig99", context)
