"""Tests for the experiment drivers (table1, fig1-fig4)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentContext
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def context(lexicon, small_corpus):
    return ExperimentContext(
        lexicon=lexicon,
        dataset=small_corpus,
        scale=0.06,
        seed=5,
        ensemble_runs=3,
    )


def test_context_create_builds_corpus(lexicon):
    context = ExperimentContext.create(
        scale=0.02, seed=1, region_codes=("KOR", "JPN")
    )
    assert set(context.dataset.region_codes()) == {"JPN", "KOR"}
    assert context.scale == 0.02


def test_context_create_validation():
    with pytest.raises(ExperimentError):
        ExperimentContext.create(scale=0)
    with pytest.raises(ExperimentError):
        ExperimentContext.create(ensemble_runs=0)


def test_context_artifact_path(tmp_path, lexicon, small_corpus):
    context = ExperimentContext(
        lexicon=lexicon, dataset=small_corpus, scale=0.06,
        artifacts_dir=tmp_path,
    )
    assert context.artifact_path("x.csv") == tmp_path / "x.csv"
    no_artifacts = ExperimentContext(
        lexicon=lexicon, dataset=small_corpus, scale=0.06
    )
    assert no_artifacts.artifact_path("x.csv") is None


# ---------------------------------------------------------------------------
# table1
# ---------------------------------------------------------------------------


def test_table1_rows_and_overlap(context):
    result = run_table1(context)
    assert len(result.rows) == 3
    assert result.mean_top5_overlap() >= 3.0
    rendered = result.render()
    assert "ITA" in rendered and "Overlap" in rendered
    payload = result.to_payload()
    assert payload["experiment"] == "table1"
    json.dumps(payload)  # serializable


def test_table1_artifact_written(lexicon, small_corpus, tmp_path):
    context = ExperimentContext(
        lexicon=lexicon, dataset=small_corpus, scale=0.06,
        artifacts_dir=tmp_path,
    )
    run_table1(context)
    assert (tmp_path / "table1.csv").exists()


# ---------------------------------------------------------------------------
# fig1
# ---------------------------------------------------------------------------


def test_fig1_bounds_and_mean(context):
    result = run_fig1(context)
    assert result.all_in_paper_bounds()
    assert 7.0 <= result.aggregate.mean <= 11.0
    assert set(result.per_cuisine) == {"ITA", "KOR", "MEX"}
    assert "Fig. 1" in result.render()
    json.dumps(result.to_payload())


# ---------------------------------------------------------------------------
# fig2
# ---------------------------------------------------------------------------


def test_fig2_narrative_checks(lexicon, world_corpus):
    context = ExperimentContext(
        lexicon=lexicon, dataset=world_corpus, scale=0.02
    )
    result = run_fig2(context)
    spice_heavy, spice_light = result.spice_contrast()
    assert spice_heavy > spice_light
    dairy_heavy, dairy_light = result.dairy_contrast()
    assert dairy_heavy > dairy_light
    assert len(result.dominant) == 7
    assert "Fig. 2" in result.render()
    json.dumps(result.to_payload())


# ---------------------------------------------------------------------------
# fig3
# ---------------------------------------------------------------------------


def test_fig3_homogeneity(context):
    result = run_fig3(context)
    assert result.ingredient.average_distance < 0.15
    assert result.category.average_distance >= 0
    rendered = result.render()
    assert "rank-frequency" in rendered
    json.dumps(result.to_payload())


def test_fig3_artifacts(lexicon, small_corpus, tmp_path):
    context = ExperimentContext(
        lexicon=lexicon, dataset=small_corpus, scale=0.06,
        artifacts_dir=tmp_path,
    )
    run_fig3(context)
    assert (tmp_path / "fig3_ingredient.csv").exists()
    assert (tmp_path / "fig3_category.csv").exists()


# ---------------------------------------------------------------------------
# fig4
# ---------------------------------------------------------------------------


def test_fig4_headline_result(context):
    """Copy-mutate models beat the null model on every cuisine."""
    result = run_fig4(context, region_codes=("KOR",))
    evaluation = result.evaluations["KOR"]
    nm = evaluation.distances["NM"]
    for name in ("CM-R", "CM-C", "CM-M"):
        assert evaluation.distances[name] < nm
    assert result.null_separation() > 2.0
    assert evaluation.best_model != "NM"
    rendered = result.render()
    assert "Fig. 4" in rendered
    json.dumps(result.to_payload())


def test_fig4_category_level_non_discriminating(context):
    """Sec. VI: at the category level even NM fits (no discrimination)."""
    result = run_fig4(context, level="category", region_codes=("KOR",))
    separation = result.null_separation()
    # Category curves: NM is within a small factor of CM, far from the
    # ingredient-level blowout.
    assert separation < 2.0


def test_fig4_mean_distance(context):
    result = run_fig4(context, region_codes=("KOR",))
    assert result.mean_distance("NM") > result.mean_distance("CM-R")
    assert result.best_model_by_cuisine()["KOR"] in ("CM-R", "CM-C", "CM-M")
