"""Tests for the ablation experiments."""

from __future__ import annotations

import json

import pytest

from repro.experiments.ablations import (
    run_ablation_m,
    run_ablation_metric,
    run_ablation_minsup,
    run_ablation_mutations,
)
from repro.experiments.base import ExperimentContext


@pytest.fixture(scope="module")
def context(lexicon, small_corpus):
    return ExperimentContext(
        lexicon=lexicon,
        dataset=small_corpus,
        scale=0.06,
        seed=3,
        ensemble_runs=2,
    )


def test_ablation_m(context):
    result = run_ablation_m(
        context, values=(10, 20), region_codes=("KOR",)
    )
    assert result.name == "ablation_m"
    assert [row[0] for row in result.rows] == [10, 20]
    distances = [float(d) for d in result.column("mean_distance")]
    assert all(0 <= d <= 1 for d in distances)
    assert "Ablation" in result.render()
    json.dumps(result.to_payload())


def test_ablation_mutations(context):
    result = run_ablation_mutations(
        context, values=(2, 4), model_names=("CM-R",),
        region_codes=("KOR",),
    )
    assert result.headers == ("M", "CM-R")
    assert len(result.rows) == 2


def test_ablation_minsup(context):
    result = run_ablation_minsup(context, values=(0.05, 0.15))
    assert len(result.rows) == 2
    # Lower support threshold yields longer curves.
    lengths = [float(row[2]) for row in result.rows]
    assert lengths[0] > lengths[1]


def test_ablation_metric_conclusions_invariant(context):
    result = run_ablation_metric(context, region_codes=("KOR",))
    (row,) = result.rows
    region, best_abs, sep_abs, best_sq, sep_sq = row
    assert region == "KOR"
    # NM never wins under either reading.
    assert best_abs != "NM"
    assert best_sq != "NM"
    # Separation is substantial under both readings.
    assert float(sep_abs.rstrip("x")) > 1.5
    assert float(sep_sq.rstrip("x")) > 1.5


def test_column_lookup(context):
    result = run_ablation_minsup(context, values=(0.05,))
    assert result.column("min_support") == [0.05]
    with pytest.raises(ValueError):
        result.column("nonexistent")


def test_ablation_null_sampling(context):
    from repro.experiments.ablations import run_ablation_null_sampling

    result = run_ablation_null_sampling(context, region_codes=("KOR",))
    (row,) = result.rows
    region, cm, nm_pool, nm_universe = row
    assert region == "KOR"
    # NM fails under BOTH readings of the sampling universe.
    assert float(nm_pool) > 2 * float(cm)
    assert float(nm_universe) > 2 * float(cm)
