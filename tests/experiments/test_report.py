"""Tests for the full reproduction report builder."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentContext
from repro.experiments.report import build_report


@pytest.fixture(scope="module")
def report(lexicon, small_corpus):
    context = ExperimentContext(
        lexicon=lexicon,
        dataset=small_corpus,
        scale=0.06,
        seed=2,
        ensemble_runs=2,
    )
    return build_report(
        context,
        include_ablations=True,
        fig4_regions=("KOR",),
    )


def test_report_sections_present(report):
    for heading in (
        "# Reproduction report", "## Table I", "## Fig. 1", "## Fig. 2",
        "## Fig. 3", "## Fig. 4", "## Ablations",
    ):
        assert heading in report.markdown


def test_report_headline_metrics(report):
    headline = report.headline
    assert headline["table1_top5_overlap"] >= 3.0
    assert headline["fig1_in_bounds"] is True
    assert headline["fig4_null_separation"] > 1.5
    assert "KOR" in headline["fig4_best_by_cuisine"]
    assert report.elapsed_seconds > 0


def test_report_save(report, tmp_path):
    path = report.save(tmp_path / "sub" / "report.md")
    assert path.exists()
    assert path.read_text() == report.markdown


def test_report_without_ablations(lexicon, small_corpus):
    context = ExperimentContext(
        lexicon=lexicon, dataset=small_corpus, scale=0.06,
        seed=2, ensemble_runs=2,
    )
    report = build_report(
        context, include_ablations=False, fig4_regions=("KOR",)
    )
    assert "## Ablations" not in report.markdown
