"""Structural checks on the example scripts.

The examples are full runs (seconds to a minute each) so CI-speed tests
only verify they compile, import their dependencies correctly, and
follow the repository's conventions (main() entry point, module
docstring, deterministic seed).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_compiles(path):
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    compile(tree, str(path), "exec")


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_has_docstring_and_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
    function_names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in function_names, f"{path.name} lacks a main()"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_pins_a_seed(path):
    source = path.read_text()
    assert "SEED" in source, f"{path.name} does not pin a seed"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_imports_resolve(path):
    """Every repro import in the example exists in the package."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
