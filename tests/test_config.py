"""Tests for the paper constants and mining configuration."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_MINING, PAPER, MiningConfig


def test_paper_headline_numbers():
    assert PAPER.total_recipes == 158544
    assert PAPER.n_regions == 25
    assert PAPER.n_lexicon_entities == 721
    assert PAPER.n_compound_ingredients == 96
    assert PAPER.n_categories == 21


def test_paper_recipe_size_bounds():
    assert PAPER.recipe_size_min == 2
    assert PAPER.recipe_size_max == 38
    assert PAPER.recipe_size_mean == pytest.approx(9.0)


def test_paper_model_parameters():
    assert PAPER.model_initial_pool_size == 20
    assert PAPER.model_mutations_cm_r == 4
    assert PAPER.model_mutations_cm_c == 6
    assert PAPER.model_mutations_cm_m == 6
    assert PAPER.model_ensemble_runs == 100


def test_default_mining_matches_paper():
    assert DEFAULT_MINING.min_support == pytest.approx(0.05)
    assert DEFAULT_MINING.max_size is None
    assert DEFAULT_MINING.algorithm == "eclat"


@pytest.mark.parametrize("bad_support", [0.0, -0.1, 1.5])
def test_mining_config_rejects_bad_support(bad_support):
    with pytest.raises(ValueError):
        MiningConfig(min_support=bad_support)


def test_mining_config_rejects_bad_max_size():
    with pytest.raises(ValueError):
        MiningConfig(max_size=0)


def test_mining_config_accepts_valid():
    config = MiningConfig(min_support=0.1, max_size=3, algorithm="apriori")
    assert config.min_support == 0.1
    assert config.max_size == 3
