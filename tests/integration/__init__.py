"""Test package: integration."""
