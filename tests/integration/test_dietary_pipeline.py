"""Integration: the dietary-intervention stack end to end.

Exercises the paper's closing motivation as one pipeline: nutrition
substrate -> nutrition-driven fitness -> copy-mutate evolution ->
constrained novel-recipe generation, with the structural and health
claims verified quantitatively.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.invariants import combination_curve
from repro.analysis.mae import curve_distance
from repro.generation import GenerationConstraints, RecipeGenerator
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateCategory
from repro.models.ensemble import run_ensemble
from repro.models.params import CuisineSpec
from repro.nutrition import (
    build_nutrition_table,
    health_score,
    ingredient_health_scores,
    nutrition_fitness,
)


@pytest.fixture(scope="module")
def pipeline(lexicon, small_corpus, ensemble_runs):
    table = build_nutrition_table(lexicon, seed=5)
    view = small_corpus.cuisine("ITA")
    spec = CuisineSpec.from_view(view, lexicon)
    model = CopyMutateCategory(
        fitness=nutrition_fitness(lexicon, table, jitter=0.05)
    )
    ensemble = run_ensemble(model, spec, n_runs=ensemble_runs(4), seed=5)
    return table, view, spec, ensemble


def test_intervention_improves_health(pipeline, lexicon):
    table, view, _spec, ensemble = pipeline
    scores = ingredient_health_scores(lexicon, table)

    def mean_health(transactions):
        return float(np.mean([
            scores[i] for t in transactions for i in t
        ]))

    before = mean_health([r.ingredient_ids for r in view])
    after = mean_health(
        [t for run in ensemble.runs for t in run.transactions]
    )
    assert after > before


def test_intervention_preserves_structure(pipeline, lexicon, small_corpus):
    _table, _view, _spec, ensemble = pipeline
    empirical, _ = combination_curve(small_corpus, "ITA", lexicon)
    distance = curve_distance(empirical, ensemble.ingredient_curve)
    # Still in the copy-mutate regime, far from the null model's ~0.3+.
    assert distance < 0.15


def test_generated_recipes_healthy_and_valid(pipeline, lexicon, small_corpus):
    table, view, _spec, ensemble = pipeline
    generator = RecipeGenerator(
        ensemble.runs[0], lexicon, reference=view.as_id_sets()
    )
    constraints = GenerationConstraints(
        exclude_categories=("Beverage Alcoholic",),
        min_size=5,
        max_size=10,
    )
    recipes = generator.generate_many(5, constraints, seed=6)
    reference = set(view.as_id_sets())
    for recipe in recipes:
        assert 5 <= recipe.size <= 10
        assert frozenset(recipe.ingredient_ids) not in reference
        categories = {
            lexicon.category_of(i) for i in recipe.ingredient_ids
        }
        assert Category.BEVERAGE_ALCOHOLIC not in categories
        score = health_score(table.recipe_profile(recipe.ingredient_ids))
        assert 0.0 <= score <= 1.0
