"""Integration tests: full pipelines across subsystems."""

from __future__ import annotations

import pytest

from repro.analysis.invariants import combination_curve
from repro.analysis.mae import curve_distance
from repro.analysis.overrepresentation import top_overrepresented
from repro.corpus.builder import compile_corpus
from repro.corpus.io import load_jsonl, save_jsonl
from repro.corpus.regions import get_region
from repro.corpus.stats import corpus_stats
from repro.models.ensemble import run_ensemble
from repro.models.params import CuisineSpec
from repro.models.registry import PAPER_MODELS, create_model
from repro.storage.query import HasCategory, HasIngredient, Query
from repro.storage.store import RecipeStore
from repro.synthesis.worldgen import WorldKitchen


def test_raw_to_analysis_pipeline(lexicon, tmp_path):
    """Website-style records -> ETL -> storage -> analysis, end to end."""
    kitchen = WorldKitchen(lexicon, seed=31)
    raws = []
    for code in ("GRC", "THA"):
        raws.extend(
            kitchen.generate_raw_cuisine(code, n_recipes=60,
                                         start_raw_id=len(raws))
        )

    result = compile_corpus(raws, lexicon)
    assert result.report.resolution_rate > 0.97
    dataset = result.dataset
    assert set(dataset.region_codes()) == {"GRC", "THA"}

    # Persistence round-trip.
    path = tmp_path / "compiled.jsonl"
    save_jsonl(dataset, path)
    dataset = load_jsonl(path)

    # Storage and queries.
    store = RecipeStore(dataset, lexicon)
    olive_recipes = Query([HasIngredient("olive oil")]).count(
        store, region_code="GRC"
    )
    assert olive_recipes > 0
    spiced = Query([HasCategory("Spice")]).count(store)
    assert spiced > 0

    # Diversity analysis: Thai signatures differ from Greek ones.
    grc_top = {e.name for e in top_overrepresented(dataset, "GRC", lexicon)}
    tha_top = {e.name for e in top_overrepresented(dataset, "THA", lexicon)}
    assert grc_top != tha_top

    # Stats narrative.
    stats = corpus_stats(dataset)
    assert stats.n_cuisines == 2
    assert 2 <= stats.mean_recipe_size <= 38


def test_full_model_comparison_pipeline(lexicon, ensemble_runs):
    """Generate cuisine -> evolve all four models -> NM loses (Fig. 4)."""
    kitchen = WorldKitchen(lexicon, seed=17)
    dataset = kitchen.generate_dataset(region_codes=("CBN",), scale=0.12)
    view = dataset.cuisine("CBN")
    spec = CuisineSpec.from_view(view, lexicon)
    empirical, _ = combination_curve(dataset, "CBN", lexicon)

    distances = {}
    for name in PAPER_MODELS:
        ensemble = run_ensemble(
            create_model(name), spec, n_runs=ensemble_runs(4), seed=23
        )
        distances[name] = curve_distance(empirical, ensemble.ingredient_curve)

    assert distances["NM"] > 2 * min(
        distances["CM-R"], distances["CM-C"], distances["CM-M"]
    )


def test_spec_matches_paper_inputs(lexicon):
    """CuisineSpec derived from a generated cuisine matches its stats."""
    kitchen = WorldKitchen(lexicon, seed=41)
    dataset = kitchen.generate_dataset(region_codes=("IRL",), scale=0.3)
    view = dataset.cuisine("IRL")
    spec = CuisineSpec.from_view(view, lexicon)
    region = get_region("IRL")
    assert spec.n_recipes == round(region.n_recipes * 0.3)
    assert spec.phi == pytest.approx(view.n_ingredients / view.n_recipes)
    assert 2 <= spec.recipe_size <= 38
