"""Tests for flavor molecule entities."""

from __future__ import annotations

import pytest

from repro.flavor.molecule import ODOR_DESCRIPTORS, FlavorMolecule


def test_molecule_roundtrip():
    molecule = FlavorMolecule(1, "limonene", ("citrus", "sweet"))
    assert molecule.molecule_id == 1
    assert molecule.odors == ("citrus", "sweet")


def test_negative_id_rejected():
    with pytest.raises(ValueError):
        FlavorMolecule(-1, "x", ())


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        FlavorMolecule(0, "", ())


def test_shares_odor():
    a = FlavorMolecule(0, "a", ("citrus", "sweet"))
    b = FlavorMolecule(1, "b", ("sweet",))
    c = FlavorMolecule(2, "c", ("woody",))
    assert a.shares_odor_with(b)
    assert not a.shares_odor_with(c)


def test_odor_vocabulary_nonempty_unique():
    assert len(ODOR_DESCRIPTORS) == len(set(ODOR_DESCRIPTORS))
    assert len(ODOR_DESCRIPTORS) > 20
