"""Tests for the flavor network."""

from __future__ import annotations

import pytest

from repro.flavor.molecule import FlavorMolecule
from repro.flavor.network import backbone, build_flavor_network, top_pairings
from repro.flavor.profiles import FlavorProfileSet


@pytest.fixture()
def toy_profiles() -> FlavorProfileSet:
    molecules = tuple(FlavorMolecule(i, f"m{i}", ()) for i in range(8))
    return FlavorProfileSet(
        molecules=molecules,
        profiles={
            "a": frozenset({0, 1, 2, 3}),
            "b": frozenset({0, 1, 2}),
            "c": frozenset({3}),
            "d": frozenset({7}),
        },
    )


def test_edges_and_weights(toy_profiles):
    graph = build_flavor_network(toy_profiles)
    assert graph["a"]["b"]["weight"] == 3
    assert graph["a"]["c"]["weight"] == 1
    assert not graph.has_edge("b", "c")
    assert not graph.has_edge("a", "d")


def test_all_nodes_present_even_isolated(toy_profiles):
    graph = build_flavor_network(toy_profiles)
    assert set(graph.nodes) == {"a", "b", "c", "d"}


def test_min_shared_threshold(toy_profiles):
    graph = build_flavor_network(toy_profiles, min_shared=2)
    assert graph.has_edge("a", "b")
    assert not graph.has_edge("a", "c")


def test_backbone(toy_profiles):
    graph = build_flavor_network(toy_profiles)
    strong = backbone(graph, min_weight=3)
    assert strong.has_edge("a", "b")
    assert not strong.has_edge("a", "c")
    assert set(strong.nodes) == set(graph.nodes)


def test_top_pairings_order(toy_profiles):
    graph = build_flavor_network(toy_profiles)
    ranked = top_pairings(graph, k=2)
    assert ranked[0] == ("a", "b", 3)
    assert ranked[1][2] == 1


def test_node_subset(toy_profiles):
    graph = build_flavor_network(toy_profiles, ingredients=["a", "b"])
    assert set(graph.nodes) == {"a", "b"}
