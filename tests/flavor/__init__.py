"""Test package: flavor."""
