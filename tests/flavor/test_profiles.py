"""Tests for synthetic flavor profiles."""

from __future__ import annotations

import pytest

from repro.flavor.profiles import build_flavor_profiles


@pytest.fixture(scope="module")
def profiles(lexicon):
    return build_flavor_profiles(lexicon, seed=3)


# hypothesis-free structural checks over the full lexicon ------------------


def test_every_entity_profiled(lexicon, profiles):
    for ingredient in lexicon:
        assert ingredient.name in profiles.profiles


def test_profiles_nonempty_for_simple(lexicon, profiles):
    for ingredient in lexicon.simple_ingredients:
        assert profiles.profile_of(ingredient.name)


def test_compounds_inherit_component_union(lexicon, profiles):
    for compound in lexicon.compound_ingredients:
        expected = frozenset()
        for component in compound.components:
            expected |= profiles.profile_of(component)
        assert profiles.profile_of(compound.name) == expected


def test_same_category_share_more(lexicon, profiles):
    """Category cores make same-category pairs share more compounds."""
    from repro.lexicon.categories import Category

    spices = [i.name for i in lexicon.by_category(Category.SPICE)[:8]]
    fish = [i.name for i in lexicon.by_category(Category.FISH)[:8]]
    within = [
        profiles.n_shared(a, b)
        for i, a in enumerate(spices)
        for b in spices[i + 1:]
    ]
    across = [profiles.n_shared(a, b) for a in spices for b in fish]
    assert sum(within) / len(within) > sum(across) / len(across)


def test_deterministic(lexicon):
    a = build_flavor_profiles(lexicon, seed=5)
    b = build_flavor_profiles(lexicon, seed=5)
    assert a.profiles == b.profiles


def test_different_seed_differs(lexicon):
    a = build_flavor_profiles(lexicon, seed=5)
    b = build_flavor_profiles(lexicon, seed=6)
    assert a.profiles != b.profiles


def test_unknown_ingredient_has_empty_profile(profiles):
    assert profiles.profile_of("unobtainium") == frozenset()


def test_mean_profile_size_positive(profiles):
    assert profiles.mean_profile_size() > 10


def test_shared_compounds_symmetric(profiles):
    a = profiles.shared_compounds("tomato", "basil")
    b = profiles.shared_compounds("basil", "tomato")
    assert a == b
