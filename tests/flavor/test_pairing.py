"""Tests for food-pairing statistics."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.flavor.pairing import food_pairing_bias, mean_shared_compounds
from repro.flavor.profiles import FlavorProfileSet
from repro.flavor.molecule import FlavorMolecule


@pytest.fixture()
def toy_profiles() -> FlavorProfileSet:
    molecules = tuple(
        FlavorMolecule(i, f"m{i}", ("sweet",)) for i in range(6)
    )
    return FlavorProfileSet(
        molecules=molecules,
        profiles={
            "a": frozenset({0, 1, 2}),
            "b": frozenset({1, 2, 3}),
            "c": frozenset({4}),
            "d": frozenset({5}),
        },
    )


def test_mean_shared_compounds_exact(toy_profiles):
    # recipe [a, b]: one pair sharing {1, 2} -> N_s = 2.
    assert mean_shared_compounds([["a", "b"]], toy_profiles) == pytest.approx(2.0)


def test_mean_shared_multiple_recipes(toy_profiles):
    # [a, b] -> 2; [c, d] -> 0; mean = 1.
    value = mean_shared_compounds([["a", "b"], ["c", "d"]], toy_profiles)
    assert value == pytest.approx(1.0)


def test_recipe_normalization(toy_profiles):
    # [a, b, c]: pairs (a,b)=2, (a,c)=0, (b,c)=0 -> 2*2/(3*2) = 2/3.
    value = mean_shared_compounds([["a", "b", "c"]], toy_profiles)
    assert value == pytest.approx(2.0 / 3.0)


def test_no_valid_recipe_raises(toy_profiles):
    with pytest.raises(AnalysisError):
        mean_shared_compounds([["a"]], toy_profiles)


def test_pairing_bias_positive_for_sharing_corpus(toy_profiles):
    # A corpus always pairing a+b (sharing) vs a vocabulary including
    # non-sharers must show positive bias.
    result = food_pairing_bias(
        [["a", "b"]] * 30,
        toy_profiles,
        vocabulary=["a", "b", "c", "d"],
        n_shuffles=30,
        seed=1,
    )
    assert result.observed == pytest.approx(2.0)
    assert result.bias > 0
    assert result.n_recipes == 30


def test_pairing_bias_requires_vocabulary(toy_profiles):
    with pytest.raises(AnalysisError):
        food_pairing_bias([["a", "b"]], toy_profiles, vocabulary=["a"], seed=0)


def test_pairing_bias_deterministic(toy_profiles):
    kwargs = dict(vocabulary=["a", "b", "c", "d"], n_shuffles=5, seed=9)
    r1 = food_pairing_bias([["a", "b"], ["a", "c"]], toy_profiles, **kwargs)
    r2 = food_pairing_bias([["a", "b"], ["a", "c"]], toy_profiles, **kwargs)
    assert r1 == r2
