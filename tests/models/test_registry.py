"""Tests for the model registry."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.models.base import CulinaryEvolutionModel
from repro.models.null_model import NullModel
from repro.models.registry import (
    PAPER_MODELS,
    available_models,
    create_model,
    register_model,
)


def test_paper_models_registered():
    assert PAPER_MODELS == ("CM-R", "CM-C", "CM-M", "NM")
    for name in PAPER_MODELS:
        model = create_model(name)
        assert isinstance(model, CulinaryEvolutionModel)
        assert model.name == name


def test_extensions_register_on_import():
    import repro.models.extensions  # noqa: F401

    assert "CM-V" in available_models()


def test_unknown_model():
    with pytest.raises(ModelError):
        create_model("CM-X")


def test_create_with_kwargs():
    model = create_model("NM", sample_from="universe")
    assert isinstance(model, NullModel)
    assert model.sample_from == "universe"


def test_register_conflict_rejected():
    with pytest.raises(ModelError):
        register_model("NM", lambda: None)  # type: ignore[arg-type]


def test_register_idempotent():
    register_model("NM", NullModel)  # same factory: fine
