"""Tests for the future-work model extensions."""

from __future__ import annotations

import pytest

from repro.errors import ModelError, ParameterError
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateCategory, CopyMutateRandom
from repro.models.extensions.horizontal import HorizontalExchangeSimulation
from repro.models.extensions.variable_size import VariableSizeCopyMutate
from repro.models.null_model import NullModel
from repro.models.params import CuisineSpec


def _spec(code="A", n_ingredients=40, n_recipes=100):
    categories = list(Category)[:4]
    return CuisineSpec(
        region_code=code,
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple(categories[i % 4] for i in range(n_ingredients)),
        avg_recipe_size=6.0,
        n_recipes=n_recipes,
        phi=n_ingredients / n_recipes,
    )


# ---------------------------------------------------------------------------
# Variable recipe size
# ---------------------------------------------------------------------------


def test_variable_size_runs_to_target():
    run = VariableSizeCopyMutate().run(_spec(), seed=0)
    assert run.n_recipes == 100
    assert run.model_name == "CM-V"


def test_variable_size_changes_sizes():
    run = VariableSizeCopyMutate(p_insert=0.4, p_delete=0.4).run(
        _spec(), seed=1
    )
    sizes = {len(t) for t in run.transactions}
    assert len(sizes) > 1  # sizes actually drift


def test_variable_size_respects_bounds():
    run = VariableSizeCopyMutate(
        p_insert=0.45, p_delete=0.45, min_size=4, max_size=8
    ).run(_spec(), seed=2)
    mutated = run.transactions[run.initial_recipes:]
    for transaction in mutated:
        assert 4 <= len(transaction) <= 8 or len(transaction) == 6


def test_variable_size_invalid_probabilities():
    with pytest.raises(ParameterError):
        VariableSizeCopyMutate(p_insert=0.7, p_delete=0.7)
    with pytest.raises(ParameterError):
        VariableSizeCopyMutate(p_insert=-0.1)
    with pytest.raises(ParameterError):
        VariableSizeCopyMutate(min_size=10, max_size=5)


# ---------------------------------------------------------------------------
# Horizontal exchange
# ---------------------------------------------------------------------------


def test_horizontal_coevolution_targets():
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.2)
    outcome = sim.run([_spec("A"), _spec("B", n_recipes=60)], seed=3)
    assert outcome.runs["A"].n_recipes == 100
    assert outcome.runs["B"].n_recipes == 60
    assert outcome.runs["A"].model_name == "HX(CM-R)"


def test_horizontal_borrowing_happens():
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.5)
    outcome = sim.run([_spec("A"), _spec("B")], seed=4)
    assert sum(outcome.borrow_events.values()) > 0


def test_zero_exchange_rate_no_borrowing():
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.0)
    outcome = sim.run([_spec("A"), _spec("B")], seed=5)
    assert sum(outcome.borrow_events.values()) == 0


def test_horizontal_with_category_inner_model():
    sim = HorizontalExchangeSimulation(CopyMutateCategory(), exchange_rate=0.3)
    outcome = sim.run([_spec("A"), _spec("B")], seed=6)
    assert outcome.runs["A"].n_recipes == 100


def test_horizontal_recipes_use_known_ingredients():
    """Borrowed recipes are filtered to the borrower's universe."""
    spec_a = _spec("A", n_ingredients=30)
    spec_b = CuisineSpec(
        region_code="B",
        ingredient_ids=tuple(range(20, 60)),
        categories=tuple(
            list(Category)[:4][i % 4] for i in range(40)
        ),
        avg_recipe_size=6.0,
        n_recipes=80,
        phi=0.5,
    )
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.6)
    outcome = sim.run([spec_a, spec_b], seed=7)
    universe_a = set(spec_a.ingredient_ids)
    for transaction in outcome.runs["A"].transactions:
        assert set(transaction) <= universe_a


def test_horizontal_requires_copy_mutate_inner():
    with pytest.raises(ModelError):
        HorizontalExchangeSimulation(NullModel())


def test_horizontal_requires_two_cuisines():
    sim = HorizontalExchangeSimulation(CopyMutateRandom())
    with pytest.raises(ModelError):
        sim.run([_spec("A")], seed=0)


def test_horizontal_distinct_codes_required():
    sim = HorizontalExchangeSimulation(CopyMutateRandom())
    with pytest.raises(ModelError):
        sim.run([_spec("A"), _spec("A")], seed=0)


def test_horizontal_invalid_rate():
    with pytest.raises(ParameterError):
        HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=1.5)


# ---------------------------------------------------------------------------
# Regression: the two bugs the old inline exchange loop shipped with
# ---------------------------------------------------------------------------


def test_regression_tiny_pool_borrow_does_not_hang():
    """The old borrow-refill loop drew pool ingredients and rejected
    duplicates until the mother matched the donor recipe's length — an
    infinite spin whenever the borrower's pool held fewer distinct
    ingredients than the donor recipe was long.  Refills now cap at the
    pool size and the mother truncates, so this completes."""
    categories = list(Category)[:4]
    tiny = CuisineSpec(
        region_code="TINY",
        ingredient_ids=tuple(range(4)),
        categories=tuple(categories[i % 4] for i in range(4)),
        avg_recipe_size=3.0,
        n_recipes=40,
        phi=0.8,  # n0 = round(20 / 0.8) = 25 < 40: real recipe steps
    )
    donor = _spec("BIG", n_ingredients=40, n_recipes=100)  # 6-ingredient recipes
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.9)
    outcome = sim.run([tiny, donor], seed=11)
    assert outcome.borrow_events["TINY"] > 0  # the hang path was exercised
    assert outcome.runs["TINY"].n_recipes == 40
    pool = set(outcome.pools["TINY"])
    assert len(pool) <= 4
    for transaction in outcome.runs["TINY"].transactions:
        # Truncated mothers never exceed the borrower's pool.
        assert set(transaction) <= pool


def test_regression_borrowed_mothers_respect_pool_accounting():
    """The old loop filtered borrowed mothers against the borrower's raw
    *universe*, so foreign-but-known ingredients entered transactions
    without ever joining the pool — breaking the transactions ⊆ pool
    invariant and the m/n bookkeeping.  They now route through
    ``adopt_ingredient`` and are counted in ``ingredients_added``."""
    categories = list(Category)[:4]
    spec_a = _spec("A", n_ingredients=30)
    spec_b = CuisineSpec(
        region_code="B",
        ingredient_ids=tuple(range(20, 60)),  # overlaps A on 20..29
        categories=tuple(categories[i % 4] for i in range(40)),
        avg_recipe_size=6.0,
        n_recipes=80,
        phi=0.5,
    )
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.6)
    outcome = sim.run([spec_a, spec_b], seed=7)
    assert sum(outcome.borrow_events.values()) > 0
    for code, run in outcome.runs.items():
        pool = set(outcome.pools[code])
        for transaction in run.transactions:
            assert set(transaction) <= pool
        # Pool growth stays fully accounted: every ingredient beyond the
        # initial pool (min(20, universe)) was counted as added, whether
        # it arrived via ∂-growth or adoption from a borrowed mother.
        initial = min(20, len({"A": spec_a, "B": spec_b}[code].ingredient_ids))
        assert run.final_pool_size == initial + run.trace.ingredients_added
