"""Tests for the future-work model extensions."""

from __future__ import annotations

import pytest

from repro.errors import ModelError, ParameterError
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateCategory, CopyMutateRandom
from repro.models.extensions.horizontal import HorizontalExchangeSimulation
from repro.models.extensions.variable_size import VariableSizeCopyMutate
from repro.models.null_model import NullModel
from repro.models.params import CuisineSpec


def _spec(code="A", n_ingredients=40, n_recipes=100):
    categories = list(Category)[:4]
    return CuisineSpec(
        region_code=code,
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple(categories[i % 4] for i in range(n_ingredients)),
        avg_recipe_size=6.0,
        n_recipes=n_recipes,
        phi=n_ingredients / n_recipes,
    )


# ---------------------------------------------------------------------------
# Variable recipe size
# ---------------------------------------------------------------------------


def test_variable_size_runs_to_target():
    run = VariableSizeCopyMutate().run(_spec(), seed=0)
    assert run.n_recipes == 100
    assert run.model_name == "CM-V"


def test_variable_size_changes_sizes():
    run = VariableSizeCopyMutate(p_insert=0.4, p_delete=0.4).run(
        _spec(), seed=1
    )
    sizes = {len(t) for t in run.transactions}
    assert len(sizes) > 1  # sizes actually drift


def test_variable_size_respects_bounds():
    run = VariableSizeCopyMutate(
        p_insert=0.45, p_delete=0.45, min_size=4, max_size=8
    ).run(_spec(), seed=2)
    mutated = run.transactions[run.initial_recipes:]
    for transaction in mutated:
        assert 4 <= len(transaction) <= 8 or len(transaction) == 6


def test_variable_size_invalid_probabilities():
    with pytest.raises(ParameterError):
        VariableSizeCopyMutate(p_insert=0.7, p_delete=0.7)
    with pytest.raises(ParameterError):
        VariableSizeCopyMutate(p_insert=-0.1)
    with pytest.raises(ParameterError):
        VariableSizeCopyMutate(min_size=10, max_size=5)


# ---------------------------------------------------------------------------
# Horizontal exchange
# ---------------------------------------------------------------------------


def test_horizontal_coevolution_targets():
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.2)
    outcome = sim.run([_spec("A"), _spec("B", n_recipes=60)], seed=3)
    assert outcome.runs["A"].n_recipes == 100
    assert outcome.runs["B"].n_recipes == 60
    assert outcome.runs["A"].model_name == "HX(CM-R)"


def test_horizontal_borrowing_happens():
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.5)
    outcome = sim.run([_spec("A"), _spec("B")], seed=4)
    assert sum(outcome.borrow_events.values()) > 0


def test_zero_exchange_rate_no_borrowing():
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.0)
    outcome = sim.run([_spec("A"), _spec("B")], seed=5)
    assert sum(outcome.borrow_events.values()) == 0


def test_horizontal_with_category_inner_model():
    sim = HorizontalExchangeSimulation(CopyMutateCategory(), exchange_rate=0.3)
    outcome = sim.run([_spec("A"), _spec("B")], seed=6)
    assert outcome.runs["A"].n_recipes == 100


def test_horizontal_recipes_use_known_ingredients():
    """Borrowed recipes are filtered to the borrower's universe."""
    spec_a = _spec("A", n_ingredients=30)
    spec_b = CuisineSpec(
        region_code="B",
        ingredient_ids=tuple(range(20, 60)),
        categories=tuple(
            list(Category)[:4][i % 4] for i in range(40)
        ),
        avg_recipe_size=6.0,
        n_recipes=80,
        phi=0.5,
    )
    sim = HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=0.6)
    outcome = sim.run([spec_a, spec_b], seed=7)
    universe_a = set(spec_a.ingredient_ids)
    for transaction in outcome.runs["A"].transactions:
        assert set(transaction) <= universe_a


def test_horizontal_requires_copy_mutate_inner():
    with pytest.raises(ModelError):
        HorizontalExchangeSimulation(NullModel())


def test_horizontal_requires_two_cuisines():
    sim = HorizontalExchangeSimulation(CopyMutateRandom())
    with pytest.raises(ModelError):
        sim.run([_spec("A")], seed=0)


def test_horizontal_distinct_codes_required():
    sim = HorizontalExchangeSimulation(CopyMutateRandom())
    with pytest.raises(ModelError):
        sim.run([_spec("A"), _spec("A")], seed=0)


def test_horizontal_invalid_rate():
    with pytest.raises(ParameterError):
        HorizontalExchangeSimulation(CopyMutateRandom(), exchange_rate=1.5)
