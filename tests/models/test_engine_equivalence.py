"""Reference-vs-vectorized engine equivalence (DESIGN.md §5).

The two engines consume the RNG stream in different orders, so their
runs are not bit-identical for a given seed.  The contract tested here
instead has three layers:

1. **Deterministic structure is exactly equal.**  The (m, n) trajectory
   of the ∂-vs-φ alternation is a pure function of
   (m₀, n₀, φ, N, |I|), independent of any random draw — so both
   engines must produce *identical* histories, final pool sizes, and
   deterministic trace counters (recipes/ingredients added, mutation
   attempts) run by run.
2. **Stochastic behaviour is distributionally equivalent.**  Acceptance
   and rejection rates, final recipe compositions (ingredient-frequency
   curves), and recipe-size profiles agree within ensemble tolerance
   across all four models, both duplicate policies, and both category
   fallbacks.
3. **The vectorized engine is itself exactly deterministic** — fixed
   seed → bit-identical runs, across serial/thread/process backends.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.lexicon.categories import Category
from repro.models.null_model import NullModel
from repro.models.params import CuisineSpec, ModelParams
from repro.models.registry import PAPER_MODELS, create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import RuntimeConfig, execute_runs

N_SEEDS = 12


def _spec(n_ingredients=40, n_recipes=150, avg_size=6.0, phi=None):
    categories = list(Category)[:4]
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple(categories[i % 4] for i in range(n_ingredients)),
        avg_recipe_size=avg_size,
        n_recipes=n_recipes,
        phi=phi if phi is not None else n_ingredients / n_recipes,
    )


def _pair(name, seed, spec, record_history=False, **kwargs):
    reference = create_model(name, engine="reference", **kwargs).run(
        spec, seed=seed, record_history=record_history
    )
    vectorized = create_model(name, engine="vectorized", **kwargs).run(
        spec, seed=seed, record_history=record_history
    )
    return reference, vectorized


def _ingredient_frequencies(runs) -> np.ndarray:
    """Mean per-ingredient usage frequency over an ensemble of runs."""
    counts: Counter[int] = Counter()
    total = 0
    for run in runs:
        for transaction in run.transactions:
            counts.update(transaction)
            total += len(transaction)
    universe = max(counts) + 1 if counts else 0
    freq = np.zeros(universe)
    for ingredient, count in counts.items():
        freq[ingredient] = count / total
    return freq


# ----------------------------------------------------------------------
# Layer 1: deterministic structure
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_trajectories_identical(name):
    """(m, n) histories and final pool sizes match run for run."""
    spec = _spec()
    for seed in range(N_SEEDS):
        reference, vectorized = _pair(name, seed, spec, record_history=True)
        assert reference.history == vectorized.history
        assert reference.final_pool_size == vectorized.final_pool_size
        assert reference.initial_recipes == vectorized.initial_recipes
        assert reference.n_recipes == vectorized.n_recipes


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_deterministic_counters_identical(name):
    """Counters fixed by the trajectory (not by draws) match exactly."""
    spec = _spec()
    for seed in range(N_SEEDS):
        reference, vectorized = _pair(name, seed, spec)
        assert (
            reference.trace.recipes_added == vectorized.trace.recipes_added
        )
        assert (
            reference.trace.ingredients_added
            == vectorized.trace.ingredients_added
        )
        assert (
            reference.trace.mutations_attempted
            == vectorized.trace.mutations_attempted
        )


def test_exhausted_universe_trajectory():
    """Tiny universe: pool exhausts mid-run; trajectories still match."""
    spec = _spec(n_ingredients=6, n_recipes=80, avg_size=3.0, phi=0.5)
    for name in PAPER_MODELS:
        reference, vectorized = _pair(name, 3, spec, record_history=True)
        assert reference.history == vectorized.history
        assert reference.final_pool_size == spec.n_ingredients


# ----------------------------------------------------------------------
# Layer 2: distributional equivalence
# ----------------------------------------------------------------------


def _ensemble(name, spec, engine, n=N_SEEDS, **kwargs):
    model = create_model(name, engine=engine, **kwargs)
    return [model.run(spec, seed=1000 + seed) for seed in range(n)]


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_acceptance_rates_close(name):
    """Mean mutation acceptance rates agree within ensemble tolerance."""
    spec = _spec()
    rates = {}
    for engine in ("reference", "vectorized"):
        runs = _ensemble(name, spec, engine)
        attempted = sum(run.trace.mutations_attempted for run in runs)
        accepted = sum(run.trace.mutations_accepted for run in runs)
        rates[engine] = accepted / attempted if attempted else 0.0
    if name == "NM":
        assert rates["reference"] == rates["vectorized"] == 0.0
    else:
        assert rates["reference"] > 0
        assert rates["vectorized"] == pytest.approx(
            rates["reference"], rel=0.15
        )


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_ingredient_frequency_curves_close(name):
    """Mean per-ingredient usage distributions agree (MAE tolerance)."""
    spec = _spec()
    reference = _ingredient_frequencies(_ensemble(name, spec, "reference"))
    vectorized = _ingredient_frequencies(_ensemble(name, spec, "vectorized"))
    size = max(reference.size, vectorized.size)
    reference = np.pad(reference, (0, size - reference.size))
    vectorized = np.pad(vectorized, (0, size - vectorized.size))
    # Mean frequency is 1/40 = 0.025; a 0.004 MAE bound keeps the two
    # ensembles statistically indistinguishable at this size.
    assert float(np.abs(reference - vectorized).mean()) < 0.004


@pytest.mark.parametrize("policy", ["skip", "allow"])
def test_duplicate_policies_equivalent(policy):
    """Recipe-size profiles match under both duplicate policies."""
    spec = _spec(n_ingredients=24, n_recipes=300, avg_size=6.0)
    params = ModelParams(mutations=8, duplicate_policy=policy)
    sizes = {}
    for engine in ("reference", "vectorized"):
        runs = _ensemble("CM-R", spec, engine, params=params)
        sizes[engine] = Counter(
            len(transaction) for run in runs for transaction in run.transactions
        )
    if policy == "skip":
        assert set(sizes["reference"]) == set(sizes["vectorized"]) == {6}
    else:
        # Both engines must produce shrunken recipes at a similar rate.
        def shrink_rate(counter):
            total = sum(counter.values())
            return sum(v for k, v in counter.items() if k < 6) / total

        assert shrink_rate(sizes["reference"]) > 0
        assert shrink_rate(sizes["vectorized"]) == pytest.approx(
            shrink_rate(sizes["reference"]), rel=0.3
        )


@pytest.mark.parametrize("fallback", ["skip", "random"])
@pytest.mark.parametrize("name", ["CM-C", "CM-M"])
def test_category_fallbacks_equivalent(name, fallback):
    """Skip/random category fallbacks behave alike on a sparse universe.

    A 6-ingredient universe with 4 categories makes empty pool∩category
    draws common, exercising the fallback on both engines.
    """
    spec = _spec(n_ingredients=6, n_recipes=120, avg_size=3.0, phi=0.3)
    params = ModelParams(mutations=6, category_fallback=fallback)
    skipped = {}
    for engine in ("reference", "vectorized"):
        runs = _ensemble(name, spec, engine, params=params)
        attempted = sum(run.trace.mutations_attempted for run in runs)
        skipped[engine] = (
            sum(run.trace.mutations_skipped_no_candidate for run in runs)
            / attempted
        )
    if fallback == "random":
        assert skipped["reference"] == skipped["vectorized"] == 0.0
    else:
        assert skipped["vectorized"] == pytest.approx(
            skipped["reference"], abs=0.05
        )


def test_cm_c_category_preservation_vectorized():
    """CM-C's category-multiset invariant holds on the vectorized engine."""
    spec = _spec(n_ingredients=40, n_recipes=200, avg_size=6.0)
    run = create_model("CM-C", engine="vectorized").run(spec, seed=6)

    def category_vector(transaction):
        counts = [0, 0, 0, 0]
        for ingredient_id in transaction:
            counts[ingredient_id % 4] += 1
        return tuple(counts)

    vectors = {category_vector(t) for t in run.transactions}
    initial = {
        category_vector(t)
        for t in run.transactions[: run.initial_recipes]
    }
    assert vectors == initial


@pytest.mark.parametrize("sample_from", ["pool", "universe"])
def test_null_model_sampling_modes_equivalent(sample_from):
    """NM recipes stay distinct, correctly sized, in-universe, per mode."""
    spec = _spec(n_ingredients=30, n_recipes=150, avg_size=5.0)
    reference = NullModel(sample_from=sample_from, engine="reference").run(
        spec, seed=2, record_history=True
    )
    vectorized = NullModel(sample_from=sample_from, engine="vectorized").run(
        spec, seed=2, record_history=True
    )
    assert reference.history == vectorized.history
    universe = set(spec.ingredient_ids)
    for run in (reference, vectorized):
        assert all(len(t) == spec.recipe_size for t in run.transactions)
        assert all(t <= universe for t in run.transactions)
    # Pool-mode recipes drawn before the pool finished growing can only
    # use pool members; compare how tightly early recipes concentrate.
    if sample_from == "pool":
        early_ref = set().union(*reference.transactions[:20])
        early_vec = set().union(*vectorized.transactions[:20])
        assert len(early_ref) < spec.n_ingredients
        assert len(early_vec) < spec.n_ingredients


# ----------------------------------------------------------------------
# Layer 3: vectorized determinism across backends
# ----------------------------------------------------------------------


def test_vectorized_deterministic_per_seed():
    """Same seed → bit-identical vectorized runs, every model."""
    spec = _spec()
    for name in PAPER_MODELS:
        model = create_model(name, engine="vectorized")
        first = model.run(spec, seed=42, record_history=True)
        second = model.run(spec, seed=42, record_history=True)
        assert first.transactions == second.transactions
        assert first.trace == second.trace
        assert first.history == second.history


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_vectorized_bit_identical_across_backends(backend):
    """Serial vs parallel backends agree bit-for-bit (vectorized)."""
    spec = _spec(n_ingredients=30, n_recipes=40, avg_size=4.0, phi=0.6)
    model = create_model("CM-M", engine="vectorized")
    seeds = spawn_seeds(ensure_rng(5), 4)
    serial = execute_runs(model, spec, seeds)
    parallel = execute_runs(
        model, spec, seeds,
        runtime=RuntimeConfig(backend=backend, jobs=2),
    )
    assert [run.transactions for run in serial] == [
        run.transactions for run in parallel
    ]
    assert [run.trace for run in serial] == [run.trace for run in parallel]


def test_engine_override_beats_params():
    """run(engine=...) overrides params.engine, and resolves correctly."""
    spec = _spec(n_recipes=60)
    model = create_model("CM-R", engine="reference")
    assert model.resolve_engine() == "reference"
    assert model.resolve_engine("vectorized") == "vectorized"
    override = model.run(spec, seed=1, engine="vectorized")
    vectorized = create_model("CM-R", engine="vectorized").run(spec, seed=1)
    assert override.transactions == vectorized.transactions


def test_unsupported_model_falls_back_to_reference():
    """CM-V has no vectorized step: a vectorized request degrades."""
    from repro.models.extensions.variable_size import VariableSizeCopyMutate

    model = VariableSizeCopyMutate(engine="vectorized")
    assert model.resolve_engine() == "reference"
    spec = _spec(n_recipes=60)
    vectorized_request = model.run(spec, seed=4)
    reference = VariableSizeCopyMutate(engine="reference").run(spec, seed=4)
    assert vectorized_request.transactions == reference.transactions
