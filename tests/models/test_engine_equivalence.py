"""Reference-vs-vectorized engine equivalence (DESIGN.md §5).

The two engines consume the RNG stream in different orders, so their
runs are not bit-identical for a given seed.  The contract tested here
instead has three layers:

1. **Deterministic structure is exactly equal.**  The (m, n) trajectory
   of the ∂-vs-φ alternation is a pure function of
   (m₀, n₀, φ, N, |I|), independent of any random draw — so both
   engines must produce *identical* histories, final pool sizes, and
   deterministic trace counters (recipes/ingredients added, mutation
   attempts) run by run.
2. **Stochastic behaviour is distributionally equivalent.**  Acceptance
   and rejection rates, final recipe compositions (ingredient-frequency
   curves), and recipe-size profiles agree within ensemble tolerance
   across all four models, both duplicate policies, and both category
   fallbacks.
3. **The vectorized engine is itself exactly deterministic** — fixed
   seed → bit-identical runs, across serial/thread/process backends.
4. **The batched engine is bit-identical to vectorized** (DESIGN.md
   §7): stacking runs never changes any individual run — transactions,
   trace, and history match exactly, for every batchable model, at any
   batch size or composition.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.lexicon.categories import Category
from repro.models.batched import run_batched
from repro.models.null_model import NullModel
from repro.models.params import CuisineSpec, ModelParams
from repro.models.registry import PAPER_MODELS, create_model
from repro.rng import ensure_rng, rng_from_seed, spawn_seeds
from repro.runtime import RuntimeConfig, execute_runs

N_SEEDS = 12


def _spec(n_ingredients=40, n_recipes=150, avg_size=6.0, phi=None):
    categories = list(Category)[:4]
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple(categories[i % 4] for i in range(n_ingredients)),
        avg_recipe_size=avg_size,
        n_recipes=n_recipes,
        phi=phi if phi is not None else n_ingredients / n_recipes,
    )


def _pair(name, seed, spec, record_history=False, **kwargs):
    reference = create_model(name, engine="reference", **kwargs).run(
        spec, seed=seed, record_history=record_history
    )
    vectorized = create_model(name, engine="vectorized", **kwargs).run(
        spec, seed=seed, record_history=record_history
    )
    return reference, vectorized


def _ingredient_frequencies(runs) -> np.ndarray:
    """Mean per-ingredient usage frequency over an ensemble of runs."""
    counts: Counter[int] = Counter()
    total = 0
    for run in runs:
        for transaction in run.transactions:
            counts.update(transaction)
            total += len(transaction)
    universe = max(counts) + 1 if counts else 0
    freq = np.zeros(universe)
    for ingredient, count in counts.items():
        freq[ingredient] = count / total
    return freq


# ----------------------------------------------------------------------
# Layer 1: deterministic structure
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_trajectories_identical(name):
    """(m, n) histories and final pool sizes match run for run."""
    spec = _spec()
    for seed in range(N_SEEDS):
        reference, vectorized = _pair(name, seed, spec, record_history=True)
        assert reference.history == vectorized.history
        assert reference.final_pool_size == vectorized.final_pool_size
        assert reference.initial_recipes == vectorized.initial_recipes
        assert reference.n_recipes == vectorized.n_recipes


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_deterministic_counters_identical(name):
    """Counters fixed by the trajectory (not by draws) match exactly."""
    spec = _spec()
    for seed in range(N_SEEDS):
        reference, vectorized = _pair(name, seed, spec)
        assert (
            reference.trace.recipes_added == vectorized.trace.recipes_added
        )
        assert (
            reference.trace.ingredients_added
            == vectorized.trace.ingredients_added
        )
        assert (
            reference.trace.mutations_attempted
            == vectorized.trace.mutations_attempted
        )


def test_exhausted_universe_trajectory():
    """Tiny universe: pool exhausts mid-run; trajectories still match."""
    spec = _spec(n_ingredients=6, n_recipes=80, avg_size=3.0, phi=0.5)
    for name in PAPER_MODELS:
        reference, vectorized = _pair(name, 3, spec, record_history=True)
        assert reference.history == vectorized.history
        assert reference.final_pool_size == spec.n_ingredients


# ----------------------------------------------------------------------
# Layer 2: distributional equivalence
# ----------------------------------------------------------------------


def _ensemble(name, spec, engine, n=N_SEEDS, **kwargs):
    model = create_model(name, engine=engine, **kwargs)
    return [model.run(spec, seed=1000 + seed) for seed in range(n)]


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_acceptance_rates_close(name):
    """Mean mutation acceptance rates agree within ensemble tolerance."""
    spec = _spec()
    rates = {}
    for engine in ("reference", "vectorized"):
        runs = _ensemble(name, spec, engine)
        attempted = sum(run.trace.mutations_attempted for run in runs)
        accepted = sum(run.trace.mutations_accepted for run in runs)
        rates[engine] = accepted / attempted if attempted else 0.0
    if name == "NM":
        assert rates["reference"] == rates["vectorized"] == 0.0
    else:
        assert rates["reference"] > 0
        assert rates["vectorized"] == pytest.approx(
            rates["reference"], rel=0.15
        )


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_ingredient_frequency_curves_close(name):
    """Mean per-ingredient usage distributions agree (MAE tolerance)."""
    spec = _spec()
    reference = _ingredient_frequencies(_ensemble(name, spec, "reference"))
    vectorized = _ingredient_frequencies(_ensemble(name, spec, "vectorized"))
    size = max(reference.size, vectorized.size)
    reference = np.pad(reference, (0, size - reference.size))
    vectorized = np.pad(vectorized, (0, size - vectorized.size))
    # Mean frequency is 1/40 = 0.025; a 0.004 MAE bound keeps the two
    # ensembles statistically indistinguishable at this size.
    assert float(np.abs(reference - vectorized).mean()) < 0.004


@pytest.mark.parametrize("policy", ["skip", "allow"])
def test_duplicate_policies_equivalent(policy):
    """Recipe-size profiles match under both duplicate policies."""
    spec = _spec(n_ingredients=24, n_recipes=300, avg_size=6.0)
    params = ModelParams(mutations=8, duplicate_policy=policy)
    sizes = {}
    for engine in ("reference", "vectorized"):
        runs = _ensemble("CM-R", spec, engine, params=params)
        sizes[engine] = Counter(
            len(transaction) for run in runs for transaction in run.transactions
        )
    if policy == "skip":
        assert set(sizes["reference"]) == set(sizes["vectorized"]) == {6}
    else:
        # Both engines must produce shrunken recipes at a similar rate.
        def shrink_rate(counter):
            total = sum(counter.values())
            return sum(v for k, v in counter.items() if k < 6) / total

        assert shrink_rate(sizes["reference"]) > 0
        assert shrink_rate(sizes["vectorized"]) == pytest.approx(
            shrink_rate(sizes["reference"]), rel=0.3
        )


@pytest.mark.parametrize("fallback", ["skip", "random"])
@pytest.mark.parametrize("name", ["CM-C", "CM-M"])
def test_category_fallbacks_equivalent(name, fallback):
    """Skip/random category fallbacks behave alike on a sparse universe.

    A 6-ingredient universe with 4 categories makes empty pool∩category
    draws common, exercising the fallback on both engines.
    """
    spec = _spec(n_ingredients=6, n_recipes=120, avg_size=3.0, phi=0.3)
    params = ModelParams(mutations=6, category_fallback=fallback)
    skipped = {}
    for engine in ("reference", "vectorized"):
        runs = _ensemble(name, spec, engine, params=params)
        attempted = sum(run.trace.mutations_attempted for run in runs)
        skipped[engine] = (
            sum(run.trace.mutations_skipped_no_candidate for run in runs)
            / attempted
        )
    if fallback == "random":
        assert skipped["reference"] == skipped["vectorized"] == 0.0
    else:
        assert skipped["vectorized"] == pytest.approx(
            skipped["reference"], abs=0.05
        )


def test_cm_c_category_preservation_vectorized():
    """CM-C's category-multiset invariant holds on the vectorized engine."""
    spec = _spec(n_ingredients=40, n_recipes=200, avg_size=6.0)
    run = create_model("CM-C", engine="vectorized").run(spec, seed=6)

    def category_vector(transaction):
        counts = [0, 0, 0, 0]
        for ingredient_id in transaction:
            counts[ingredient_id % 4] += 1
        return tuple(counts)

    vectors = {category_vector(t) for t in run.transactions}
    initial = {
        category_vector(t)
        for t in run.transactions[: run.initial_recipes]
    }
    assert vectors == initial


@pytest.mark.parametrize("sample_from", ["pool", "universe"])
def test_null_model_sampling_modes_equivalent(sample_from):
    """NM recipes stay distinct, correctly sized, in-universe, per mode."""
    spec = _spec(n_ingredients=30, n_recipes=150, avg_size=5.0)
    reference = NullModel(sample_from=sample_from, engine="reference").run(
        spec, seed=2, record_history=True
    )
    vectorized = NullModel(sample_from=sample_from, engine="vectorized").run(
        spec, seed=2, record_history=True
    )
    assert reference.history == vectorized.history
    universe = set(spec.ingredient_ids)
    for run in (reference, vectorized):
        assert all(len(t) == spec.recipe_size for t in run.transactions)
        assert all(t <= universe for t in run.transactions)
    # Pool-mode recipes drawn before the pool finished growing can only
    # use pool members; compare how tightly early recipes concentrate.
    if sample_from == "pool":
        early_ref = set().union(*reference.transactions[:20])
        early_vec = set().union(*vectorized.transactions[:20])
        assert len(early_ref) < spec.n_ingredients
        assert len(early_vec) < spec.n_ingredients


# ----------------------------------------------------------------------
# Layer 3: vectorized determinism across backends
# ----------------------------------------------------------------------


def test_vectorized_deterministic_per_seed():
    """Same seed → bit-identical vectorized runs, every model."""
    spec = _spec()
    for name in PAPER_MODELS:
        model = create_model(name, engine="vectorized")
        first = model.run(spec, seed=42, record_history=True)
        second = model.run(spec, seed=42, record_history=True)
        assert first.transactions == second.transactions
        assert first.trace == second.trace
        assert first.history == second.history


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_vectorized_bit_identical_across_backends(backend):
    """Serial vs parallel backends agree bit-for-bit (vectorized)."""
    spec = _spec(n_ingredients=30, n_recipes=40, avg_size=4.0, phi=0.6)
    model = create_model("CM-M", engine="vectorized")
    seeds = spawn_seeds(ensure_rng(5), 4)
    serial = execute_runs(model, spec, seeds)
    parallel = execute_runs(
        model, spec, seeds,
        runtime=RuntimeConfig(backend=backend, jobs=2),
    )
    assert [run.transactions for run in serial] == [
        run.transactions for run in parallel
    ]
    assert [run.trace for run in serial] == [run.trace for run in parallel]


def test_engine_override_beats_params():
    """run(engine=...) overrides params.engine, and resolves correctly."""
    spec = _spec(n_recipes=60)
    model = create_model("CM-R", engine="reference")
    assert model.resolve_engine() == "reference"
    assert model.resolve_engine("vectorized") == "vectorized"
    override = model.run(spec, seed=1, engine="vectorized")
    vectorized = create_model("CM-R", engine="vectorized").run(spec, seed=1)
    assert override.transactions == vectorized.transactions


def test_unsupported_model_falls_back_to_reference():
    """A model with no vectorized step degrades all the way down."""
    from repro.models.base import CopyMutateBase

    class NoKind(CopyMutateBase):
        name = "TST-NOKIND"

        def _recipe_step(self, state, rng):  # pragma: no cover - unused
            raise NotImplementedError

        def _choose_replacement(self, state, victim, rng):
            return None  # pragma: no cover - unused

    model = NoKind(engine="vectorized")
    assert model.resolve_engine() == "reference"
    assert model.resolve_engine("batched") == "reference"


# ----------------------------------------------------------------------
# CM-V: the "variable" vectorized kind (no batched support)
# ----------------------------------------------------------------------


def _cm_v_pair(seed, spec, record_history=False):
    from repro.models.extensions.variable_size import VariableSizeCopyMutate

    reference = VariableSizeCopyMutate(engine="reference").run(
        spec, seed=seed, record_history=record_history
    )
    vectorized = VariableSizeCopyMutate(engine="vectorized").run(
        spec, seed=seed, record_history=record_history
    )
    return reference, vectorized


def test_cm_v_resolves_vectorized_and_degrades_batched():
    """CM-V runs vectorized; a batched request degrades to vectorized."""
    from repro.models.extensions.variable_size import VariableSizeCopyMutate

    model = VariableSizeCopyMutate(engine="vectorized")
    assert model.resolve_engine() == "vectorized"
    assert model.resolve_engine("batched") == "vectorized"
    spec = _spec(n_recipes=60)
    batched_request = model.run(spec, seed=4)
    vectorized = model.run(spec, seed=4, engine="batched")
    assert batched_request.transactions == vectorized.transactions


def test_cm_v_trajectories_identical():
    """CM-V deterministic structure matches between its two engines."""
    spec = _spec()
    for seed in range(N_SEEDS):
        reference, vectorized = _cm_v_pair(seed, spec, record_history=True)
        assert reference.history == vectorized.history
        assert reference.final_pool_size == vectorized.final_pool_size
        assert (
            reference.trace.mutations_attempted
            == vectorized.trace.mutations_attempted
        )


def test_cm_v_sizes_drift_within_bounds_both_engines():
    """Insert/delete moves change sizes on both engines, within [2, 38]."""
    from repro.models.extensions.variable_size import VariableSizeCopyMutate

    spec = _spec(n_ingredients=30, n_recipes=200, avg_size=6.0)
    for engine in ("reference", "vectorized"):
        model = VariableSizeCopyMutate(engine=engine)
        run = model.run(spec, seed=9)
        sizes = {len(t) for t in run.transactions}
        assert len(sizes) > 1, f"no size drift on {engine}"
        assert min(sizes) >= model.min_size
        assert max(sizes) <= model.max_size


def test_cm_v_acceptance_rates_close():
    """CM-V acceptance rates agree across engines within tolerance."""
    from repro.models.extensions.variable_size import VariableSizeCopyMutate

    spec = _spec()
    rates = {}
    for engine in ("reference", "vectorized"):
        model = VariableSizeCopyMutate(engine=engine)
        runs = [model.run(spec, seed=1000 + seed) for seed in range(N_SEEDS)]
        attempted = sum(run.trace.mutations_attempted for run in runs)
        accepted = sum(run.trace.mutations_accepted for run in runs)
        rates[engine] = accepted / attempted
    assert rates["reference"] > 0
    assert rates["vectorized"] == pytest.approx(rates["reference"], rel=0.15)


# ----------------------------------------------------------------------
# Layer 4: batched engine bit-identity (DESIGN.md §7)
# ----------------------------------------------------------------------


def _assert_runs_identical(batched, vectorized):
    assert batched.transactions == vectorized.transactions
    assert vectorized.transactions == batched.transactions
    assert batched.trace == vectorized.trace
    assert batched.history == vectorized.history
    assert batched.final_pool_size == vectorized.final_pool_size
    assert batched.initial_recipes == vectorized.initial_recipes


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_batched_bit_identical_to_vectorized(name):
    """Whole-batch results equal per-run vectorized results exactly."""
    spec = _spec()
    model = create_model(name, engine="vectorized")
    seeds = list(range(N_SEEDS))
    batched = run_batched(
        model, spec, [rng_from_seed(seed) for seed in seeds],
        record_history=True,
    )
    for seed, batched_run in zip(seeds, batched):
        vectorized = model.run(spec, seed=seed, record_history=True)
        _assert_runs_identical(batched_run, vectorized)


@pytest.mark.parametrize("name", PAPER_MODELS)
def test_batched_vs_reference_deterministic_structure(name):
    """Batched runs share the reference engine's exact (m, n) structure."""
    spec = _spec()
    model = create_model(name)
    seeds = [5, 6, 7]
    batched = run_batched(
        model, spec, [rng_from_seed(seed) for seed in seeds],
        record_history=True,
    )
    for seed, batched_run in zip(seeds, batched):
        reference = model.run(
            spec, seed=seed, engine="reference", record_history=True
        )
        assert batched_run.history == reference.history
        assert batched_run.final_pool_size == reference.final_pool_size
        assert (
            batched_run.trace.mutations_attempted
            == reference.trace.mutations_attempted
        )


def test_batched_independent_of_batch_composition():
    """A run's result never depends on which runs share its batch."""
    spec = _spec()
    model = create_model("CM-C")
    alone = run_batched(model, spec, [rng_from_seed(3)])[0]
    grouped = run_batched(
        model, spec, [rng_from_seed(seed) for seed in (1, 3, 8, 21)]
    )[1]
    assert alone.transactions == grouped.transactions
    assert alone.trace == grouped.trace


def test_batched_engine_override_resolution():
    """engine="batched" resolves per model class, and run() honors it."""
    spec = _spec(n_recipes=60)
    for name in PAPER_MODELS:
        model = create_model(name)
        assert model.resolve_engine("batched") == "batched"
        via_run = model.run(spec, seed=2, engine="batched")
        vectorized = model.run(spec, seed=2, engine="vectorized")
        _assert_runs_identical(via_run, vectorized)


def test_batched_non_uniform_recipe_lengths():
    """Short rows must truncate per row, not pad to the widest one.

    Two ways rows fall short of the batch's row width: NM recipes drawn
    while the pool is still smaller than s̄, and CM-R recipes shrunk by
    duplicate collapse under ``duplicate_policy="allow"``.
    """
    spec = _spec(n_ingredients=30, n_recipes=120, avg_size=8.0, phi=0.4)
    cases = [
        ("NM", ModelParams(initial_pool_size=5)),
        ("CM-R", ModelParams(mutations=8, duplicate_policy="allow")),
    ]
    for name, params in cases:
        model = create_model(name, params=params)
        batched = run_batched(model, spec, [rng_from_seed(11)])[0]
        vectorized = model.run(spec, seed=11, engine="vectorized")
        lengths = {len(t) for t in batched.transactions}
        assert len(lengths) > 1, f"{name} did not produce mixed lengths"
        assert batched.transactions == vectorized.transactions


def test_batched_deterministic_per_seed():
    """Same generator seeds → bit-identical batched results."""
    spec = _spec()
    model = create_model("CM-M")
    first = run_batched(model, spec, [rng_from_seed(s) for s in (1, 2)])
    second = run_batched(model, spec, [rng_from_seed(s) for s in (1, 2)])
    for a, b in zip(first, second):
        assert a.transactions == b.transactions
        assert a.trace == b.trace
