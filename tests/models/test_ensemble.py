"""Tests for ensemble running and aggregation."""

from __future__ import annotations

import pytest

from repro.config import MiningConfig
from repro.errors import ModelError
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.ensemble import ensemble_curve, run_ensemble
from repro.models.params import CuisineSpec


def _spec(n_recipes=80):
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(30)),
        categories=tuple([Category.SPICE] * 30),
        avg_recipe_size=5.0,
        n_recipes=n_recipes,
        phi=30 / n_recipes,
    )


def test_run_ensemble_counts():
    result = run_ensemble(CopyMutateRandom(), _spec(), n_runs=4, seed=0)
    assert result.n_runs == 4
    assert result.model_name == "CM-R"
    assert result.region_code == "TST"
    assert all(run.n_recipes == 80 for run in result.runs)


def test_runs_are_independent():
    result = run_ensemble(CopyMutateRandom(), _spec(), n_runs=3, seed=0)
    assert result.runs[0].transactions != result.runs[1].transactions


def test_ensemble_deterministic():
    a = run_ensemble(CopyMutateRandom(), _spec(), n_runs=3, seed=5)
    b = run_ensemble(CopyMutateRandom(), _spec(), n_runs=3, seed=5)
    assert [r.transactions for r in a.runs] == [r.transactions for r in b.runs]


def test_ingredient_curve_aggregated():
    result = run_ensemble(
        CopyMutateRandom(), _spec(), n_runs=4, seed=1,
        mining=MiningConfig(min_support=0.05),
    )
    curve = result.ingredient_curve
    assert curve.label == "CM-R"
    assert len(curve) > 0
    assert (curve.frequencies <= 1.0).all()


def test_category_curve_requires_lexicon():
    with pytest.raises(ModelError):
        run_ensemble(
            CopyMutateRandom(), _spec(), n_runs=2, seed=1,
            include_category_level=True,
        )


def test_category_curve_with_lexicon(lexicon):
    # Use ids within the standard lexicon's range.
    spec = CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(30)),
        categories=tuple(lexicon.category_of(i) for i in range(30)),
        avg_recipe_size=5.0,
        n_recipes=60,
        phi=0.5,
    )
    result = run_ensemble(
        CopyMutateRandom(), spec, n_runs=2, seed=2,
        lexicon=lexicon, include_category_level=True,
    )
    assert result.category_curve is not None
    assert len(result.category_curve) > 0


def test_invalid_run_count():
    with pytest.raises(ModelError):
        run_ensemble(CopyMutateRandom(), _spec(), n_runs=0)


def test_ensemble_curve_requires_runs():
    with pytest.raises(ModelError):
        ensemble_curve([], "x")
