"""Tests for ensemble running and aggregation."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.config import MiningConfig
from repro.errors import ModelError
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.ensemble import (
    CurveMiningTask,
    ensemble_curve,
    mine_curve_task,
    run_ensemble,
)
from repro.models.params import CuisineSpec
from repro.runtime import CurveCache, RuntimeConfig


def _spec(n_recipes=80):
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(30)),
        categories=tuple([Category.SPICE] * 30),
        avg_recipe_size=5.0,
        n_recipes=n_recipes,
        phi=30 / n_recipes,
    )


def test_run_ensemble_counts():
    result = run_ensemble(CopyMutateRandom(), _spec(), n_runs=4, seed=0)
    assert result.n_runs == 4
    assert result.model_name == "CM-R"
    assert result.region_code == "TST"
    assert all(run.n_recipes == 80 for run in result.runs)


def test_runs_are_independent():
    result = run_ensemble(CopyMutateRandom(), _spec(), n_runs=3, seed=0)
    assert result.runs[0].transactions != result.runs[1].transactions


def test_ensemble_deterministic():
    a = run_ensemble(CopyMutateRandom(), _spec(), n_runs=3, seed=5)
    b = run_ensemble(CopyMutateRandom(), _spec(), n_runs=3, seed=5)
    assert [r.transactions for r in a.runs] == [r.transactions for r in b.runs]


def test_ingredient_curve_aggregated():
    result = run_ensemble(
        CopyMutateRandom(), _spec(), n_runs=4, seed=1,
        mining=MiningConfig(min_support=0.05),
    )
    curve = result.ingredient_curve
    assert curve.label == "CM-R"
    assert len(curve) > 0
    assert (curve.frequencies <= 1.0).all()


def test_category_curve_requires_lexicon():
    with pytest.raises(ModelError):
        run_ensemble(
            CopyMutateRandom(), _spec(), n_runs=2, seed=1,
            include_category_level=True,
        )


def test_category_curve_with_lexicon(lexicon):
    # Use ids within the standard lexicon's range.
    spec = CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(30)),
        categories=tuple(lexicon.category_of(i) for i in range(30)),
        avg_recipe_size=5.0,
        n_recipes=60,
        phi=0.5,
    )
    result = run_ensemble(
        CopyMutateRandom(), spec, n_runs=2, seed=2,
        lexicon=lexicon, include_category_level=True,
    )
    assert result.category_curve is not None
    assert len(result.category_curve) > 0


def test_invalid_run_count():
    with pytest.raises(ModelError):
        run_ensemble(CopyMutateRandom(), _spec(), n_runs=0)


def test_ensemble_curve_requires_runs():
    with pytest.raises(ModelError):
        ensemble_curve([], "x")


# ---------------------------------------------------------------------------
# Picklable process mining + the mined-curve cache (DESIGN.md §6)
# ---------------------------------------------------------------------------


def test_curve_mining_task_is_picklable():
    task = CurveMiningTask(
        transactions=(frozenset({1, 2}), frozenset({2})),
        mining=MiningConfig(min_support=0.1),
        label="CM-R#0",
    )
    clone = pickle.loads(pickle.dumps(task))
    curve = mine_curve_task(clone)
    assert curve.label == "CM-R#0"
    assert len(curve) > 0


@pytest.mark.parametrize("algorithm", ["eclat", "bitset"])
def test_ensemble_curve_bit_identical_across_backends(algorithm):
    runs = run_ensemble(CopyMutateRandom(), _spec(), n_runs=4, seed=9).runs
    mining = MiningConfig(min_support=0.05, algorithm=algorithm)
    serial = ensemble_curve(runs, "CM-R", mining=mining)
    for backend in ("thread", "process"):
        parallel = ensemble_curve(
            runs, "CM-R", mining=mining,
            runtime=RuntimeConfig(backend=backend, jobs=2),
        )
        assert np.array_equal(serial.frequencies, parallel.frequencies)


def test_bitset_curve_equals_pure_python_curve():
    runs = run_ensemble(CopyMutateRandom(), _spec(), n_runs=3, seed=11).runs
    eclat = ensemble_curve(
        runs, "CM-R", mining=MiningConfig(min_support=0.05, algorithm="eclat")
    )
    bitset = ensemble_curve(
        runs, "CM-R", mining=MiningConfig(min_support=0.05, algorithm="bitset")
    )
    assert np.array_equal(eclat.frequencies, bitset.frequencies)


def test_warm_curve_cache_skips_mining_entirely(tmp_path, monkeypatch):
    runs = run_ensemble(CopyMutateRandom(), _spec(), n_runs=3, seed=4).runs
    runtime = RuntimeConfig(cache_dir=tmp_path)
    cold = ensemble_curve(runs, "CM-R", runtime=runtime)

    def _no_mining(*_args, **_kwargs):
        raise AssertionError("warm path must not mine")

    monkeypatch.setattr(
        "repro.models.ensemble.mine_frequent_itemsets", _no_mining
    )
    cache = CurveCache(tmp_path)
    warm = ensemble_curve(runs, "CM-R", runtime=runtime, curve_cache=cache)
    assert np.array_equal(cold.frequencies, warm.frequencies)
    assert cache.stats.hits == 3 and cache.stats.misses == 0


def test_curve_cache_invalidated_by_mining_config(tmp_path):
    runs = run_ensemble(CopyMutateRandom(), _spec(), n_runs=2, seed=4).runs
    runtime = RuntimeConfig(cache_dir=tmp_path)
    ensemble_curve(runs, "CM-R", runtime=runtime)
    cache = CurveCache(tmp_path)
    ensemble_curve(
        runs, "CM-R", mining=MiningConfig(min_support=0.2),
        runtime=runtime, curve_cache=cache,
    )
    assert cache.stats.hits == 0 and cache.stats.misses == 2


def test_curve_cache_invalidated_by_different_runs(tmp_path):
    runtime = RuntimeConfig(cache_dir=tmp_path)
    runs_a = run_ensemble(CopyMutateRandom(), _spec(), n_runs=2, seed=1).runs
    ensemble_curve(runs_a, "CM-R", runtime=runtime)
    runs_b = run_ensemble(CopyMutateRandom(), _spec(), n_runs=2, seed=2).runs
    cache = CurveCache(tmp_path)
    ensemble_curve(runs_b, "CM-R", runtime=runtime, curve_cache=cache)
    assert cache.stats.hits == 0 and cache.stats.misses == 2


def test_cached_curve_label_independent(tmp_path):
    # Content addressing: the same runs aggregated under another label
    # reuse the cached frequencies (labels are reattached on load).
    runs = run_ensemble(CopyMutateRandom(), _spec(), n_runs=2, seed=6).runs
    runtime = RuntimeConfig(cache_dir=tmp_path)
    first = ensemble_curve(runs, "label-a", runtime=runtime)
    cache = CurveCache(tmp_path)
    second = ensemble_curve(runs, "label-b", runtime=runtime, curve_cache=cache)
    assert cache.stats.hits == 2
    assert second.label == "label-b"
    assert np.array_equal(first.frequencies, second.frequencies)
