"""Tests for fitness strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models.fitness import RankBiasedFitness, ScoredFitness, UniformFitness
from repro.rng import ensure_rng


def test_uniform_range_and_shape():
    fitness = UniformFitness().assign(list(range(100)), ensure_rng(0))
    assert fitness.shape == (100,)
    assert (fitness >= 0).all() and (fitness <= 1).all()


def test_uniform_deterministic_per_seed():
    a = UniformFitness().assign([1, 2, 3], ensure_rng(5))
    b = UniformFitness().assign([1, 2, 3], ensure_rng(5))
    assert np.allclose(a, b)


def test_scored_normalizes():
    strategy = ScoredFitness(scores={1: 10.0, 2: 20.0, 3: 30.0})
    fitness = strategy.assign([1, 2, 3], ensure_rng(0))
    assert fitness[0] == pytest.approx(0.0)
    assert fitness[1] == pytest.approx(0.5)
    assert fitness[2] == pytest.approx(1.0)


def test_scored_default_for_unknown():
    strategy = ScoredFitness(scores={1: 0.0, 2: 1.0}, default=0.25)
    fitness = strategy.assign([1, 2, 99], ensure_rng(0))
    assert fitness[2] == pytest.approx(0.25)


def test_scored_constant_scores_give_half():
    strategy = ScoredFitness(scores={1: 5.0, 2: 5.0})
    fitness = strategy.assign([1, 2], ensure_rng(0))
    assert np.allclose(fitness, 0.5)


def test_scored_jitter_breaks_ties():
    strategy = ScoredFitness(scores={1: 5.0, 2: 5.0}, jitter=0.1)
    fitness = strategy.assign([1, 2], ensure_rng(0))
    assert fitness[0] != fitness[1]
    assert (fitness >= 0).all() and (fitness <= 1).all()


def test_scored_negative_jitter_rejected():
    strategy = ScoredFitness(scores={}, jitter=-0.1)
    with pytest.raises(ModelError):
        strategy.assign([1], ensure_rng(0))


def test_rank_biased_orders_by_rank():
    strategy = RankBiasedFitness(ranks={1: 0, 2: 50, 3: 99}, noise=0.0)
    fitness = strategy.assign([1, 2, 3], ensure_rng(0))
    assert fitness[0] > fitness[1] > fitness[2]


def test_rank_biased_invalid_params():
    with pytest.raises(ModelError):
        RankBiasedFitness(ranks={}, gamma=-1).assign([1], ensure_rng(0))
