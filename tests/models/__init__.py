"""Test package: models."""
