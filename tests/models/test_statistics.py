"""Tests for ensemble statistics."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateCategory, CopyMutateRandom
from repro.models.null_model import NullModel
from repro.models.params import CuisineSpec
from repro.models.statistics import summarize_ensemble
from repro.rng import ensure_rng, spawn


def _spec(n_recipes=150):
    categories = list(Category)[:3]
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(45)),
        categories=tuple(categories[i % 3] for i in range(45)),
        avg_recipe_size=5.0,
        n_recipes=n_recipes,
        phi=45 / n_recipes,
    )


def _runs(model, n=3, seed=0):
    spec = _spec()
    return [model.run(spec, seed=child) for child in spawn(ensure_rng(seed), n)]


def test_summarize_copy_mutate():
    stats = summarize_ensemble(_runs(CopyMutateRandom()))
    assert stats.model_name == "CM-R"
    assert stats.n_runs == 3
    assert stats.mean_recipes == 150
    assert 0 < stats.mutation_acceptance_rate < 1
    assert stats.curve_length_mean > 0
    assert 0 < stats.top_frequency_mean <= 1


def test_rates_partition_attempts():
    stats = summarize_ensemble(_runs(CopyMutateRandom()))
    total = (
        stats.mutation_acceptance_rate
        + stats.rejection_fitness_rate
        + stats.rejection_duplicate_rate
        + stats.skip_no_candidate_rate
    )
    assert total == pytest.approx(1.0, abs=1e-9)


def test_null_model_has_no_mutations():
    stats = summarize_ensemble(_runs(NullModel()))
    assert stats.mutation_acceptance_rate == 0.0
    assert stats.rejection_fitness_rate == 0.0


def test_cm_c_skip_counter_active():
    # With 3 categories over a 20-ingredient pool, same-category
    # candidates exist nearly always; force scarcity with a tiny pool.
    from repro.models.params import ModelParams

    model = CopyMutateCategory(params=ModelParams(
        initial_pool_size=2, mutations=6,
    ))
    stats = summarize_ensemble(_runs(model))
    # skip or duplicate rejections must occur with such a tiny pool.
    assert (
        stats.skip_no_candidate_rate + stats.rejection_duplicate_rate > 0
    )


def test_empty_runs_rejected():
    with pytest.raises(ModelError):
        summarize_ensemble([])


def test_mixed_models_rejected():
    runs = _runs(CopyMutateRandom(), n=1) + _runs(NullModel(), n=1)
    with pytest.raises(ModelError):
        summarize_ensemble(runs)
