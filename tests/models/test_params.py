"""Tests for ModelParams and CuisineSpec."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.lexicon.categories import Category
from repro.models.params import CuisineSpec, ModelParams


def test_defaults_match_paper():
    params = ModelParams()
    assert params.initial_pool_size == 20
    assert params.mutations == 4
    assert params.initial_recipes is None
    assert params.mixture_category_probability == 0.5


def test_derive_initial_recipes():
    params = ModelParams(initial_pool_size=20)
    # n = m / phi  (Sec. VI).
    assert params.derive_initial_recipes(0.1) == 200
    assert params.derive_initial_recipes(2.0) == 10
    assert params.derive_initial_recipes(100.0) == 1  # floor at 1


def test_derive_respects_override():
    params = ModelParams(initial_recipes=7)
    assert params.derive_initial_recipes(0.1) == 7


def test_derive_invalid_phi():
    with pytest.raises(ParameterError):
        ModelParams().derive_initial_recipes(0.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"initial_pool_size": 0},
        {"mutations": -1},
        {"initial_recipes": 0},
        {"duplicate_policy": "explode"},
        {"category_fallback": "panic"},
        {"mixture_category_probability": 1.5},
        {"engine": "quantum"},
    ],
)
def test_invalid_params_rejected(kwargs):
    with pytest.raises(ParameterError):
        ModelParams(**kwargs)


def test_with_mutations():
    params = ModelParams(mutations=4).with_mutations(6)
    assert params.mutations == 6
    assert params.initial_pool_size == 20


def test_engine_default_and_with_engine():
    assert ModelParams().engine == "vectorized"
    params = ModelParams().with_engine("reference")
    assert params.engine == "reference"
    assert params.initial_pool_size == 20


def test_spec_from_view(tiny_dataset, tiny_lexicon):
    spec = CuisineSpec.from_view(tiny_dataset.cuisine("ITA"), tiny_lexicon)
    assert spec.region_code == "ITA"
    assert spec.ingredient_ids == (0, 1, 2, 3, 4, 7, 8)
    assert spec.categories[0] is Category.VEGETABLE
    assert spec.n_recipes == 4
    assert spec.avg_recipe_size == pytest.approx(3.25)
    assert spec.phi == pytest.approx(7 / 4)
    assert spec.recipe_size == 3
    assert spec.n_ingredients == 7


def test_spec_validation():
    with pytest.raises(ParameterError):
        CuisineSpec("X", (), (), 5.0, 10, 0.5)
    with pytest.raises(ParameterError):
        CuisineSpec("X", (1,), (), 5.0, 10, 0.5)  # misaligned categories
    with pytest.raises(ParameterError):
        CuisineSpec("X", (1,), (Category.SPICE,), 0.0, 10, 0.5)
    with pytest.raises(ParameterError):
        CuisineSpec("X", (1,), (Category.SPICE,), 5.0, 0, 0.5)
    with pytest.raises(ParameterError):
        CuisineSpec("X", (1,), (Category.SPICE,), 5.0, 10, 0.0)


def test_spec_scaled(tiny_dataset, tiny_lexicon):
    spec = CuisineSpec.from_view(tiny_dataset.cuisine("ITA"), tiny_lexicon)
    scaled = spec.scaled(100)
    assert scaled.n_recipes == 100
    assert scaled.phi == spec.phi
    with pytest.raises(ParameterError):
        spec.scaled(0)
