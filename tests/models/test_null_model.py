"""Tests for the Null Model."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.lexicon.categories import Category
from repro.models.null_model import NullModel
from repro.models.params import CuisineSpec


def _spec(n_ingredients=40, n_recipes=100):
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple([Category.SPICE] * n_ingredients),
        avg_recipe_size=5.0,
        n_recipes=n_recipes,
        phi=n_ingredients / n_recipes,
    )


def test_reaches_target():
    run = NullModel().run(_spec(), seed=1)
    assert run.n_recipes == 100
    assert run.model_name == "NM"


def test_no_mutations_recorded():
    run = NullModel().run(_spec(), seed=1)
    assert run.trace.mutations_attempted == 0
    assert run.trace.mutations_accepted == 0


def test_recipe_sizes_fixed():
    spec = _spec()
    run = NullModel().run(spec, seed=2)
    assert all(len(t) == spec.recipe_size for t in run.transactions)


def test_pool_bookkeeping_still_runs():
    """'All the other steps remain as it is' — the pool still grows."""
    run = NullModel().run(_spec(), seed=3)
    assert run.trace.ingredients_added > 0
    assert run.final_pool_size > 20


def test_invalid_sample_from():
    with pytest.raises(ModelError):
        NullModel(sample_from="fridge")


def test_universe_sampling_variant():
    run = NullModel(sample_from="universe").run(_spec(), seed=4)
    assert run.n_recipes == 100
    # Universe sampling can use ingredients not yet in the pool.
    used = set().union(*run.transactions)
    assert len(used) > 20


def test_null_flatter_than_copy_mutate():
    """NM spreads usage far more evenly than CM — the Sec. VI mechanism.

    Compare the max single-ingredient relative frequency: copying
    concentrates mass on early popular ingredients, uniform sampling
    does not.
    """
    from collections import Counter

    from repro.models.copy_mutate import CopyMutateRandom

    spec = _spec(n_ingredients=60, n_recipes=400)
    nm = NullModel().run(spec, seed=5)
    cm = CopyMutateRandom().run(spec, seed=5)

    def max_frequency(run):
        counts = Counter()
        for transaction in run.transactions:
            counts.update(transaction)
        return max(counts.values()) / run.n_recipes

    assert max_frequency(cm) > max_frequency(nm)


def test_deterministic():
    a = NullModel().run(_spec(), seed=6)
    b = NullModel().run(_spec(), seed=6)
    assert a.transactions == b.transactions
