"""Tests for EvolutionState, incl. hypothesis invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.lexicon.categories import Category
from repro.models.params import CuisineSpec
from repro.models.state import EvolutionState
from repro.rng import ensure_rng


def _spec(n_ingredients=30, n_recipes=50, avg_size=5.0, phi=None):
    categories = [Category.VEGETABLE, Category.SPICE, Category.DAIRY]
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple(
            categories[i % len(categories)] for i in range(n_ingredients)
        ),
        avg_recipe_size=avg_size,
        n_recipes=n_recipes,
        phi=phi if phi is not None else n_ingredients / n_recipes,
    )


def _state(spec=None, pool=10, recipes=5, seed=0):
    spec = spec or _spec()
    rng = ensure_rng(seed)
    fitness = rng.uniform(size=len(spec.ingredient_ids))
    return EvolutionState(
        spec=spec,
        fitness=fitness,
        rng=rng,
        initial_pool_size=pool,
        initial_recipes=recipes,
    )


def test_initial_pool_and_recipes():
    state = _state(pool=10, recipes=5)
    assert state.m == 10
    assert state.n == 5
    assert all(len(recipe) == 5 for recipe in state.recipes)


def test_pool_and_remaining_partition_universe():
    state = _state()
    pool = set(state.pool)
    remaining = set(state.remaining_universe)
    assert pool & remaining == set()
    assert pool | remaining == set(range(30))


def test_initial_recipes_use_pool_only():
    state = _state()
    pool = set(state.pool)
    for recipe in state.recipes:
        assert set(recipe) <= pool
        assert len(set(recipe)) == len(recipe)  # distinct ingredients


def test_pool_ratio():
    state = _state(pool=10, recipes=5)
    assert state.pool_ratio() == pytest.approx(2.0)


def test_grow_pool_moves_ingredient():
    state = _state()
    before_pool = set(state.pool)
    before_remaining = set(state.remaining_universe)
    moved = state.grow_pool()
    assert moved in before_remaining
    assert moved not in before_pool
    assert moved in set(state.pool)
    assert state.m == 11
    assert state.trace.ingredients_added == 1


def test_grow_pool_exhausted_raises():
    spec = _spec(n_ingredients=5)
    state = _state(spec=spec, pool=5, recipes=2)
    assert not state.can_grow_pool()
    with pytest.raises(ModelError):
        state.grow_pool()


def test_category_restricted_choice():
    state = _state(seed=3)
    for _ in range(20):
        candidate = state.random_pool_ingredient_of_category(Category.SPICE)
        if candidate is None:
            continue
        assert state.category_of(candidate) is Category.SPICE
        assert candidate in set(state.pool)


def test_category_choice_empty_category():
    # Single-ingredient pool: most categories are absent.
    spec = _spec(n_ingredients=3)
    state = EvolutionState(
        spec=spec,
        fitness=np.array([0.1, 0.2, 0.3]),
        rng=ensure_rng(0),
        initial_pool_size=1,
        initial_recipes=1,
    )
    present = state.category_of(state.pool[0])
    for category in (Category.VEGETABLE, Category.SPICE, Category.DAIRY):
        candidate = state.random_pool_ingredient_of_category(category)
        if category is present:
            assert candidate is not None
        else:
            assert candidate is None


def test_fitness_lookup():
    state = _state()
    for ingredient_id in state.pool[:5]:
        assert 0.0 <= state.fitness_of(ingredient_id) <= 1.0
    with pytest.raises(ModelError):
        state.fitness_of(999)
    with pytest.raises(ModelError):
        state.category_of(999)


def test_add_recipe():
    state = _state()
    state.add_recipe([1, 2, 3])
    assert state.n == 6
    assert state.trace.recipes_added == 1
    with pytest.raises(ModelError):
        state.add_recipe([])


def test_misaligned_fitness_rejected():
    spec = _spec()
    with pytest.raises(ModelError):
        EvolutionState(
            spec=spec,
            fitness=np.zeros(3),
            rng=ensure_rng(0),
            initial_pool_size=5,
            initial_recipes=2,
        )


def test_transactions():
    state = _state()
    transactions = state.transactions()
    assert len(transactions) == state.n
    assert all(isinstance(t, frozenset) for t in transactions)


@given(
    st.integers(5, 60),
    st.integers(1, 20),
    st.integers(1, 10),
    st.integers(0, 2**31),
)
@settings(max_examples=60, deadline=None)
def test_invariants_after_random_operations(
    n_ingredients, pool_size, initial_recipes, seed
):
    """Pool ∪ remaining == universe, sizes consistent, after random ops."""
    spec = _spec(n_ingredients=n_ingredients, n_recipes=100)
    rng = ensure_rng(seed)
    state = EvolutionState(
        spec=spec,
        fitness=rng.uniform(size=n_ingredients),
        rng=rng,
        initial_pool_size=min(pool_size, n_ingredients),
        initial_recipes=initial_recipes,
    )
    for _ in range(30):
        if rng.random() < 0.5 and state.can_grow_pool():
            state.grow_pool()
        else:
            size = min(spec.recipe_size, state.m)
            members = list(state.pool)[:size]
            state.add_recipe(members)
    pool = set(state.pool)
    remaining = set(state.remaining_universe)
    assert pool & remaining == set()
    assert pool | remaining == set(range(n_ingredients))
    assert state.m == len(pool)
    assert state.n == len(state.recipes)
    assert state.m + len(remaining) == n_ingredients
