"""Tests for the copy-mutate variants and the shared Algorithm 1 loop."""

from __future__ import annotations

import pytest

from repro.lexicon.categories import Category
from repro.models.copy_mutate import (
    CopyMutateCategory,
    CopyMutateMixture,
    CopyMutateRandom,
)
from repro.models.fitness import ScoredFitness
from repro.models.params import CuisineSpec, ModelParams


def _spec(n_ingredients=40, n_recipes=120, avg_size=6.0):
    categories = list(Category)[:4]
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple(
            categories[i % 4] for i in range(n_ingredients)
        ),
        avg_recipe_size=avg_size,
        n_recipes=n_recipes,
        phi=n_ingredients / n_recipes,
    )


@pytest.mark.parametrize(
    "model_cls", [CopyMutateRandom, CopyMutateCategory, CopyMutateMixture]
)
def test_run_reaches_target(model_cls):
    spec = _spec()
    run = model_cls().run(spec, seed=1)
    assert run.n_recipes == spec.n_recipes
    assert run.model_name == model_cls.name
    assert run.region_code == "TST"


@pytest.mark.parametrize(
    "model_cls", [CopyMutateRandom, CopyMutateCategory, CopyMutateMixture]
)
def test_recipe_sizes_preserved(model_cls):
    """Fixed-size mutation never changes recipe length."""
    spec = _spec()
    run = model_cls().run(spec, seed=2)
    for transaction in run.transactions:
        assert len(transaction) == spec.recipe_size


def test_default_mutation_counts():
    assert CopyMutateRandom().params.mutations == 4
    assert CopyMutateCategory().params.mutations == 6
    assert CopyMutateMixture().params.mutations == 6


def test_deterministic_runs():
    spec = _spec()
    a = CopyMutateRandom().run(spec, seed=9)
    b = CopyMutateRandom().run(spec, seed=9)
    assert a.transactions == b.transactions


def test_different_seeds_differ():
    spec = _spec()
    a = CopyMutateRandom().run(spec, seed=9)
    b = CopyMutateRandom().run(spec, seed=10)
    assert a.transactions != b.transactions


def test_pool_grows_toward_phi():
    """The ∂ >= φ alternation drives the pool to ~φ·N ingredients."""
    spec = _spec(n_ingredients=40, n_recipes=120)
    run = CopyMutateRandom().run(spec, seed=3)
    expected = spec.phi * spec.n_recipes  # = 40
    assert run.final_pool_size >= 0.8 * expected


def test_initial_recipes_formula():
    spec = _spec(n_ingredients=40, n_recipes=120)
    run = CopyMutateRandom().run(spec, seed=4)
    # n0 = m / phi = 20 / (1/3) = 60.
    assert run.initial_recipes == 60


def test_mutations_respect_fitness_monotonicity():
    """With deterministic fitness, replacements always increase fitness.

    Give ingredient 0 the max score: it can never be replaced once in a
    recipe, so its frequency can only grow through copies.
    """
    spec = _spec(n_ingredients=30, n_recipes=300, avg_size=3.0)
    fitness = ScoredFitness(scores={i: float(i == 0) for i in range(30)})
    run = CopyMutateRandom(fitness=fitness).run(spec, seed=5)
    trace = run.trace
    assert trace.mutations_attempted > 0
    assert trace.mutations_accepted + trace.mutations_rejected_fitness + \
        trace.mutations_rejected_duplicate + \
        trace.mutations_skipped_no_candidate <= trace.mutations_attempted


def test_cm_c_respects_categories():
    """CM-C replacements stay in the victim's category.

    With four categories striped over ids mod 4, a recipe evolved by CM-C
    keeps the *multiset of categories* of its mother recipe; since all
    initial recipes draw from the pool and mutation preserves category,
    every recipe's category multiset is reachable from an initial one.
    We verify the stronger per-mutation property by instrumenting the
    trace: no accepted mutation may change the recipe's category vector.
    """
    spec = _spec(n_ingredients=40, n_recipes=200, avg_size=6.0)
    run = CopyMutateCategory().run(spec, seed=6)

    def category_vector(transaction):
        counts = [0, 0, 0, 0]
        for ingredient_id in transaction:
            counts[ingredient_id % 4] += 1
        return tuple(counts)

    vectors = {category_vector(t) for t in run.transactions}
    initial_vectors = {
        category_vector(t) for t in run.transactions[: run.initial_recipes]
    }
    # Category-preserving mutation means no new category vectors appear
    # beyond those of the initial pool.
    assert vectors == initial_vectors


def test_cm_m_mixture_probability_extremes():
    spec = _spec()
    pure_category = CopyMutateMixture(
        params=ModelParams(
            mutations=6, mixture_category_probability=1.0
        )
    ).run(spec, seed=7)
    pure_random = CopyMutateMixture(
        params=ModelParams(
            mutations=6, mixture_category_probability=0.0
        )
    ).run(spec, seed=7)
    assert pure_category.transactions != pure_random.transactions


def test_duplicate_policy_allow_shrinks_recipes():
    """Under duplicate_policy='allow', a replacement already present in
    the recipe collapses when the recipe is read as a set."""
    spec = _spec(n_ingredients=24, n_recipes=600, avg_size=6.0)
    run_allow = CopyMutateRandom(
        params=ModelParams(mutations=8, duplicate_policy="allow")
    ).run(spec, seed=11)
    run_skip = CopyMutateRandom(
        params=ModelParams(mutations=8, duplicate_policy="skip")
    ).run(spec, seed=11)
    sizes_allow = {len(t) for t in run_allow.transactions}
    sizes_skip = {len(t) for t in run_skip.transactions}
    # Skip policy preserves sizes exactly; allow policy produces some
    # shrunken recipes on a small, collision-prone universe.
    assert sizes_skip == {spec.recipe_size}
    assert min(sizes_allow) < spec.recipe_size


def test_small_universe_does_not_hang():
    spec = CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(5)),
        categories=tuple([Category.SPICE] * 5),
        avg_recipe_size=3.0,
        n_recipes=30,
        phi=5 / 30,
    )
    run = CopyMutateRandom().run(spec, seed=8)
    assert run.n_recipes == 30


def test_n0_capped_at_target():
    # phi large -> n0 tiny; n0 must never exceed N.
    spec = CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(30)),
        categories=tuple([Category.SPICE] * 30),
        avg_recipe_size=3.0,
        n_recipes=2,
        phi=15.0,
    )
    run = CopyMutateRandom().run(spec, seed=0)
    assert run.n_recipes == 2
    assert run.initial_recipes <= 2
