"""Tests for the island-model migration engine (DESIGN.md §10)."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, ParameterError
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateCategory, CopyMutateRandom
from repro.models.islands import (
    ISLANDS_STREAM_VERSION,
    IslandSimulation,
    MigrationEdge,
    MigrationTopology,
    island_seed_streams,
)
from repro.models.null_model import NullModel
from repro.models.params import CuisineSpec


def _spec(code="A", n_ingredients=40, n_recipes=100, avg_recipe_size=6.0):
    categories = list(Category)[:4]
    return CuisineSpec(
        region_code=code,
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple(categories[i % 4] for i in range(n_ingredients)),
        avg_recipe_size=avg_recipe_size,
        n_recipes=n_recipes,
        phi=n_ingredients / n_recipes,
    )


def _run_fields(run):
    """The comparable payload of a run (everything but the label)."""
    return (
        run.transactions,
        run.final_pool_size,
        run.initial_recipes,
        dataclasses.asdict(run.trace),
        run.history,
    )


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


def test_ring_topology_edges():
    topology = MigrationTopology.ring(("A", "B", "C"), 0.1)
    pairs = {(e.donor, e.borrower) for e in topology.edges}
    assert pairs == {("A", "B"), ("B", "C"), ("C", "A")}


def test_bidirectional_ring_dedupes_two_islands():
    topology = MigrationTopology.ring(("A", "B"), 0.1, bidirectional=True)
    pairs = {(e.donor, e.borrower) for e in topology.edges}
    assert pairs == {("A", "B"), ("B", "A")}


def test_star_topology_edges():
    topology = MigrationTopology.star("H", ("A", "B"), 0.2)
    pairs = {(e.donor, e.borrower) for e in topology.edges}
    assert pairs == {("H", "A"), ("A", "H"), ("H", "B"), ("B", "H")}


def test_full_mesh_topology_edges():
    topology = MigrationTopology.full_mesh(("A", "B", "C"), 0.05)
    assert len(topology.edges) == 6
    assert all(e.rate == 0.05 for e in topology.edges)


def test_custom_topology_and_accessors():
    topology = MigrationTopology.custom(
        [("A", "B", 0.3), ("C", "B", 0.2), ("B", "A", 0.1)]
    )
    assert topology.codes() == {"A", "B", "C"}
    inbound_b = topology.inbound("B")
    assert [(e.donor, e.rate) for e in inbound_b] == [("A", 0.3), ("C", 0.2)]
    restricted = topology.restricted_to(["A", "B"])
    assert {(e.donor, e.borrower) for e in restricted.edges} == {
        ("A", "B"), ("B", "A")
    }


def test_topology_normalizes_edge_order():
    edges = [MigrationEdge("C", "B", 0.1), MigrationEdge("A", "B", 0.1)]
    assert (
        MigrationTopology(tuple(edges)).edges
        == MigrationTopology(tuple(reversed(edges))).edges
    )


def test_topology_validation():
    with pytest.raises(ParameterError):
        MigrationEdge("A", "A", 0.1)  # self-loop
    with pytest.raises(ParameterError):
        MigrationEdge("A", "B", 1.5)  # rate out of range
    with pytest.raises(ParameterError):
        MigrationTopology(
            (MigrationEdge("A", "B", 0.1), MigrationEdge("A", "B", 0.2))
        )  # duplicate pair
    with pytest.raises(ParameterError):
        MigrationTopology(
            (MigrationEdge("A", "C", 0.6), MigrationEdge("B", "C", 0.6))
        )  # inbound sum > 1
    with pytest.raises(ParameterError):
        MigrationTopology.ring(("A",), 0.1)
    with pytest.raises(ParameterError):
        MigrationTopology.star("H", (), 0.1)


# ---------------------------------------------------------------------------
# Simulation validation
# ---------------------------------------------------------------------------


def test_simulation_rejects_non_copy_mutate_inner():
    with pytest.raises(ModelError):
        IslandSimulation(NullModel(), [_spec("A")])


def test_simulation_rejects_duplicate_codes():
    with pytest.raises(ModelError):
        IslandSimulation(CopyMutateRandom(), [_spec("A"), _spec("A")])


def test_simulation_rejects_unknown_topology_codes():
    with pytest.raises(ModelError):
        IslandSimulation(
            CopyMutateRandom(),
            [_spec("A"), _spec("B")],
            MigrationTopology.custom([("A", "Z", 0.1)]),
        )


def test_simulation_rejects_unknown_import_policy():
    with pytest.raises(ParameterError):
        IslandSimulation(
            CopyMutateRandom(), [_spec("A")], import_policy="quarantine"
        )


# ---------------------------------------------------------------------------
# Determinism contract
# ---------------------------------------------------------------------------


def test_seed_streams_depend_only_on_master_and_code():
    assert island_seed_streams(7, "A") == island_seed_streams(7, "A")
    assert island_seed_streams(7, "A") != island_seed_streams(7, "B")
    assert island_seed_streams(7, "A") != island_seed_streams(8, "A")


def test_rate_zero_bit_identical_to_isolated_runs():
    """An island with zero inbound rate replays its dynamics stream
    exactly like an isolated reference-engine run of the same spec."""
    model = CopyMutateRandom()
    specs = [_spec("A"), _spec("B", n_recipes=60)]
    simulation = IslandSimulation(
        model, specs, MigrationTopology.full_mesh(("A", "B"), 0.0)
    )
    outcome = simulation.run(seed=42, record_history=True)
    assert sum(outcome.borrow_events.values()) == 0
    for spec in specs:
        dynamics_seed, _ = island_seed_streams(42, spec.region_code)
        isolated = model.run(
            spec, seed=dynamics_seed, record_history=True, engine="reference"
        )
        island_run = outcome.runs[spec.region_code]
        assert _run_fields(island_run) == _run_fields(isolated)


def test_borrows_only_along_edges():
    topology = MigrationTopology.custom([("A", "B", 0.5)])
    simulation = IslandSimulation(
        CopyMutateRandom(), [_spec("A"), _spec("B"), _spec("C")], topology
    )
    outcome = simulation.run(seed=9)
    assert outcome.borrow_events["A"] == 0
    assert outcome.borrow_events["C"] == 0
    assert outcome.borrow_events["B"] > 0
    assert set(outcome.edge_borrows) == {("A", "B")}


def test_removing_an_island_leaves_others_byte_identical():
    """Adding/removing islands must not perturb the others' streams:
    with migration only between A and B, dropping C changes nothing."""
    model = CopyMutateRandom()
    topology = MigrationTopology.custom([("A", "B", 0.3), ("B", "A", 0.3)])
    with_c = IslandSimulation(
        model, [_spec("A"), _spec("B"), _spec("C")], topology
    ).run(seed=13, record_history=True)
    without_c = IslandSimulation(
        model, [_spec("A"), _spec("B")], topology
    ).run(seed=13, record_history=True)
    for code in ("A", "B"):
        assert _run_fields(with_c.runs[code]) == _run_fields(
            without_c.runs[code]
        )
        assert with_c.pools[code] == without_c.pools[code]


def test_same_seed_reproduces_and_seeds_differ():
    simulation = IslandSimulation(
        CopyMutateRandom(),
        [_spec("A"), _spec("B")],
        MigrationTopology.full_mesh(("A", "B"), 0.2),
    )
    first = simulation.run(seed=21)
    second = simulation.run(seed=21)
    other = simulation.run(seed=22)
    assert _run_fields(first.runs["A"]) == _run_fields(second.runs["A"])
    assert _run_fields(first.runs["A"]) != _run_fields(other.runs["A"])


# ---------------------------------------------------------------------------
# Borrow semantics
# ---------------------------------------------------------------------------


def test_borrowing_happens_and_counts_agree():
    simulation = IslandSimulation(
        CopyMutateRandom(),
        [_spec("A"), _spec("B")],
        MigrationTopology.full_mesh(("A", "B"), 0.4),
    )
    outcome = simulation.run(seed=3)
    assert sum(outcome.borrow_events.values()) > 0
    for code, run in outcome.runs.items():
        assert run.trace.recipes_borrowed == outcome.borrow_events[code]
        assert run.model_name == "ISL(CM-R)"
    assert (
        sum(outcome.edge_borrows.values())
        == sum(outcome.borrow_events.values())
    )


def test_transactions_stay_inside_pool_under_migration():
    """The ∂-vs-φ invariant: every transaction is a subset of its
    island's final pool, adopt or filter policy alike."""
    spec_a = _spec("A", n_ingredients=30)
    spec_b = CuisineSpec(
        region_code="B",
        ingredient_ids=tuple(range(20, 60)),
        categories=tuple(list(Category)[:4][i % 4] for i in range(40)),
        avg_recipe_size=6.0,
        n_recipes=80,
        phi=0.5,
    )
    for policy in ("adopt", "filter"):
        simulation = IslandSimulation(
            CopyMutateRandom(),
            [spec_a, spec_b],
            MigrationTopology.full_mesh(("A", "B"), 0.3),
            import_policy=policy,
        )
        outcome = simulation.run(seed=17)
        assert sum(outcome.borrow_events.values()) > 0
        for code, run in outcome.runs.items():
            pool = set(outcome.pools[code])
            for transaction in run.transactions:
                assert set(transaction) <= pool


def test_category_inner_model_runs():
    simulation = IslandSimulation(
        CopyMutateCategory(),
        [_spec("A"), _spec("B")],
        MigrationTopology.ring(("A", "B"), 0.2),
    )
    outcome = simulation.run(seed=5)
    assert outcome.runs["A"].n_recipes == 100
    assert outcome.runs["A"].model_name == "ISL(CM-C)"


# ---------------------------------------------------------------------------
# Member models
# ---------------------------------------------------------------------------


def test_member_model_matches_whole_archipelago():
    simulation = IslandSimulation(
        CopyMutateRandom(),
        [_spec("A"), _spec("B")],
        MigrationTopology.full_mesh(("A", "B"), 0.2),
    )
    outcome = simulation.run(seed=31)
    member = simulation.member("B")
    run = member.run(member.spec, seed=31)
    assert _run_fields(run) == _run_fields(outcome.runs["B"])


def test_member_model_contract_and_validation():
    simulation = IslandSimulation(CopyMutateRandom(), [_spec("A"), _spec("B")])
    member = simulation.member(0)
    assert member.resolve_engine("vectorized") == "reference"
    assert member.engine_contract() == {
        "engine": "islands",
        "stream_version": ISLANDS_STREAM_VERSION,
    }
    with pytest.raises(ModelError):
        member.run(_spec("C"), seed=0)  # foreign spec
    with pytest.raises(ModelError):
        simulation.member(5)
    with pytest.raises(ModelError):
        simulation.member("Z")


# ---------------------------------------------------------------------------
# Property test: random topologies never stall or overshoot
# ---------------------------------------------------------------------------


@st.composite
def _topologies(draw):
    codes = ("A", "B", "C", "D")[: draw(st.integers(2, 4))]
    pairs = [
        (donor, borrower)
        for donor in codes
        for borrower in codes
        if donor != borrower
    ]
    max_rate = 1.0 / (len(codes) - 1)
    edges = []
    for donor, borrower in pairs:
        if draw(st.booleans()):
            rate = draw(st.floats(0.0, max_rate, allow_nan=False))
            edges.append((donor, borrower, rate))
    return codes, MigrationTopology.custom(edges)


@settings(max_examples=15, deadline=None)
@given(data=_topologies(), seed=st.integers(0, 2**31 - 1))
def test_random_topologies_complete_exactly(data, seed):
    codes, topology = data
    specs = [
        _spec(code, n_ingredients=12, n_recipes=30, avg_recipe_size=4.0)
        for code in codes
    ]
    simulation = IslandSimulation(CopyMutateRandom(), specs, topology)
    outcome = simulation.run(seed=seed)
    for code in codes:
        run = outcome.runs[code]
        # No stall, and never more recipes than the target.
        assert run.n_recipes == 30
        pool = set(outcome.pools[code])
        for transaction in run.transactions:
            assert set(transaction) <= pool
