"""Tests for the Eq. 2 distance, incl. metric axioms via hypothesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mae import curve_distance, pairwise_distance_matrix
from repro.analysis.rank_frequency import RankFrequencyCurve
from repro.errors import MetricError


def _curve(label, values):
    return RankFrequencyCurve(label, np.array(sorted(values, reverse=True)))


def test_absolute_hand_computed():
    a = _curve("a", [0.5, 0.3])
    b = _curve("b", [0.4, 0.1])
    assert curve_distance(a, b) == pytest.approx((0.1 + 0.2) / 2)


def test_squared_hand_computed():
    a = _curve("a", [0.5, 0.3])
    b = _curve("b", [0.4, 0.1])
    assert curve_distance(a, b, kind="squared") == pytest.approx(
        (0.01 + 0.04) / 2
    )


def test_truncates_to_common_rank():
    a = _curve("a", [0.5, 0.3, 0.1])
    b = _curve("b", [0.5])
    assert curve_distance(a, b) == pytest.approx(0.0)


def test_unknown_kind():
    a = _curve("a", [0.5])
    with pytest.raises(MetricError):
        curve_distance(a, a, kind="chebyshev")


def test_empty_curve_rejected():
    a = _curve("a", [0.5])
    empty = RankFrequencyCurve("e", np.array([]))
    with pytest.raises(MetricError):
        curve_distance(a, empty)


curve_values = st.lists(st.floats(0.0, 1.0), min_size=1, max_size=30).map(
    lambda xs: sorted(xs, reverse=True)
)


@given(curve_values, curve_values)
@settings(max_examples=100)
def test_symmetry(values_a, values_b):
    a = _curve("a", values_a)
    b = _curve("b", values_b)
    assert curve_distance(a, b) == pytest.approx(curve_distance(b, a))
    assert curve_distance(a, b, "squared") == pytest.approx(
        curve_distance(b, a, "squared")
    )


@given(curve_values)
@settings(max_examples=100)
def test_identity(values):
    a = _curve("a", values)
    b = _curve("b", values)
    assert curve_distance(a, b) == pytest.approx(0.0)


@given(curve_values, curve_values)
@settings(max_examples=100)
def test_nonnegative_and_bounded(values_a, values_b):
    a = _curve("a", values_a)
    b = _curve("b", values_b)
    d = curve_distance(a, b)
    assert 0.0 <= d <= 1.0


def test_pairwise_matrix_properties():
    curves = [
        _curve("x", [0.5, 0.3]),
        _curve("y", [0.4, 0.2]),
        _curve("z", [0.1]),
    ]
    matrix = pairwise_distance_matrix(curves)
    assert matrix.labels == ("x", "y", "z")
    assert np.allclose(matrix.matrix, matrix.matrix.T)
    assert np.allclose(np.diag(matrix.matrix), 0.0)
    assert matrix.distance("x", "y") == pytest.approx(0.1)


def test_pairwise_average():
    curves = [_curve("x", [0.5]), _curve("y", [0.3]), _curve("z", [0.1])]
    matrix = pairwise_distance_matrix(curves)
    assert matrix.average() == pytest.approx((0.2 + 0.4 + 0.2) / 3)


def test_most_distinct():
    curves = [_curve("x", [0.5]), _curve("y", [0.5]), _curve("far", [0.0])]
    matrix = pairwise_distance_matrix(curves)
    assert matrix.most_distinct(1)[0][0] == "far"


def test_pairwise_needs_two():
    with pytest.raises(MetricError):
        pairwise_distance_matrix([_curve("x", [0.5])])


def test_pairwise_unique_labels():
    with pytest.raises(MetricError):
        pairwise_distance_matrix([_curve("x", [0.5]), _curve("x", [0.4])])


def test_unknown_label_lookup():
    matrix = pairwise_distance_matrix([_curve("x", [0.5]), _curve("y", [0.3])])
    with pytest.raises(MetricError):
        matrix.distance("x", "nope")
