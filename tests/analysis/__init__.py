"""Test package: analysis."""
