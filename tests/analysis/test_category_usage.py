"""Tests for Fig. 2 category usage statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.category_usage import (
    BoxplotStats,
    category_boxplots,
    category_usage_matrix,
    dominant_categories,
)
from repro.errors import AnalysisError
from repro.lexicon.categories import Category


def test_usage_matrix_hand_computed(tiny_dataset, tiny_lexicon):
    matrix = category_usage_matrix(tiny_dataset, tiny_lexicon)
    # ITA recipes: (0,1,2,7) veg=3, (0,2,7) veg=2, (0,1,7) veg=2,
    # (3,4,8) veg=0 -> mean 7/4.
    assert matrix["ITA"][Category.VEGETABLE] == pytest.approx(7 / 4)
    # ITA herb: basil in 3 of 4 recipes.
    assert matrix["ITA"][Category.HERB] == pytest.approx(3 / 4)
    # KOR spice: (5), (5,6), (5,6), (5,6) -> 7/4.
    assert matrix["KOR"][Category.SPICE] == pytest.approx(7 / 4)


def test_usage_matrix_dense(tiny_dataset, tiny_lexicon):
    matrix = category_usage_matrix(tiny_dataset, tiny_lexicon)
    for row in matrix.values():
        assert set(row) == set(Category)


def test_boxplots_cover_all_categories(tiny_dataset, tiny_lexicon):
    boxplots = category_boxplots(tiny_dataset, tiny_lexicon)
    assert set(boxplots) == set(Category)


def test_boxplot_stats_from_values():
    values = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
    stats = BoxplotStats.from_values(Category.SPICE, values)
    assert stats.median == pytest.approx(3.0)
    assert stats.q1 == pytest.approx(2.0)
    assert stats.q3 == pytest.approx(4.0)
    assert 100.0 in stats.outliers
    assert stats.whisker_high <= 4.0 + 1.5 * stats.q3


def test_boxplot_empty_raises():
    with pytest.raises(AnalysisError):
        BoxplotStats.from_values(Category.SPICE, np.array([]))


def test_dominant_categories_tiny(tiny_dataset, tiny_lexicon):
    dominant = dominant_categories(tiny_dataset, tiny_lexicon, k=2)
    assert Category.VEGETABLE in dominant or Category.SPICE in dominant


def test_paper_narrative_on_world_corpus(world_corpus, lexicon):
    """INSC/AFR use more spice than JPN/ANZ/IRL; SCND/FRA/IRL more dairy
    than JPN/SEA/THA/KOR (Sec. III)."""
    matrix = category_usage_matrix(world_corpus, lexicon)

    def mean_usage(codes, category):
        return np.mean([matrix[c][category] for c in codes])

    assert mean_usage(("INSC", "AFR"), Category.SPICE) > mean_usage(
        ("JPN", "ANZ", "IRL"), Category.SPICE
    )
    assert mean_usage(("SCND", "FRA", "IRL"), Category.DAIRY) > mean_usage(
        ("JPN", "SEA", "THA", "KOR"), Category.DAIRY
    )


def test_dominant_seven_on_world_corpus(world_corpus, lexicon):
    """The paper's seven dominant categories should lead the medians."""
    dominant = set(dominant_categories(world_corpus, lexicon, k=7))
    expected = {
        Category.VEGETABLE, Category.ADDITIVE, Category.SPICE,
        Category.DAIRY, Category.HERB, Category.PLANT, Category.FRUIT,
    }
    # Allow two slots of slack: the synthetic corpus approximates Fig. 2.
    assert len(dominant & expected) >= 5
