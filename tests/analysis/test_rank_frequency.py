"""Tests for rank-frequency curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.itemsets import eclat
from repro.analysis.rank_frequency import (
    RankFrequencyCurve,
    average_curves,
    curve_from_counts,
    curve_from_mining,
)
from repro.errors import AnalysisError


def test_curve_requires_descending():
    with pytest.raises(AnalysisError):
        RankFrequencyCurve("x", np.array([0.1, 0.5]))


def test_curve_accepts_descending():
    curve = RankFrequencyCurve("x", np.array([0.5, 0.3, 0.3, 0.1]))
    assert len(curve) == 4
    assert curve.max_rank == 4


def test_frequency_at_one_based():
    curve = RankFrequencyCurve("x", np.array([0.5, 0.3]))
    assert curve.frequency_at(1) == pytest.approx(0.5)
    assert curve.frequency_at(2) == pytest.approx(0.3)
    with pytest.raises(AnalysisError):
        curve.frequency_at(0)
    with pytest.raises(AnalysisError):
        curve.frequency_at(3)


def test_truncate():
    curve = RankFrequencyCurve("x", np.array([0.5, 0.3, 0.2]))
    assert len(curve.truncate(2)) == 2
    assert len(curve.truncate(10)) == 3
    with pytest.raises(AnalysisError):
        curve.truncate(-1)


def test_as_series():
    curve = RankFrequencyCurve("x", np.array([0.5, 0.3]))
    assert curve.as_series() == [(1, 0.5), (2, 0.3)]


def test_curve_from_mining():
    result = eclat([{1, 2}, {1, 2}, {1}, {3}], min_support=0.25)
    curve = curve_from_mining(result, "test")
    assert curve.frequencies[0] == pytest.approx(0.75)  # item 1
    assert curve.label == "test"


def test_curve_from_counts():
    curve = curve_from_counts([5, 10, 1], n_transactions=10, label="c")
    assert list(curve.frequencies) == [1.0, 0.5, 0.1]
    with pytest.raises(AnalysisError):
        curve_from_counts([1], 0, "c")


def test_average_curves_rank_aligned():
    a = RankFrequencyCurve("a", np.array([1.0, 0.5]))
    b = RankFrequencyCurve("b", np.array([0.8, 0.4, 0.2]))
    mean = average_curves([a, b], "mean")
    assert mean.frequencies[0] == pytest.approx(0.9)
    assert mean.frequencies[1] == pytest.approx(0.45)
    # Rank 3 present only in b; monotone restoration caps it at rank 2.
    assert mean.frequencies[2] <= mean.frequencies[1]
    assert mean.label == "mean"


def test_average_curves_empty_raises():
    with pytest.raises(AnalysisError):
        average_curves([], "x")


def test_average_of_empty_curves():
    a = RankFrequencyCurve("a", np.array([]))
    mean = average_curves([a, a], "m")
    assert len(mean) == 0


@given(
    st.lists(
        st.lists(
            st.floats(0.001, 1.0), min_size=0, max_size=20
        ).map(lambda xs: sorted(xs, reverse=True)),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=60)
def test_average_always_monotone(curve_values):
    curves = [
        RankFrequencyCurve(f"c{i}", np.array(values))
        for i, values in enumerate(curve_values)
    ]
    mean = average_curves(curves, "mean")
    diffs = np.diff(mean.frequencies)
    assert (diffs <= 1e-12).all()
