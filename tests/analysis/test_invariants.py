"""Tests for the Fig. 3 invariance analysis."""

from __future__ import annotations

import pytest

from repro.analysis.invariants import analyze_invariants, combination_curve
from repro.config import MiningConfig
from repro.errors import AnalysisError


def test_combination_curve_levels(small_corpus, lexicon):
    ing_curve, ing_result = combination_curve(small_corpus, "ITA", lexicon)
    cat_curve, cat_result = combination_curve(
        small_corpus, "ITA", lexicon, level="category"
    )
    assert len(ing_curve) == len(ing_result)
    assert len(cat_curve) == len(cat_result)
    # Category alphabet is tiny, so category curves are much longer per
    # item (more dense combos) but over fewer items.
    assert ing_curve.frequencies[0] <= 1.0


def test_unknown_level_raises(small_corpus, lexicon):
    with pytest.raises(AnalysisError):
        combination_curve(small_corpus, "ITA", lexicon, level="molecule")


def test_analysis_structure(small_corpus, lexicon):
    analysis = analyze_invariants(small_corpus, lexicon)
    assert set(analysis.curves) == {"ITA", "KOR", "MEX"}
    assert analysis.level == "ingredient"
    assert analysis.aggregate.label == "ALL"
    assert analysis.distances.labels == ("ITA", "KOR", "MEX")
    assert analysis.average_distance > 0


def test_single_cuisine_rejected(small_corpus, lexicon):
    ita_only = small_corpus.subset(["ITA"])
    with pytest.raises(AnalysisError):
        analyze_invariants(ita_only, lexicon)


def test_homogeneity_of_synthetic_curves(world_corpus, lexicon):
    """The paper's headline: cross-cuisine curves are nearly identical.

    At tiny scale the distances are noisier than the paper's 0.035, but
    must stay well below the null-model regime (~0.3+).
    """
    analysis = analyze_invariants(world_corpus, lexicon)
    assert analysis.average_distance < 0.12


def test_mining_config_respected(small_corpus, lexicon):
    loose = analyze_invariants(
        small_corpus, lexicon,
        mining=MiningConfig(min_support=0.02),
    )
    strict = analyze_invariants(
        small_corpus, lexicon,
        mining=MiningConfig(min_support=0.2),
    )
    for code in loose.curves:
        assert len(loose.curves[code]) >= len(strict.curves[code])


def test_category_level_distances(small_corpus, lexicon):
    analysis = analyze_invariants(small_corpus, lexicon, level="category")
    assert analysis.level == "category"
    assert analysis.average_distance >= 0


def test_cached_mining_result_restamps_algorithm(
    small_corpus, lexicon, tmp_path
):
    # Curve-cache entries are shared across algorithms (DESIGN.md §6);
    # a hit must report the algorithm the caller asked for, not the one
    # that happened to warm the entry.
    from repro.runtime import CurveCache

    cache = CurveCache(tmp_path)
    _curve, cold = combination_curve(
        small_corpus, "ITA", lexicon,
        mining=MiningConfig(algorithm="eclat"), curve_cache=cache,
    )
    assert cold.algorithm == "eclat"
    _curve, warm = combination_curve(
        small_corpus, "ITA", lexicon,
        mining=MiningConfig(algorithm="bitset"), curve_cache=cache,
    )
    assert cache.stats.hits == 1
    assert warm.algorithm == "bitset"
    assert warm.itemsets == cold.itemsets


# ---------------------------------------------------------------------------
# Memory-mapped columnar fast path
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def packed_small(tmp_path_factory, small_corpus):
    from repro.storage.columnar import pack_dataset

    path = tmp_path_factory.mktemp("invariants") / "small.col"
    with pack_dataset(small_corpus, path) as corpus:
        yield corpus


def test_columnar_curves_match_object_path(packed_small, small_corpus, lexicon):
    import numpy as np

    for level in ("ingredient", "category"):
        code = small_corpus.region_codes()[0]
        from_objects, result_objects = combination_curve(
            small_corpus, code, lexicon, level=level
        )
        from_planes, result_planes = combination_curve(
            packed_small, code, lexicon, level=level
        )
        assert np.array_equal(
            from_objects.frequencies, from_planes.frequencies
        )
        assert result_objects.itemsets == result_planes.itemsets


def test_columnar_analysis_matches_object_path(
    packed_small, small_corpus, lexicon
):
    from_objects = analyze_invariants(small_corpus, lexicon)
    from_planes = analyze_invariants(packed_small, lexicon)
    assert from_objects.average_distance == from_planes.average_distance
    assert set(from_objects.curves) == set(from_planes.curves)


def test_columnar_path_warms_object_path_cache(
    packed_small, small_corpus, lexicon, tmp_path, monkeypatch
):
    """Either representation's mining results serve the other (§6/§11)."""
    from repro.runtime.curve_cache import CurveCache
    import repro.analysis.invariants as invariants_module

    cache = CurveCache(tmp_path)
    code = small_corpus.region_codes()[0]
    _, packed_result = combination_curve(
        packed_small, code, lexicon, curve_cache=cache
    )

    def explode(*_args, **_kwargs):  # pragma: no cover - must not run
        raise AssertionError("cache miss: object path re-mined")

    monkeypatch.setattr(
        invariants_module, "mine_frequent_itemsets", explode
    )
    _, object_result = combination_curve(
        small_corpus, code, lexicon, curve_cache=cache
    )
    assert object_result.itemsets == packed_result.itemsets
