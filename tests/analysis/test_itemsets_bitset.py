"""Cross-engine property tests: bitset Eclat == every reference miner.

The bitset engine's contract (DESIGN.md §6) is *exact* equality with the
pure-Python miners — same itemsets, same supports, same
``(-support, size, items)`` rank order — on any input.  These tests pin
that over randomized transaction sets spanning sizes, densities and
``max_size`` caps, plus the degenerate shapes that break bit-matrix
code (empty input, empty transactions, single transaction, items with
large/sparse ids).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.itemsets import (
    available_algorithms,
    mine_frequent_itemsets,
)
from repro.analysis.itemsets_bitset import bitset_eclat
from repro.errors import MiningError

REFERENCE_ALGORITHMS = ("eclat", "apriori", "fpgrowth", "bruteforce")


def _random_transactions(
    rng: random.Random, n: int, n_items: int, density: float
) -> list[set[int]]:
    items = list(range(n_items))
    transactions = []
    for _ in range(n):
        size = min(n_items, max(0, int(rng.gauss(density * n_items, 2))))
        transactions.append(set(rng.sample(items, size)))
    return transactions


def _skewed_transactions(
    rng: random.Random, n: int, n_items: int, size: int
) -> list[set[int]]:
    """Zipf-weighted draws — the shape real recipe pools have."""
    items = list(range(n_items))
    weights = [1.0 / (rank + 1) for rank in range(n_items)]
    transactions = []
    for _ in range(n):
        transaction: set[int] = set()
        while len(transaction) < size:
            transaction.add(rng.choices(items, weights)[0])
        transactions.append(transaction)
    return transactions


def test_bitset_is_registered():
    assert "bitset" in available_algorithms()
    assert set(REFERENCE_ALGORITHMS) <= set(available_algorithms())


@pytest.mark.parametrize("seed", range(8))
def test_bitset_equals_all_miners_randomized(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 60)
    n_items = rng.randint(1, 24)
    density = rng.choice([0.1, 0.25, 0.4])
    transactions = _random_transactions(rng, n, n_items, density)
    min_support = rng.choice([0.02, 0.05, 0.1, 0.3, 0.75])
    max_size = rng.choice([None, 1, 2, 3])
    expected = mine_frequent_itemsets(
        transactions, min_support, "eclat", max_size=max_size
    )
    for algorithm in ("bitset", "apriori", "fpgrowth", "bruteforce"):
        result = mine_frequent_itemsets(
            transactions, min_support, algorithm, max_size=max_size
        )
        assert result.itemsets == expected.itemsets, (seed, algorithm)
        assert result.n_transactions == expected.n_transactions


@pytest.mark.parametrize("seed", range(4))
def test_bitset_equals_eclat_on_skewed_pools(seed):
    rng = random.Random(100 + seed)
    transactions = _skewed_transactions(rng, n=300, n_items=60, size=6)
    expected = mine_frequent_itemsets(transactions, 0.05, "eclat")
    result = mine_frequent_itemsets(transactions, 0.05, "bitset")
    assert result.itemsets == expected.itemsets
    assert len(result) > 0  # skewed pools must actually mine something
    assert result.frequencies() == expected.frequencies()


def test_bitset_empty_input():
    result = bitset_eclat([], 0.05)
    assert result.itemsets == ()
    assert result.n_transactions == 0
    assert result.algorithm == "bitset"


def test_bitset_all_empty_transactions():
    result = bitset_eclat([set(), set(), set()], 0.05)
    assert result.itemsets == ()
    assert result.n_transactions == 3


def test_bitset_single_transaction():
    expected = mine_frequent_itemsets([{3, 7, 11}], 0.5, "bruteforce")
    result = mine_frequent_itemsets([{3, 7, 11}], 0.5, "bitset")
    assert result.itemsets == expected.itemsets


def test_bitset_sparse_large_item_ids():
    transactions = [{10_000, 999_999}, {10_000}, {10_000, 5}]
    expected = mine_frequent_itemsets(transactions, 0.3, "eclat")
    result = mine_frequent_itemsets(transactions, 0.3, "bitset")
    assert result.itemsets == expected.itemsets


def test_bitset_duplicate_items_in_list_input():
    # Non-set inputs are deduplicated exactly like the reference miners.
    transactions = [[1, 1, 2], [2, 2, 2, 1], [1]]
    expected = mine_frequent_itemsets(transactions, 0.3, "eclat")
    result = mine_frequent_itemsets(transactions, 0.3, "bitset")
    assert result.itemsets == expected.itemsets


def test_bitset_max_size_caps_depth():
    transactions = [{1, 2, 3, 4}] * 10
    result = mine_frequent_itemsets(transactions, 0.5, "bitset", max_size=2)
    assert max(itemset.size for itemset in result.itemsets) == 2
    expected = mine_frequent_itemsets(
        transactions, 0.5, "eclat", max_size=2
    )
    assert result.itemsets == expected.itemsets


def test_bitset_invalid_support():
    with pytest.raises(MiningError):
        bitset_eclat([{1}], 0.0)
    with pytest.raises(MiningError):
        bitset_eclat([{1}], 1.5)


def test_unknown_algorithm_lists_bitset():
    with pytest.raises(MiningError) as excinfo:
        mine_frequent_itemsets([{1}], 0.5, "no-such-miner")
    assert "bitset" in str(excinfo.value)


# ---------------------------------------------------------------------------
# mine_packed: mining directly over the packed-bit layout
# ---------------------------------------------------------------------------


def _pack(transactions):
    import numpy as np

    universe = sorted({item for t in transactions for item in t})
    dense = np.zeros((len(universe), len(transactions)), dtype=np.uint8)
    position = {item: row for row, item in enumerate(universe)}
    for column, transaction in enumerate(transactions):
        for item in transaction:
            dense[position[item], column] = 1
    return (
        np.packbits(dense, axis=1),
        np.asarray(universe, dtype=np.int64),
        len(transactions),
    )


def test_mine_packed_matches_bitset_eclat():
    from repro.analysis.itemsets_bitset import mine_packed

    rng = random.Random(5)
    transactions = [
        frozenset(rng.sample(range(20), rng.randint(2, 8))) for _ in range(60)
    ]
    matrix, item_ids, n = _pack(transactions)
    packed = mine_packed(matrix, item_ids, n, min_support=0.1)
    reference = bitset_eclat(transactions, min_support=0.1)
    assert packed.itemsets == reference.itemsets
    assert packed.n_transactions == reference.n_transactions


def test_mine_packed_respects_max_size():
    from repro.analysis.itemsets_bitset import mine_packed

    transactions = [frozenset({1, 2, 3, 4})] * 10
    matrix, item_ids, n = _pack(transactions)
    result = mine_packed(matrix, item_ids, n, min_support=0.5, max_size=2)
    assert max(itemset.size for itemset in result.itemsets) == 2


def test_mine_packed_validates_inputs():
    import numpy as np

    from repro.analysis.itemsets_bitset import mine_packed

    matrix = np.zeros((2, 1), dtype=np.uint8)
    with pytest.raises(MiningError):  # descending item ids
        mine_packed(matrix, np.array([5, 3]), 4, min_support=0.5)
    with pytest.raises(MiningError):  # row/id count mismatch
        mine_packed(matrix, np.array([1]), 4, min_support=0.5)
    with pytest.raises(MiningError):  # not uint8
        mine_packed(matrix.astype(np.int32), np.array([1, 2]), 4, 0.5)


def test_mine_packed_empty():
    import numpy as np

    from repro.analysis.itemsets_bitset import mine_packed

    result = mine_packed(
        np.zeros((0, 0), dtype=np.uint8), np.array([], dtype=np.int64),
        0, min_support=0.5,
    )
    assert result.itemsets == ()
