"""Tests for the Eq. 1 overrepresentation metric."""

from __future__ import annotations

import pytest

from repro.analysis.overrepresentation import (
    overrepresentation_scores,
    overrepresentation_table,
    top_overrepresented,
)
from repro.corpus.dataset import RecipeDataset
from repro.errors import EmptyCorpusError


def test_scores_match_hand_computation(tiny_dataset, tiny_lexicon):
    scores = overrepresentation_scores(tiny_dataset, "ITA", tiny_lexicon)
    by_name = {entry.name: entry for entry in scores}
    # tomato: 3/4 in ITA, 4/8 globally -> 0.25
    assert by_name["tomato"].score == pytest.approx(3 / 4 - 4 / 8)
    # basil: 3/4 in ITA, 3/8 globally -> 0.375
    assert by_name["basil"].score == pytest.approx(3 / 4 - 3 / 8)
    # butter: 1/4 in ITA, 1/8 globally -> 0.125
    assert by_name["butter"].score == pytest.approx(1 / 4 - 1 / 8)


def test_scores_sorted_descending(tiny_dataset, tiny_lexicon):
    scores = overrepresentation_scores(tiny_dataset, "KOR", tiny_lexicon)
    values = [entry.score for entry in scores]
    assert values == sorted(values, reverse=True)


def test_only_used_ingredients_scored(tiny_dataset, tiny_lexicon):
    scores = overrepresentation_scores(tiny_dataset, "ITA", tiny_lexicon)
    names = {entry.name for entry in scores}
    assert "cumin" not in names  # never used in ITA
    assert "paprika" not in names


def test_top_overrepresented_k(tiny_dataset, tiny_lexicon):
    top = top_overrepresented(tiny_dataset, "KOR", tiny_lexicon, k=2)
    assert len(top) == 2
    # cumin: 4/4 in KOR vs 4/8 globally = 0.5, the clear winner.
    assert top[0].name == "cumin"


def test_single_cuisine_ubiquitous_ingredient_scores_zero(tiny_lexicon):
    from repro.corpus.recipe import Recipe

    dataset = RecipeDataset(
        [Recipe(0, "ITA", (0, 1)), Recipe(1, "ITA", (0, 2))]
    )
    scores = overrepresentation_scores(dataset, "ITA", tiny_lexicon)
    by_name = {entry.name: entry for entry in scores}
    # With one cuisine, local fraction equals global fraction.
    assert by_name["tomato"].score == pytest.approx(0.0)


def test_table_covers_all_regions(tiny_dataset, tiny_lexicon):
    table = overrepresentation_table(tiny_dataset, tiny_lexicon, k=3)
    assert set(table) == {"ITA", "KOR"}
    assert all(len(entries) == 3 for entries in table.values())


def test_empty_cuisine_raises(tiny_dataset, tiny_lexicon):
    with pytest.raises(EmptyCorpusError):
        overrepresentation_scores(tiny_dataset, "FRA", tiny_lexicon)


def test_signature_ingredients_surface_in_synthetic_corpus(
    small_corpus, lexicon
):
    """Table I signatures must rank highly in the calibrated corpus."""
    from repro.corpus.regions import get_region

    for code in small_corpus.region_codes():
        top = {
            entry.name
            for entry in top_overrepresented(small_corpus, code, lexicon, k=5)
        }
        published = set(get_region(code).overrepresented)
        assert len(top & published) >= 3, (code, top, published)
