"""Tests for Heaps-law vocabulary growth analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.vocabulary_growth import (
    fit_heaps,
    growth_from_sets,
    vocabulary_growth_curve,
)
from repro.corpus.dataset import CuisineView
from repro.errors import AnalysisError, ModelError
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.params import CuisineSpec


def test_growth_from_sets_hand_computed():
    growth = growth_from_sets(
        [frozenset({1, 2}), frozenset({2, 3}), frozenset({1}), frozenset({4})]
    )
    assert list(growth) == [2, 3, 3, 4]


def test_growth_monotone_nondecreasing(small_corpus):
    growth = vocabulary_growth_curve(small_corpus.cuisine("ITA"))
    assert (np.diff(growth) >= 0).all()
    assert growth[-1] == small_corpus.cuisine("ITA").n_ingredients


def test_growth_empty_view_raises():
    with pytest.raises(AnalysisError):
        vocabulary_growth_curve(CuisineView("ITA", ()))


def test_fit_heaps_exact_power_law():
    n = np.arange(1, 200, dtype=float)
    growth = 3.0 * n**0.6
    fit = fit_heaps(growth)
    assert fit.beta == pytest.approx(0.6, abs=1e-6)
    assert fit.k == pytest.approx(3.0, rel=1e-6)
    assert fit.r_squared == pytest.approx(1.0, abs=1e-9)


def test_fit_heaps_needs_points():
    with pytest.raises(AnalysisError):
        fit_heaps([1, 2])


def test_empirical_growth_sublinear(small_corpus):
    """Cuisine vocabulary grows sub-linearly (Heaps' law)."""
    fit = fit_heaps(vocabulary_growth_curve(small_corpus.cuisine("ITA")))
    assert 0.0 < fit.beta < 1.0
    assert fit.r_squared > 0.8


def test_model_run_history_and_growth():
    """Algorithm 1's pool trajectory: m tracks phi * n over the run."""
    spec = CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(60)),
        categories=tuple([Category.SPICE] * 60),
        avg_recipe_size=5.0,
        n_recipes=200,
        phi=0.3,
    )
    run = CopyMutateRandom().run(spec, seed=1, record_history=True)
    trajectory = run.pool_trajectory()
    assert trajectory[0][0] == 20  # initial m
    assert trajectory[-1][1] == 200  # final n
    ms = np.array([m for m, _n in trajectory])
    ns = np.array([n for _m, n in trajectory])
    assert (np.diff(ms) >= 0).all()
    assert (np.diff(ns) >= 0).all()
    # At termination, pool ratio has been driven to ~phi.
    assert ms[-1] / ns[-1] == pytest.approx(0.3, abs=0.05)
    # Model vocabulary growth is Heaps-like too.
    fit = fit_heaps(growth_from_sets(run.transactions))
    assert 0.0 < fit.beta < 1.0


def test_history_disabled_by_default():
    spec = CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(20)),
        categories=tuple([Category.SPICE] * 20),
        avg_recipe_size=4.0,
        n_recipes=30,
        phi=20 / 30,
    )
    run = CopyMutateRandom().run(spec, seed=1)
    assert run.history is None
    with pytest.raises(ModelError):
        run.pool_trajectory()
