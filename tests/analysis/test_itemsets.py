"""Tests for frequent-itemset mining, incl. miner-equivalence properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.itemsets import (
    CATEGORY_INDEX,
    apriori,
    bruteforce,
    category_from_index,
    category_transactions,
    eclat,
    fpgrowth,
    ingredient_transactions,
    mine_frequent_itemsets,
)
from repro.errors import MiningError
from repro.lexicon.categories import Category

TRANSACTIONS = [
    {1, 2, 3},
    {1, 2},
    {1, 3},
    {2, 3},
    {1, 2, 3, 4},
    {4, 5},
]


def _as_dict(result):
    return {itemset.items: itemset.support for itemset in result.itemsets}


def test_eclat_hand_computed():
    result = eclat(TRANSACTIONS, min_support=0.5)
    found = _as_dict(result)
    # Supports: 1->4, 2->4, 3->4, {1,2}->3, {1,3}->3, {2,3}->3, {1,2,3}->2
    # min_count = ceil(0.5*6) = 3.
    assert found == {
        (1,): 4, (2,): 4, (3,): 4,
        (1, 2): 3, (1, 3): 3, (2, 3): 3,
    }


def test_rank_order():
    result = eclat(TRANSACTIONS, min_support=0.5)
    supports = [itemset.support for itemset in result.itemsets]
    assert supports == sorted(supports, reverse=True)
    # Ties broken by size then lexicographic items.
    assert result.itemsets[0].items == (1,)


def test_max_size_cap():
    result = eclat(TRANSACTIONS, min_support=0.3, max_size=1)
    assert all(itemset.size == 1 for itemset in result.itemsets)


def test_min_support_one_returns_universal_sets():
    result = eclat(TRANSACTIONS, min_support=1.0)
    assert _as_dict(result) == {}


def test_empty_transactions():
    for miner in (eclat, apriori, bruteforce):
        result = miner([], min_support=0.5)
        assert len(result) == 0
        assert result.n_transactions == 0


def test_invalid_support_rejected():
    with pytest.raises(MiningError):
        eclat(TRANSACTIONS, min_support=0.0)
    with pytest.raises(MiningError):
        apriori(TRANSACTIONS, min_support=1.5)


def test_unknown_algorithm():
    with pytest.raises(MiningError):
        mine_frequent_itemsets(TRANSACTIONS, 0.5, algorithm="fp-dream")


def test_relative_support_and_frequencies():
    result = eclat(TRANSACTIONS, min_support=0.5)
    top = result.itemsets[0]
    assert top.relative_support(result.n_transactions) == pytest.approx(4 / 6)
    frequencies = result.frequencies()
    assert frequencies[0] == pytest.approx(4 / 6)
    assert len(frequencies) == len(result)


def test_of_size():
    result = eclat(TRANSACTIONS, min_support=0.5)
    assert len(result.of_size(1)) == 3
    assert len(result.of_size(2)) == 3


@st.composite
def transactions_strategy(draw):
    n = draw(st.integers(1, 25))
    return [
        draw(st.sets(st.integers(0, 9), min_size=1, max_size=6))
        for _ in range(n)
    ]


@given(transactions_strategy(), st.floats(0.05, 1.0))
@settings(max_examples=100, deadline=None)
def test_all_miners_agree(transactions, min_support):
    a = _as_dict(eclat(transactions, min_support))
    b = _as_dict(apriori(transactions, min_support))
    c = _as_dict(bruteforce(transactions, min_support))
    d = _as_dict(fpgrowth(transactions, min_support))
    assert a == b == c == d


@given(transactions_strategy(), st.floats(0.1, 1.0), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_miners_agree_with_max_size(transactions, min_support, max_size):
    a = _as_dict(eclat(transactions, min_support, max_size=max_size))
    b = _as_dict(apriori(transactions, min_support, max_size=max_size))
    c = _as_dict(bruteforce(transactions, min_support, max_size=max_size))
    d = _as_dict(fpgrowth(transactions, min_support, max_size=max_size))
    assert a == b == c == d


def test_fpgrowth_hand_computed():
    result = fpgrowth(TRANSACTIONS, min_support=0.5)
    assert _as_dict(result) == {
        (1,): 4, (2,): 4, (3,): 4,
        (1, 2): 3, (1, 3): 3, (2, 3): 3,
    }
    assert result.algorithm == "fpgrowth"


def test_fpgrowth_on_real_cuisine_matches_eclat(small_corpus):
    transactions = ingredient_transactions(small_corpus.cuisine("KOR"))
    a = _as_dict(eclat(transactions, 0.05))
    b = _as_dict(fpgrowth(transactions, 0.05))
    assert a == b


@given(transactions_strategy())
@settings(max_examples=50, deadline=None)
def test_downward_closure(transactions):
    """Every subset of a frequent itemset is frequent (Apriori property)."""
    result = eclat(transactions, min_support=0.3)
    found = _as_dict(result)
    for items, support in found.items():
        for drop in range(len(items)):
            subset = items[:drop] + items[drop + 1:]
            if subset:
                assert subset in found
                assert found[subset] >= support


def test_ingredient_transactions(tiny_dataset):
    transactions = ingredient_transactions(tiny_dataset.cuisine("ITA"))
    assert frozenset({0, 1, 2, 7}) in transactions
    assert len(transactions) == 4


def test_category_transactions(tiny_dataset, tiny_lexicon):
    transactions = category_transactions(
        tiny_dataset.cuisine("KOR"), tiny_lexicon
    )
    veg = CATEGORY_INDEX[Category.VEGETABLE]
    spice = CATEGORY_INDEX[Category.SPICE]
    assert frozenset({veg, spice}) in transactions


def test_category_index_roundtrip():
    for category, index in CATEGORY_INDEX.items():
        assert category_from_index(index) is category
    with pytest.raises(MiningError):
        category_from_index(999)


def test_paper_threshold_on_synthetic_cuisine(small_corpus):
    """5% threshold mining yields a meaningful, ranked combination set."""
    transactions = ingredient_transactions(small_corpus.cuisine("ITA"))
    result = mine_frequent_itemsets(transactions, min_support=0.05)
    assert len(result) > 50
    assert any(itemset.size >= 2 for itemset in result.itemsets)
    frequencies = result.frequencies()
    assert frequencies == sorted(frequencies, reverse=True)
