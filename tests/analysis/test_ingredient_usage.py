"""Tests for single-ingredient rank-frequency analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ingredient_usage import (
    cuisine_ingredient_curves,
    fit_zipf,
    ingredient_invariance,
    ingredient_rank_frequency,
)
from repro.analysis.rank_frequency import RankFrequencyCurve
from repro.corpus.dataset import CuisineView
from repro.errors import AnalysisError


def test_rank_frequency_hand_computed(tiny_dataset):
    curve = ingredient_rank_frequency(tiny_dataset.cuisine("ITA"))
    # tomato/basil each in 3 of 4 recipes -> top frequencies 0.75.
    assert curve.frequencies[0] == pytest.approx(0.75)
    assert curve.frequencies[1] == pytest.approx(0.75)
    assert curve.label == "ITA"
    # 7 distinct ingredients used.
    assert len(curve) == 7


def test_empty_view_raises():
    with pytest.raises(AnalysisError):
        ingredient_rank_frequency(CuisineView("ITA", ()))


def test_per_cuisine_curves(tiny_dataset):
    curves = cuisine_ingredient_curves(tiny_dataset)
    assert set(curves) == {"ITA", "KOR"}


def test_fit_zipf_on_exact_power_law():
    ranks = np.arange(1, 101, dtype=float)
    frequencies = 0.9 * ranks**-0.8
    curve = RankFrequencyCurve("z", frequencies)
    fit = fit_zipf(curve)
    assert fit.exponent == pytest.approx(0.8, abs=1e-6)
    assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
    assert fit.n_ranks == 100


def test_fit_zipf_needs_three_points():
    curve = RankFrequencyCurve("z", np.array([0.5, 0.1]))
    with pytest.raises(AnalysisError):
        fit_zipf(curve)


def test_synthetic_corpus_is_zipf_like(small_corpus):
    """Generated cuisines show decaying power-law-ish usage curves."""
    for code, curve in cuisine_ingredient_curves(small_corpus).items():
        fit = fit_zipf(curve)
        assert fit.exponent > 0.3, code
        assert fit.r_squared > 0.6, code


def test_invariance_holds_on_world_corpus(world_corpus):
    """The refs [3]-[8] pattern: exponents cluster, curves align."""
    result = ingredient_invariance(world_corpus)
    assert result["exponent_std"] < 0.35
    assert result["avg_pairwise_distance"] < 0.06
    assert len(result["exponents"]) == 25


def test_invariance_needs_two_cuisines(small_corpus):
    with pytest.raises(AnalysisError):
        ingredient_invariance(small_corpus.subset(["ITA"]))
