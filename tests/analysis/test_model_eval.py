"""Tests for the Fig. 4 model evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.model_eval import (
    evaluate_models,
    model_curve_from_runs,
)
from repro.analysis.rank_frequency import RankFrequencyCurve
from repro.config import MiningConfig
from repro.errors import AnalysisError


def _curve(label, values):
    return RankFrequencyCurve(label, np.array(sorted(values, reverse=True)))


def test_model_curve_from_runs_aggregates():
    runs = [
        [frozenset({1, 2}), frozenset({1, 2}), frozenset({3})],
        [frozenset({1, 2}), frozenset({1, 3}), frozenset({1, 3})],
    ]
    curve = model_curve_from_runs(runs, "M", MiningConfig(min_support=0.3))
    assert curve.label == "M"
    assert len(curve) > 0
    assert curve.frequencies[0] <= 1.0


def test_model_curve_requires_runs():
    with pytest.raises(AnalysisError):
        model_curve_from_runs([], "M")


def test_evaluate_models_ranking():
    empirical = _curve("emp", [0.5, 0.4, 0.3])
    close = _curve("close", [0.5, 0.35, 0.3])
    far = _curve("far", [0.1, 0.05, 0.01])
    evaluation = evaluate_models(
        "ITA", empirical, {"close": close, "far": far}
    )
    assert evaluation.best_model == "close"
    ranking = evaluation.ranking()
    assert ranking[0][0] == "close"
    assert ranking[1][0] == "far"
    assert evaluation.distances["far"] > evaluation.distances["close"]


def test_evaluate_models_requires_curves():
    empirical = _curve("emp", [0.5])
    with pytest.raises(AnalysisError):
        evaluate_models("ITA", empirical, {})


def test_evaluate_models_empty_empirical():
    empirical = RankFrequencyCurve("emp", np.array([]))
    with pytest.raises(AnalysisError):
        evaluate_models("ITA", empirical, {"m": _curve("m", [0.1])})


def test_distance_kind_passthrough():
    empirical = _curve("emp", [0.5, 0.4])
    model = _curve("m", [0.4, 0.2])
    absolute = evaluate_models("X", empirical, {"m": model})
    squared = evaluate_models(
        "X", empirical, {"m": model}, distance_kind="squared"
    )
    assert absolute.distances["m"] == pytest.approx(0.15)
    assert squared.distances["m"] == pytest.approx((0.01 + 0.04) / 2)
    assert squared.distance_kind == "squared"
