"""Tests for Fig. 1 size distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.size_distribution import (
    aggregate_size_distribution,
    cuisine_size_distributions,
    size_distribution,
)
from repro.errors import AnalysisError


def test_histogram_counts(tiny_dataset):
    dist = size_distribution(tiny_dataset.sizes(), "ALL")
    assert list(dist.sizes) == [3, 4]
    assert list(dist.counts) == [6, 2]
    assert dist.fractions.sum() == pytest.approx(1.0)


def test_summary_statistics(tiny_dataset):
    dist = size_distribution(tiny_dataset.sizes(), "ALL")
    assert dist.mean == pytest.approx(3.25)
    assert dist.min_size == 3
    assert dist.max_size == 4
    assert dist.n_recipes == 8


def test_gaussian_fit_reasonable():
    rng = np.random.default_rng(0)
    sizes = np.clip(np.rint(rng.normal(9, 3, 4000)), 2, 38).astype(np.int64)
    dist = size_distribution(sizes, "X")
    assert abs(dist.gaussian_mu - 9) < 0.3
    assert abs(dist.gaussian_sigma - 3) < 0.4


def test_fraction_at(tiny_dataset):
    dist = size_distribution(tiny_dataset.sizes(), "ALL")
    assert dist.fraction_at(3) == pytest.approx(0.75)
    assert dist.fraction_at(4) == pytest.approx(0.25)
    assert dist.fraction_at(10) == 0.0


def test_empty_raises():
    with pytest.raises(AnalysisError):
        size_distribution(np.array([], dtype=np.int64), "X")


def test_per_cuisine_keys(tiny_dataset):
    dists = cuisine_size_distributions(tiny_dataset)
    assert set(dists) == {"ITA", "KOR"}
    assert dists["ITA"].label == "ITA"


def test_aggregate_pools_everything(tiny_dataset):
    aggregate = aggregate_size_distribution(tiny_dataset)
    assert aggregate.n_recipes == 8
    assert aggregate.label == "ALL"


def test_synthetic_corpus_matches_paper_shape(small_corpus):
    aggregate = aggregate_size_distribution(small_corpus)
    assert aggregate.min_size >= 2
    assert aggregate.max_size <= 38
    assert 7.5 <= aggregate.mean <= 10.5
    # Homogeneity: per-cuisine means are close to the aggregate mean.
    for dist in cuisine_size_distributions(small_corpus).values():
        assert abs(dist.mean - aggregate.mean) < 1.5
