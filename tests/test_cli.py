"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_generate_and_stats(tmp_path, capsys):
    output = tmp_path / "corpus.jsonl"
    code = main([
        "generate", str(output), "--scale", "0.02", "--seed", "7",
        "--regions", "KOR", "JPN",
    ])
    assert code == 0
    assert output.exists()
    out = capsys.readouterr().out
    assert "wrote" in out

    code = main(["stats", str(output)])
    assert code == 0
    out = capsys.readouterr().out
    assert "KOR" in out and "JPN" in out
    assert "cuisines" in out


def test_resolve_command(capsys):
    code = main(["resolve", "2 cups chopped tomatoes", "soy sauce"])
    assert code == 0
    out = capsys.readouterr().out
    assert "tomato" in out
    assert "soybean sauce" in out


def test_resolve_unresolved(capsys):
    main(["resolve", "powdered moon rock"])
    assert "(unresolved)" in capsys.readouterr().out


def test_experiment_command(capsys):
    code = main([
        "experiment", "fig1", "--scale", "0.02", "--seed", "3",
        "--regions", "KOR", "JPN",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out


def test_experiment_artifacts(tmp_path, capsys):
    code = main([
        "experiment", "table1", "--scale", "0.02", "--seed", "3",
        "--regions", "KOR", "JPN", "--artifacts", str(tmp_path),
    ])
    assert code == 0
    assert (tmp_path / "table1.csv").exists()


def test_evolve_command(capsys):
    code = main([
        "evolve", "CM-R", "KOR", "--scale", "0.05", "--seed", "2",
        "--runs", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "CM-R" in out
    assert "distance to empirical" in out


def test_report_command(tmp_path, capsys):
    output = tmp_path / "report.md"
    code = main([
        "report", str(output), "--scale", "0.03", "--seed", "4",
        "--runs", "2", "--regions", "KOR", "JPN", "--no-ablations",
    ])
    assert code == 0
    assert output.exists()
    text = output.read_text()
    assert "## Fig. 4" in text
    out = capsys.readouterr().out
    assert "fig4_null_separation" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["evolve", "CM-X", "KOR"])


def test_stats_missing_file_clean_error(capsys):
    code = main(["stats", "/nonexistent/corpus.jsonl"])
    assert code == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_evolve_unknown_region_clean_error(capsys):
    code = main(["evolve", "CM-R", "ATLANTIS", "--scale", "0.02"])
    assert code == 1
    assert "error:" in capsys.readouterr().err
