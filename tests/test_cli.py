"""Tests for the command-line interface."""

from __future__ import annotations

import re

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_generate_and_stats(tmp_path, capsys):
    output = tmp_path / "corpus.jsonl"
    code = main([
        "generate", str(output), "--scale", "0.02", "--seed", "7",
        "--regions", "KOR", "JPN",
    ])
    assert code == 0
    assert output.exists()
    out = capsys.readouterr().out
    assert "wrote" in out

    code = main(["stats", str(output)])
    assert code == 0
    out = capsys.readouterr().out
    assert "KOR" in out and "JPN" in out
    assert "cuisines" in out


def test_resolve_command(capsys):
    code = main(["resolve", "2 cups chopped tomatoes", "soy sauce"])
    assert code == 0
    out = capsys.readouterr().out
    assert "tomato" in out
    assert "soybean sauce" in out


def test_resolve_unresolved(capsys):
    main(["resolve", "powdered moon rock"])
    assert "(unresolved)" in capsys.readouterr().out


def test_experiment_command(capsys):
    code = main([
        "experiment", "fig1", "--scale", "0.02", "--seed", "3",
        "--regions", "KOR", "JPN",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out


def test_experiment_artifacts(tmp_path, capsys):
    code = main([
        "experiment", "table1", "--scale", "0.02", "--seed", "3",
        "--regions", "KOR", "JPN", "--artifacts", str(tmp_path),
    ])
    assert code == 0
    assert (tmp_path / "table1.csv").exists()


def test_evolve_command(capsys):
    code = main([
        "evolve", "CM-R", "KOR", "--scale", "0.05", "--seed", "2",
        "--runs", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "CM-R" in out
    assert "distance to empirical" in out


def test_report_command(tmp_path, capsys):
    output = tmp_path / "report.md"
    code = main([
        "report", str(output), "--scale", "0.03", "--seed", "4",
        "--runs", "2", "--regions", "KOR", "JPN", "--no-ablations",
    ])
    assert code == 0
    assert output.exists()
    text = output.read_text()
    assert "## Fig. 4" in text
    out = capsys.readouterr().out
    assert "fig4_null_separation" in out


def test_sweep_command(capsys):
    code = main([
        "sweep", "--regions", "KOR", "JPN", "--models", "CM-R", "NM",
        "--runs", "2", "--scale", "0.02", "--seed", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: 2 cuisines x 2 models x 2 runs = 8 total" in out
    assert "CM-R" in out and "NM" in out and "total" in out


def test_sweep_cache_warm_second_pass(tmp_path, capsys):
    argv = [
        "sweep", "--regions", "KOR", "--models", "CM-R", "--runs", "2",
        "--scale", "0.02", "--seed", "3", "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert f"cache {tmp_path}: 2 runs, 0 curves" in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    # Every run served from cache, none executed.
    total_line = next(
        line for line in warm.splitlines() if line.startswith("total")
    )
    assert total_line.split("|")[3].strip() == "2"  # cached
    assert total_line.split("|")[4].strip() == "0"  # executed


def test_sweep_mine_prewarms_experiment_zero_mining(
    tmp_path, capsys, monkeypatch
):
    # `repro sweep --mine` warms both curve kinds (per-run model curves
    # and empirical curves), so a matching `repro experiment fig4`
    # afterwards must reach no miner at all (DESIGN.md §6).
    common = [
        "--regions", "KOR", "--runs", "2", "--scale", "0.02",
        "--seed", "3", "--cache-dir", str(tmp_path),
    ]
    assert main(["sweep", "--models", "CM-R", "CM-C", "CM-M", "NM",
                 "--mine", *common]) == 0
    capsys.readouterr()

    def _no_mining(*_args, **_kwargs):
        raise AssertionError("warm experiment must not mine")

    monkeypatch.setattr(
        "repro.models.ensemble.mine_frequent_itemsets", _no_mining
    )
    monkeypatch.setattr(
        "repro.analysis.invariants.mine_frequent_itemsets", _no_mining
    )
    assert main(["experiment", "fig4", *common]) == 0
    assert "Fig. 4" in capsys.readouterr().out


def test_sweep_mine_requires_cache_dir(capsys):
    code = main([
        "sweep", "--regions", "KOR", "--models", "CM-R", "--runs", "2",
        "--scale", "0.02", "--mine",
    ])
    assert code == 2
    assert "--cache-dir" in capsys.readouterr().err


def test_sweep_rejects_unknown_model():
    with pytest.raises(SystemExit):
        main(["sweep", "--models", "CM-X"])


def test_sweep_rejects_duplicate_regions(capsys):
    code = main([
        "sweep", "--regions", "KOR", "KOR", "--runs", "2", "--scale", "0.02",
    ])
    assert code == 1
    assert "duplicate region codes" in capsys.readouterr().err


def test_cache_stats_missing_directory(tmp_path, capsys):
    missing = tmp_path / "nope"
    assert main(["cache", "stats", str(missing)]) == 0
    assert "no cache directory" in capsys.readouterr().out


def test_cache_stats_and_clear_roundtrip(tmp_path, capsys):
    cache_dir = tmp_path / "runs"
    assert main([
        "sweep", "--regions", "KOR", "--models", "NM", "--runs", "2",
        "--scale", "0.02", "--cache-dir", str(cache_dir),
    ]) == 0
    capsys.readouterr()

    assert main(["cache", "stats", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert re.search(r"entries\s*\|\s*2\b", out)
    assert "total size" in out

    assert main(["cache", "clear", str(cache_dir)]) == 0
    assert "removed 2 cached runs" in capsys.readouterr().out

    assert main(["cache", "stats", str(cache_dir)]) == 0
    assert re.search(r"entries\s*\|\s*0\b", capsys.readouterr().out)


def test_cache_clear_missing_directory(tmp_path, capsys):
    assert main(["cache", "clear", str(tmp_path / "nope")]) == 0
    assert "nothing to clear" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["evolve", "CM-X", "KOR"])


def test_stats_missing_file_clean_error(capsys):
    code = main(["stats", "/nonexistent/corpus.jsonl"])
    assert code == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_evolve_unknown_region_clean_error(capsys):
    code = main(["evolve", "CM-R", "ATLANTIS", "--scale", "0.02"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_evolve_engine_flag(capsys):
    code = main([
        "evolve", "CM-R", "KOR", "--scale", "0.05", "--seed", "2",
        "--runs", "2", "--engine", "reference",
    ])
    assert code == 0
    assert "CM-R on KOR" in capsys.readouterr().out


def test_engine_flag_changes_runs_but_not_structure(tmp_path, capsys):
    """The two engines produce distinct cached runs for the same seed."""
    cache_dir = tmp_path / "runs"
    for engine in ("reference", "vectorized"):
        assert main([
            "sweep", "--regions", "KOR", "--models", "NM", "--runs", "2",
            "--scale", "0.02", "--seed", "3", "--engine", engine,
            "--cache-dir", str(cache_dir),
        ]) == 0
    capsys.readouterr()
    # 2 runs x 2 engines: different keys, so 4 entries, no sharing.
    assert main(["cache", "stats", str(cache_dir)]) == 0
    assert "4" in capsys.readouterr().out


def test_engine_flag_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["evolve", "CM-R", "KOR", "--engine", "warp"])


def test_cache_prune_requires_max_age(tmp_path, capsys):
    assert main(["cache", "prune", str(tmp_path)]) == 2
    assert "--max-age-days" in capsys.readouterr().err


def test_cache_prune_rejects_negative_age(tmp_path, capsys):
    code = main(["cache", "prune", str(tmp_path), "--max-age-days", "-1"])
    assert code == 2
    assert ">= 0" in capsys.readouterr().err


def test_cache_prune_missing_directory(tmp_path, capsys):
    code = main([
        "cache", "prune", str(tmp_path / "nope"), "--max-age-days", "7",
    ])
    assert code == 0
    assert "nothing to prune" in capsys.readouterr().out


def test_cache_prune_roundtrip(tmp_path, capsys):
    import os
    import time

    cache_dir = tmp_path / "runs"
    assert main([
        "sweep", "--regions", "KOR", "--models", "NM", "--runs", "2",
        "--scale", "0.02", "--cache-dir", str(cache_dir),
    ]) == 0
    capsys.readouterr()
    entries = sorted(cache_dir.glob("*.run.pkl"))
    assert len(entries) == 2
    stale = time.time() - 30 * 86400
    os.utime(entries[0], (stale, stale))

    assert main([
        "cache", "prune", str(cache_dir), "--max-age-days", "7",
    ]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 cached runs" in out and "(1 kept)" in out
    assert len(list(cache_dir.glob("*.run.pkl"))) == 1


# ---------------------------------------------------------------------------
# Columnar corpus commands
# ---------------------------------------------------------------------------


def test_generate_columnar_and_stats(tmp_path, capsys):
    output = tmp_path / "corpus.col"
    code = main([
        "generate", str(output), "--format", "columnar",
        "--scale", "0.02", "--seed", "7", "--regions", "KOR", "JPN",
    ])
    assert code == 0
    assert output.exists()
    out = capsys.readouterr().out
    assert "columnar" in out

    code = main(["stats", str(output)])
    assert code == 0
    out = capsys.readouterr().out
    assert "KOR" in out and "JPN" in out


def test_corpus_pack_and_stats(tmp_path, capsys):
    jsonl = tmp_path / "corpus.jsonl"
    assert main([
        "generate", str(jsonl), "--scale", "0.02", "--seed", "7",
        "--regions", "KOR",
    ]) == 0
    capsys.readouterr()

    assert main(["corpus", "pack", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "packed" in out
    packed = tmp_path / "corpus.col"
    assert packed.exists()

    assert main(["corpus", "stats", str(packed), "--verify"]) == 0
    out = capsys.readouterr().out
    assert "planes verified" in out
    assert "bits:KOR" in out


def test_corpus_pack_explicit_output(tmp_path, capsys):
    jsonl = tmp_path / "corpus.jsonl"
    assert main([
        "generate", str(jsonl), "--scale", "0.02", "--seed", "7",
        "--regions", "KOR",
    ]) == 0
    target = tmp_path / "elsewhere.col"
    assert main(["corpus", "pack", str(jsonl), str(target)]) == 0
    assert target.exists()


def test_generated_columnar_equals_packed_jsonl(tmp_path, capsys):
    """generate --format columnar == generate jsonl + corpus pack."""
    direct = tmp_path / "direct.col"
    jsonl = tmp_path / "corpus.jsonl"
    packed = tmp_path / "corpus.col"
    common = ["--scale", "0.02", "--seed", "7", "--regions", "KOR", "JPN"]
    assert main(["generate", str(direct), "--format", "columnar", *common]) == 0
    assert main(["generate", str(jsonl), *common]) == 0
    assert main(["corpus", "pack", str(jsonl)]) == 0
    assert direct.read_bytes() == packed.read_bytes()


def test_cache_stats_reports_corpora(tmp_path, capsys):
    output = tmp_path / "corpus.col"
    assert main([
        "generate", str(output), "--format", "columnar",
        "--scale", "0.02", "--seed", "7", "--regions", "KOR",
    ]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "corpora" in out
    assert "corpus.col" in out


def test_experiment_accepts_packed_corpus(tmp_path, capsys):
    output = tmp_path / "corpus.col"
    assert main([
        "generate", str(output), "--format", "columnar",
        "--scale", "0.03", "--seed", "7", "--regions", "KOR", "JPN",
    ]) == 0
    capsys.readouterr()
    code = main([
        "experiment", "fig3", "--corpus", str(output), "--runs", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig. 3" in out
