"""Test package: synthesis."""
