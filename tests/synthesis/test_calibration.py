"""Tests for corpus calibration checks."""

from __future__ import annotations

import pytest

from repro.errors import CalibrationError
from repro.synthesis.calibration import check_calibration
from repro.synthesis.worldgen import WorldKitchen


@pytest.fixture(scope="module")
def scaled_corpus(lexicon):
    return WorldKitchen(lexicon, seed=13).generate_dataset(
        region_codes=("ITA", "KOR", "CAM"), scale=0.2
    )


def test_summary_shape(scaled_corpus):
    summary = check_calibration(scaled_corpus, scale=0.2)
    assert len(summary.regions) == 3
    codes = {record.region_code for record in summary.regions}
    assert codes == {"ITA", "KOR", "CAM"}


def test_sizes_always_in_bounds(scaled_corpus):
    summary = check_calibration(scaled_corpus, scale=0.2)
    assert all(record.sizes_in_bounds for record in summary.regions)


def test_aggregate_mean_near_paper(scaled_corpus):
    summary = check_calibration(scaled_corpus, scale=0.2)
    assert 7.5 <= summary.aggregate_mean_size <= 10.5


def test_recipe_counts_match_targets(scaled_corpus):
    summary = check_calibration(scaled_corpus, scale=0.2)
    for record in summary.regions:
        if record.region_code != "CAM":  # CAM hits the min_recipes floor
            assert record.n_recipes == record.target_recipes


def test_worst_region_is_lowest_coverage(scaled_corpus):
    summary = check_calibration(scaled_corpus, scale=0.2)
    worst = summary.worst_region()
    assert worst.ingredient_coverage == summary.min_ingredient_coverage


def test_full_scale_coverage(lexicon):
    dataset = WorldKitchen(lexicon, seed=21).generate_dataset(
        region_codes=("KOR",), scale=1.0
    )
    summary = check_calibration(dataset, scale=1.0)
    record = summary.regions[0]
    assert record.n_recipes == record.target_recipes == 1228
    assert 0.7 <= record.ingredient_coverage <= 1.1


def test_strict_mode_passes_on_good_corpus(lexicon):
    dataset = WorldKitchen(lexicon, seed=21).generate_dataset(
        region_codes=("KOR",), scale=1.0
    )
    check_calibration(dataset, scale=1.0, strict=True)


def test_strict_mode_raises_on_violation(lexicon):
    dataset = WorldKitchen(lexicon, seed=21).generate_dataset(
        region_codes=("KOR",), scale=1.0
    )
    with pytest.raises(CalibrationError):
        check_calibration(dataset, scale=1.0, strict=True, min_coverage=1.05)
