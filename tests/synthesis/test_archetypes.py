"""Tests for the archetype and cuisine-profile tables."""

from __future__ import annotations

import pytest

from repro.corpus.regions import ALL_REGION_CODES
from repro.errors import SynthesisError
from repro.lexicon.categories import Category
from repro.synthesis.archetypes import (
    ARCHETYPES,
    REGION_PROFILES,
    validate_archetypes,
)


def test_validate_passes_on_standard_lexicon(lexicon):
    validate_archetypes(lexicon)


def test_profile_for_every_region():
    assert set(REGION_PROFILES) == set(ALL_REGION_CODES)


def test_profiles_reference_known_archetypes():
    for profile in REGION_PROFILES.values():
        for key, weight in profile.archetype_weights:
            assert key in ARCHETYPES, (profile.region_code, key)
            assert weight > 0


def test_archetype_core_boosts_positive():
    for archetype in ARCHETYPES.values():
        for name, boost in archetype.core:
            assert boost > 0, (archetype.key, name)


def test_category_multiplier_values_valid():
    for archetype in ARCHETYPES.values():
        for value, multiplier in archetype.category_multipliers:
            Category(value)  # raises if invalid
            assert multiplier > 0


def test_profile_emphasis_categories_valid():
    for profile in REGION_PROFILES.values():
        for value, multiplier in profile.category_emphasis:
            Category(value)
            assert multiplier > 0


def test_validate_detects_unknown_core(tiny_lexicon):
    # The tiny lexicon lacks nearly all archetype core ingredients.
    with pytest.raises(SynthesisError):
        validate_archetypes(tiny_lexicon)


def test_size_means_reasonable():
    for profile in REGION_PROFILES.values():
        assert 6.0 <= profile.size_mean <= 12.0, profile.region_code


def test_spice_cuisines_emphasize_spice():
    insc = dict(REGION_PROFILES["INSC"].category_emphasis)
    anz = dict(REGION_PROFILES["ANZ"].category_emphasis)
    assert insc.get("Spice", 1.0) > anz.get("Spice", 1.0)


def test_dairy_light_cuisines():
    for code in ("JPN", "KOR", "THA", "SEA"):
        emphasis = dict(REGION_PROFILES[code].category_emphasis)
        assert emphasis.get("Dairy", 1.0) < 1.0, code
