"""Tests for the WorldKitchen generator."""

from __future__ import annotations

import pytest

from repro.config import PAPER
from repro.corpus.regions import get_region
from repro.errors import SynthesisError
from repro.synthesis.worldgen import WorldKitchen, generate_world_corpus


@pytest.fixture(scope="module")
def kitchen(lexicon):
    return WorldKitchen(lexicon, seed=77)


def test_generate_cuisine_count(kitchen):
    recipes = kitchen.generate_cuisine("KOR", n_recipes=100)
    assert len(recipes) == 100
    assert all(recipe.region_code == "KOR" for recipe in recipes)


def test_default_count_is_table1(kitchen):
    recipes = kitchen.generate_cuisine("CAM")
    assert len(recipes) == get_region("CAM").n_recipes


def test_sizes_in_paper_bounds(kitchen):
    recipes = kitchen.generate_cuisine("ITA", n_recipes=500)
    for recipe in recipes:
        assert PAPER.recipe_size_min <= recipe.size <= PAPER.recipe_size_max


def test_recipe_ids_sequential(kitchen):
    recipes = kitchen.generate_cuisine("KOR", n_recipes=10, start_recipe_id=50)
    assert [recipe.recipe_id for recipe in recipes] == list(range(50, 60))


def test_vocabulary_respects_region_target(kitchen):
    blueprint = kitchen.blueprint("KOR")
    assert blueprint.vocabulary_ids.size == get_region("KOR").n_ingredients


def test_signatures_in_vocabulary(kitchen, lexicon):
    blueprint = kitchen.blueprint("MEX")
    vocab = set(int(i) for i in blueprint.vocabulary_ids)
    for name in get_region("MEX").overrepresented:
        assert lexicon.by_name(name).ingredient_id in vocab


def test_deterministic_generation(lexicon):
    a = WorldKitchen(lexicon, seed=5).generate_cuisine("THA", n_recipes=50)
    b = WorldKitchen(lexicon, seed=5).generate_cuisine("THA", n_recipes=50)
    assert [r.ingredient_ids for r in a] == [r.ingredient_ids for r in b]


def test_seed_changes_output(lexicon):
    a = WorldKitchen(lexicon, seed=5).generate_cuisine("THA", n_recipes=50)
    b = WorldKitchen(lexicon, seed=6).generate_cuisine("THA", n_recipes=50)
    assert [r.ingredient_ids for r in a] != [r.ingredient_ids for r in b]


def test_generate_dataset_scale(kitchen):
    dataset = kitchen.generate_dataset(region_codes=("KOR", "CAM"), scale=0.1)
    assert dataset.cuisine("KOR").n_recipes == round(1228 * 0.1)
    # CAM would be 47; min_recipes floor default is 30, so 47 stands.
    assert dataset.cuisine("CAM").n_recipes == 47


def test_generate_dataset_min_floor(kitchen):
    dataset = kitchen.generate_dataset(region_codes=("CAM",), scale=0.01)
    assert dataset.cuisine("CAM").n_recipes == 30


def test_invalid_inputs(kitchen):
    with pytest.raises(SynthesisError):
        kitchen.generate_dataset(scale=0.0)
    with pytest.raises(SynthesisError):
        kitchen.generate_cuisine("KOR", n_recipes=-1)


def test_zero_recipes(kitchen):
    assert kitchen.generate_cuisine("KOR", n_recipes=0) == []


def test_raw_generation_roundtrips_through_etl(kitchen, lexicon):
    from repro.corpus.builder import compile_corpus

    raws = kitchen.generate_raw_cuisine("GRC", n_recipes=40)
    assert len(raws) == 40
    assert all(raw.region == "GRC" for raw in raws)
    assert all(raw.source for raw in raws)
    result = compile_corpus(raws, lexicon)
    # The renderer guarantees recoverability, so nearly everything
    # survives standardization (only the rare sub-minimum recipe drops).
    assert result.report.resolution_rate > 0.97
    assert result.report.n_compiled >= 38


def test_convenience_wrapper(lexicon):
    dataset = generate_world_corpus(
        lexicon, seed=3, scale=0.02, region_codes=("KOR", "JPN")
    )
    assert set(dataset.region_codes()) == {"JPN", "KOR"}


def test_titles_carry_archetype(kitchen):
    recipes = kitchen.generate_cuisine("ITA", n_recipes=20)
    assert all(recipe.title.startswith("ITA ") for recipe in recipes)


# ---------------------------------------------------------------------------
# Property-based checks
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.corpus.regions import ALL_REGION_CODES  # noqa: E402


@given(
    st.sampled_from(ALL_REGION_CODES),
    st.integers(1, 120),
    st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_generation_properties(lexicon, code, count, seed):
    """Any cuisine, any count, any seed: sizes bounded, ids valid,
    vocabulary within the blueprint, deterministic."""
    kitchen = WorldKitchen(lexicon, seed=seed)
    recipes = kitchen.generate_cuisine(code, n_recipes=count)
    assert len(recipes) == count
    vocabulary = set(int(i) for i in kitchen.blueprint(code).vocabulary_ids)
    for recipe in recipes:
        assert PAPER.recipe_size_min <= recipe.size
        assert recipe.size <= PAPER.recipe_size_max
        assert set(recipe.ingredient_ids) <= vocabulary
    again = WorldKitchen(lexicon, seed=seed).generate_cuisine(
        code, n_recipes=count
    )
    assert [r.ingredient_ids for r in again] == [
        r.ingredient_ids for r in recipes
    ]


# ---------------------------------------------------------------------------
# Streaming columnar generation
# ---------------------------------------------------------------------------


def test_generate_columnar_matches_generate_dataset(lexicon, tmp_path):
    """Cuisines that fit one chunk stream the exact in-memory world."""
    kitchen = WorldKitchen(lexicon, seed=1234)
    eager = kitchen.generate_dataset(region_codes=("ITA", "KOR"), scale=0.05)
    with WorldKitchen(lexicon, seed=1234).generate_columnar(
        tmp_path / "world.col", region_codes=("ITA", "KOR"), scale=0.05
    ) as corpus:
        assert list(corpus.to_dataset()) == list(eager)


def test_generate_columnar_chunked_is_deterministic(lexicon, tmp_path):
    """Multi-chunk cuisines are a fixed function of (seed, scale, chunk)."""
    first = tmp_path / "a.col"
    second = tmp_path / "b.col"
    for path in (first, second):
        WorldKitchen(lexicon, seed=7).generate_columnar(
            path, region_codes=("ITA",), scale=0.02, chunk_recipes=100
        ).close()
    assert first.read_bytes() == second.read_bytes()


def test_generate_columnar_chunked_world_is_valid(lexicon, tmp_path):
    from repro.config import PAPER

    with WorldKitchen(lexicon, seed=7).generate_columnar(
        tmp_path / "chunked.col",
        region_codes=("ITA",),
        scale=0.02,
        chunk_recipes=100,
    ) as corpus:
        region = get_region("ITA")
        expected = max(int(round(region.n_recipes * 0.02)), 30)
        assert corpus.cuisine_size("ITA") == expected
        sizes = corpus.sizes()
        assert sizes.min() >= PAPER.recipe_size_min
        assert sizes.max() <= PAPER.recipe_size_max
        ids = corpus.recipe_ids
        assert ids.tolist() == list(range(len(ids)))


def test_generate_columnar_scale_floor(lexicon, tmp_path):
    with WorldKitchen(lexicon, seed=7).generate_columnar(
        tmp_path / "floor.col", region_codes=("IRL",), scale=0.0001
    ) as corpus:
        assert corpus.cuisine_size("IRL") == 30
