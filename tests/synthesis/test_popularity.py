"""Tests for popularity machinery, incl. Gumbel top-k properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.rng import ensure_rng
from repro.synthesis.popularity import (
    gumbel_topk,
    truncated_normal_sizes,
    zipf_weights,
)


# ---------------------------------------------------------------------------
# zipf_weights
# ---------------------------------------------------------------------------


def test_zipf_normalized():
    weights = zipf_weights(100, 1.0)
    assert weights.sum() == pytest.approx(1.0)


def test_zipf_decreasing():
    weights = zipf_weights(50, 0.9)
    assert (np.diff(weights) <= 0).all()


def test_zipf_exponent_zero_is_uniform():
    weights = zipf_weights(10, 0.0)
    assert np.allclose(weights, 0.1)


def test_zipf_invalid_inputs():
    with pytest.raises(SynthesisError):
        zipf_weights(0)
    with pytest.raises(SynthesisError):
        zipf_weights(10, -1.0)


@given(st.integers(1, 500), st.floats(0.0, 3.0))
@settings(max_examples=60)
def test_zipf_properties(n, exponent):
    weights = zipf_weights(n, exponent)
    assert weights.shape == (n,)
    assert weights.sum() == pytest.approx(1.0)
    assert (weights > 0).all()


# ---------------------------------------------------------------------------
# gumbel_topk
# ---------------------------------------------------------------------------


def test_gumbel_topk_shapes():
    rng = ensure_rng(0)
    log_w = np.log(zipf_weights(20))
    draws = gumbel_topk(rng, log_w, np.array([3, 5, 1]))
    assert [d.size for d in draws] == [3, 5, 1]


def test_gumbel_topk_distinct_items():
    rng = ensure_rng(1)
    log_w = np.log(zipf_weights(15))
    for draw in gumbel_topk(rng, log_w, np.full(50, 10)):
        assert len(set(draw.tolist())) == 10


def test_gumbel_topk_oversample_raises():
    rng = ensure_rng(0)
    with pytest.raises(SynthesisError):
        gumbel_topk(rng, np.zeros(3), np.array([4]))


def test_gumbel_topk_empty():
    rng = ensure_rng(0)
    assert gumbel_topk(rng, np.zeros(3), np.array([], dtype=np.int64)) == []


def test_gumbel_topk_respects_exclusion():
    rng = ensure_rng(2)
    log_w = np.zeros(6)
    log_w[3] = -np.inf
    for draw in gumbel_topk(rng, log_w, np.full(30, 5)):
        assert 3 not in draw.tolist()


def test_gumbel_topk_weight_bias():
    # Item with overwhelming weight must almost always be drawn first.
    rng = ensure_rng(3)
    log_w = np.zeros(10)
    log_w[4] = 12.0
    firsts = [draw[0] for draw in gumbel_topk(rng, log_w, np.full(200, 3))]
    assert sum(1 for f in firsts if f == 4) > 190


def test_gumbel_topk_rejects_2d():
    rng = ensure_rng(0)
    with pytest.raises(SynthesisError):
        gumbel_topk(rng, np.zeros((2, 3)), np.array([1]))


# ---------------------------------------------------------------------------
# truncated_normal_sizes
# ---------------------------------------------------------------------------


def test_sizes_within_bounds():
    rng = ensure_rng(4)
    sizes = truncated_normal_sizes(rng, 5000, mean=9, sigma=3.2, lower=2, upper=38)
    assert sizes.min() >= 2
    assert sizes.max() <= 38
    assert abs(sizes.mean() - 9) < 0.5


def test_sizes_zero_count():
    rng = ensure_rng(0)
    assert truncated_normal_sizes(rng, 0, 9, 3, 2, 38).size == 0


def test_sizes_invalid_bounds():
    rng = ensure_rng(0)
    with pytest.raises(SynthesisError):
        truncated_normal_sizes(rng, 10, 9, 3, lower=10, upper=5)
    with pytest.raises(SynthesisError):
        truncated_normal_sizes(rng, -1, 9, 3, 2, 38)


def test_sizes_extreme_mean_clipped():
    rng = ensure_rng(5)
    sizes = truncated_normal_sizes(rng, 100, mean=100, sigma=1, lower=2, upper=38)
    assert (sizes == 38).all()


@given(
    st.integers(0, 500),
    st.floats(2.0, 20.0),
    st.floats(0.5, 6.0),
)
@settings(max_examples=40)
def test_sizes_property_bounds(count, mean, sigma):
    rng = ensure_rng(7)
    sizes = truncated_normal_sizes(rng, count, mean, sigma, 2, 38)
    assert sizes.size == count
    if count:
        assert sizes.min() >= 2
        assert sizes.max() <= 38
