"""Tests for the messy mention renderer."""

from __future__ import annotations

from repro.synthesis.noise import MentionRenderer


def test_render_is_recoverable(lexicon):
    """Every validated rendering must resolve back to its entity."""
    renderer = MentionRenderer(seed=0, validate_with=lexicon.resolver)
    sample = list(lexicon)[::13]
    for ingredient in sample:
        for _ in range(5):
            mention = renderer.render(ingredient)
            resolution = lexicon.resolve(mention)
            assert resolution.ingredient is not None, mention
            assert resolution.ingredient.name == ingredient.name, mention


def test_render_without_validation_mostly_recoverable(lexicon):
    """Even unvalidated renderings resolve correctly almost always."""
    renderer = MentionRenderer(seed=0)
    hits = 0
    total = 0
    for ingredient in list(lexicon)[::7]:
        for _ in range(3):
            total += 1
            resolution = lexicon.resolve(renderer.render(ingredient))
            if (
                resolution.ingredient is not None
                and resolution.ingredient.name == ingredient.name
            ):
                hits += 1
    assert hits / total > 0.97


def test_render_all_covers_recipe(lexicon):
    renderer = MentionRenderer(seed=1)
    ingredients = [lexicon.by_name(n) for n in ("tomato", "onion", "garlic")]
    mentions = renderer.render_all(ingredients)
    assert len(mentions) == 3
    resolved = {lexicon.resolve(m).ingredient.name for m in mentions}
    assert resolved == {"tomato", "onion", "garlic"}


def test_render_deterministic(lexicon):
    a = MentionRenderer(seed=5).render(lexicon.by_name("basil"))
    b = MentionRenderer(seed=5).render(lexicon.by_name("basil"))
    assert a == b


def test_render_produces_noise(lexicon):
    renderer = MentionRenderer(seed=2)
    mentions = {renderer.render(lexicon.by_name("tomato")) for _ in range(30)}
    assert len(mentions) > 5  # actual variety
    assert any(m != "tomato" for m in mentions)
