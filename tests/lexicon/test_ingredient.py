"""Tests for the Ingredient entity."""

from __future__ import annotations

import pytest

from repro.lexicon.categories import Category
from repro.lexicon.ingredient import Ingredient


def test_simple_ingredient_roundtrip():
    ing = Ingredient(1, "tomato", Category.VEGETABLE, aliases=("roma tomato",))
    assert ing.name == "tomato"
    assert not ing.is_compound
    assert ing.surface_forms == ("tomato", "roma tomato")


def test_compound_requires_components():
    with pytest.raises(ValueError):
        Ingredient(1, "tomato puree", Category.ADDITIVE, is_compound=True)


def test_simple_rejects_components():
    with pytest.raises(ValueError):
        Ingredient(1, "tomato", Category.VEGETABLE, components=("x",))


def test_name_must_be_lowercase():
    with pytest.raises(ValueError):
        Ingredient(1, "Tomato", Category.VEGETABLE)


def test_name_must_be_stripped():
    with pytest.raises(ValueError):
        Ingredient(1, " tomato", Category.VEGETABLE)


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        Ingredient(1, "", Category.VEGETABLE)


def test_compound_with_components_ok():
    ing = Ingredient(
        2, "ginger garlic paste", Category.ADDITIVE,
        is_compound=True, components=("ginger", "garlic"),
    )
    assert ing.components == ("ginger", "garlic")
    assert str(ing) == "ginger garlic paste"


def test_frozen():
    ing = Ingredient(1, "tomato", Category.VEGETABLE)
    with pytest.raises(AttributeError):
        ing.name = "potato"  # type: ignore[misc]
