"""Tests for the 21 paper categories."""

from __future__ import annotations

import pytest

from repro.config import PAPER
from repro.errors import UnknownCategoryError
from repro.lexicon.categories import (
    CATEGORY_INFO,
    CORE_CATEGORIES,
    Category,
    parse_category,
)


def test_exactly_21_categories():
    assert len(Category) == PAPER.n_categories == 21


def test_paper_category_names_present():
    values = {category.value for category in Category}
    for name in (
        "Vegetable", "Dairy", "Legume", "Maize", "Cereal", "Meat",
        "Nuts and Seeds", "Plant", "Fish", "Seafood", "Spice", "Bakery",
        "Beverage Alcoholic", "Beverage", "Essential Oil", "Flower",
        "Fruit", "Fungus", "Herb", "Additive", "Dish",
    ):
        assert name in values


def test_parse_category_by_value():
    assert parse_category("Spice") is Category.SPICE
    assert parse_category("nuts and seeds") is Category.NUTS_AND_SEEDS


def test_parse_category_by_enum_name():
    assert parse_category("NUTS_AND_SEEDS") is Category.NUTS_AND_SEEDS
    assert parse_category("beverage_alcoholic") is Category.BEVERAGE_ALCOHOLIC


def test_parse_category_passthrough():
    assert parse_category(Category.HERB) is Category.HERB


def test_parse_category_unknown_raises():
    with pytest.raises(UnknownCategoryError):
        parse_category("Unobtainium")


def test_category_info_covers_all_categories():
    assert set(CATEGORY_INFO) == set(Category)


def test_category_info_display_orders_unique():
    orders = [info.display_order for info in CATEGORY_INFO.values()]
    assert len(set(orders)) == len(orders)


def test_core_categories_are_the_papers_seven():
    assert set(CORE_CATEGORIES) == {
        Category.VEGETABLE, Category.ADDITIVE, Category.SPICE,
        Category.DAIRY, Category.HERB, Category.PLANT, Category.FRUIT,
    }


def test_core_categories_have_high_staple_weight():
    core_weights = [CATEGORY_INFO[c].staple_weight for c in CORE_CATEGORIES]
    other_weights = [
        info.staple_weight
        for category, info in CATEGORY_INFO.items()
        if category not in CORE_CATEGORIES
    ]
    assert min(core_weights) >= max(other_weights)


def test_str_is_display_value():
    assert str(Category.ESSENTIAL_OIL) == "Essential Oil"
