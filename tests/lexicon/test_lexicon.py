"""Tests for the Lexicon container."""

from __future__ import annotations

import pytest

from repro.errors import LexiconError, UnknownIngredientError
from repro.lexicon.categories import Category
from repro.lexicon.ingredient import Ingredient
from repro.lexicon.lexicon import Lexicon


def test_lookup_by_id(tiny_lexicon):
    assert tiny_lexicon.by_id(0).name == "tomato"


def test_lookup_by_name(tiny_lexicon):
    assert tiny_lexicon.by_name("tomato").ingredient_id == 0
    assert tiny_lexicon.by_name("  Tomato ").ingredient_id == 0


def test_unknown_lookups_raise(tiny_lexicon):
    with pytest.raises(UnknownIngredientError):
        tiny_lexicon.by_id(999)
    with pytest.raises(UnknownIngredientError):
        tiny_lexicon.by_name("saffron gold")


def test_get_returns_none(tiny_lexicon):
    assert tiny_lexicon.get("nonexistent") is None
    assert tiny_lexicon.get("tomato") is not None


def test_contains(tiny_lexicon):
    assert "tomato" in tiny_lexicon
    assert 0 in tiny_lexicon
    assert tiny_lexicon.by_id(0) in tiny_lexicon
    assert "dragon" not in tiny_lexicon
    assert 3.5 not in tiny_lexicon


def test_by_category(tiny_lexicon):
    vegetables = tiny_lexicon.by_category(Category.VEGETABLE)
    assert [v.name for v in vegetables] == ["tomato", "onion", "garlic"]
    spices = tiny_lexicon.by_category("Spice")
    assert [s.name for s in spices] == ["cumin", "paprika"]


def test_iteration_ordered_by_id(tiny_lexicon):
    ids = [i.ingredient_id for i in tiny_lexicon]
    assert ids == sorted(ids)


def test_resolve_uses_protocol(tiny_lexicon):
    assert tiny_lexicon.resolve("2 roma tomatoes").ingredient.name == "tomato"


def test_category_of(tiny_lexicon):
    assert tiny_lexicon.category_of(5) is Category.SPICE


def test_duplicate_ids_rejected():
    with pytest.raises(LexiconError):
        Lexicon(
            [
                Ingredient(0, "a", Category.SPICE),
                Ingredient(0, "b", Category.SPICE),
            ]
        )


def test_duplicate_names_rejected():
    with pytest.raises(LexiconError):
        Lexicon(
            [
                Ingredient(0, "a", Category.SPICE),
                Ingredient(1, "a", Category.SPICE),
            ]
        )


def test_unknown_component_rejected():
    with pytest.raises(LexiconError):
        Lexicon(
            [
                Ingredient(0, "a paste", Category.ADDITIVE,
                           is_compound=True, components=("missing",)),
            ]
        )


def test_records_roundtrip(tiny_lexicon):
    rebuilt = Lexicon.from_records(tiny_lexicon.to_records())
    assert rebuilt.to_records() == tiny_lexicon.to_records()


def test_save_load_roundtrip(tiny_lexicon, tmp_path):
    path = tmp_path / "lexicon.json"
    tiny_lexicon.save(path)
    loaded = Lexicon.load(path)
    assert loaded.to_records() == tiny_lexicon.to_records()


def test_category_sizes(tiny_lexicon):
    sizes = tiny_lexicon.category_sizes()
    assert sizes[Category.VEGETABLE] == 3
    assert sizes[Category.DAIRY] == 2
    assert sizes[Category.MAIZE] == 0


def test_names_and_ids_aligned(tiny_lexicon):
    assert len(tiny_lexicon.names) == len(tiny_lexicon.ids) == 10
