"""Tests for standard lexicon construction."""

from __future__ import annotations

import pytest

from repro.config import PAPER
from repro.errors import LexiconError
from repro.lexicon import _seed_data as seed
from repro.lexicon.builder import (
    MIN_CATEGORY_SIZE,
    build_standard_lexicon,
    standard_lexicon,
)
from repro.lexicon.categories import Category


def test_paper_exact_counts(lexicon):
    assert len(lexicon) == PAPER.n_lexicon_entities == 721
    assert len(lexicon.compound_ingredients) == PAPER.n_compound_ingredients == 96
    assert len(lexicon.simple_ingredients) == 721 - 96 == 625


def test_every_category_populated(lexicon):
    sizes = lexicon.category_sizes()
    assert set(sizes) == set(Category)
    for category, size in sizes.items():
        assert size >= 1, category


def test_simple_categories_meet_floor(lexicon):
    simple_sizes: dict[Category, int] = {}
    for ingredient in lexicon.simple_ingredients:
        simple_sizes[ingredient.category] = (
            simple_sizes.get(ingredient.category, 0) + 1
        )
    for category, size in simple_sizes.items():
        assert size >= MIN_CATEGORY_SIZE, category


def test_deterministic_build(lexicon):
    rebuilt = build_standard_lexicon()
    assert rebuilt.to_records() == lexicon.to_records()


def test_standard_lexicon_cached():
    assert standard_lexicon() is standard_lexicon()


def test_protected_names_survive(lexicon):
    for name in seed.PROTECTED_NAMES:
        assert lexicon.get(name) is not None, name


def test_table1_signatures_survive(lexicon):
    from repro.corpus.regions import REGIONS

    for region in REGIONS:
        for name in region.overrepresented:
            assert lexicon.get(name) is not None, (region.code, name)


def test_compound_components_resolve(lexicon):
    for compound in lexicon.compound_ingredients:
        for component in compound.components:
            assert lexicon.get(component) is not None, (
                compound.name, component,
            )


def test_ids_are_dense_and_sorted(lexicon):
    ids = lexicon.ids
    assert ids == tuple(range(len(lexicon)))


def test_custom_smaller_lexicon():
    small = build_standard_lexicon(n_simple=400, n_compound=40)
    assert len(small.simple_ingredients) == 400
    assert len(small.compound_ingredients) == 40


def test_padding_path_mints_generated_entities():
    big = build_standard_lexicon(n_simple=800, n_compound=96)
    assert len(big.simple_ingredients) == 800
    generated = [i for i in big.simple_ingredients if not i.curated]
    assert generated, "expected minted long-tail entities"
    # Minted names are modifier + curated base.
    assert all(" " in i.name for i in generated)


def test_compound_padding_path():
    extra = build_standard_lexicon(n_simple=625, n_compound=120)
    assert len(extra.compound_ingredients) == 120
    padded = [c for c in extra.compound_ingredients if not c.curated]
    assert padded
    for compound in padded:
        assert compound.components


def test_invalid_sizes_rejected():
    with pytest.raises(LexiconError):
        build_standard_lexicon(n_simple=0)
    with pytest.raises(LexiconError):
        build_standard_lexicon(n_compound=-1)


def test_overly_small_simple_target_rejected():
    # Cannot trim below the protected set.
    with pytest.raises(LexiconError):
        build_standard_lexicon(n_simple=50, n_compound=96)
