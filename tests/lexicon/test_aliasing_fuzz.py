"""Fuzz tests: the aliasing protocol never crashes and stays consistent."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lexicon.aliasing import normalize_mention


@given(st.text(max_size=200))
@settings(max_examples=300, deadline=None)
def test_resolver_total_on_arbitrary_text(lexicon, text):
    """resolve() accepts any string and returns a coherent Resolution."""
    resolution = lexicon.resolve(text)
    assert resolution.normalized == normalize_mention(text)
    if resolution.ingredient is not None:
        assert resolution.resolved
        assert resolution.matched_form
        # The matched form itself must resolve to the same entity.
        again = lexicon.resolve(resolution.matched_form)
        assert again.ingredient is not None
        assert again.ingredient.name == resolution.ingredient.name
    else:
        assert not resolution.resolved
        assert resolution.matched_form == ""


@given(
    st.lists(
        st.sampled_from([
            "2", "1/2", "cups", "tbsp", "fresh", "chopped", "tomato",
            "garlic", "soy", "sauce", "olive", "oil", "and", "of", "-",
            ",", "(", ")", "LARGE", "Paste", "ginger",
        ]),
        min_size=0,
        max_size=10,
    )
)
@settings(max_examples=300, deadline=None)
def test_resolver_on_recipe_like_token_soup(lexicon, tokens):
    """Recipe-shaped token soup never crashes the protocol."""
    mention = " ".join(tokens)
    resolution = lexicon.resolve(mention)
    if resolution.ingredient is not None:
        assert resolution.ingredient.name in lexicon.names


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz -'", max_size=60))
@settings(max_examples=200, deadline=None)
def test_resolution_idempotent_under_renormalization(lexicon, text):
    """Resolving the normalized form gives the same entity."""
    first = lexicon.resolve(text)
    second = lexicon.resolve(first.normalized)
    if first.ingredient is None:
        assert second.ingredient is None
    else:
        assert second.ingredient is not None
        assert second.ingredient.name == first.ingredient.name
