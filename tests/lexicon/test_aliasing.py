"""Tests for the aliasing protocol, including property-based checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AliasConflictError
from repro.lexicon.aliasing import (
    STOP_WORDS,
    UNIT_WORDS,
    AliasResolver,
    normalize_mention,
    singularize,
)
from repro.lexicon.categories import Category
from repro.lexicon.ingredient import Ingredient


# ---------------------------------------------------------------------------
# normalize_mention
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "raw, expected",
    [
        ("2 cups flour", "flour"),
        ("1/2 tsp salt", "salt"),
        ("3 cloves garlic, minced", "clove garlic minced"),
        ("Fresh Basil Leaves", "fresh basil leaf"),
        ("1 (14 oz) can coconut milk", "coconut milk"),
        ("butter, softened", "butter softened"),
        ("juice of 1 lemon", "juice lemon"),
        ("", ""),
        ("2 1/2", ""),
    ],
)
def test_normalize_examples(raw, expected):
    assert normalize_mention(raw) == expected


def test_normalize_removes_parentheticals():
    assert normalize_mention("1 (about 3 pounds) chicken") == "chicken"


@given(st.text(max_size=80))
@settings(max_examples=200)
def test_normalize_idempotent(text):
    once = normalize_mention(text)
    assert normalize_mention(once) == once


@given(st.text(max_size=80))
@settings(max_examples=200)
def test_normalize_output_shape(text):
    result = normalize_mention(text)
    assert result == result.strip().lower()
    assert "  " not in result
    for token in result.split():
        assert token not in UNIT_WORDS
        assert token not in STOP_WORDS


# ---------------------------------------------------------------------------
# singularize
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "plural, singular",
    [
        ("tomatoes", "tomato"),
        ("berries", "berry"),
        ("leaves", "leaf"),
        ("onions", "onion"),
        ("molasses", "molasses"),
        ("asparagus", "asparagus"),
        ("couscous", "couscous"),
        ("eggs", "egg"),
        ("peaches", "peach"),
        ("radishes", "radish"),
        ("chives", "chive"),
    ],
)
def test_singularize_examples(plural, singular):
    assert singularize(plural) == singular


def test_singularize_short_tokens_untouched():
    assert singularize("gas") == "gas"
    assert singularize("is") == "is"


# ---------------------------------------------------------------------------
# AliasResolver on a controlled lexicon
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def resolver() -> AliasResolver:
    ingredients = [
        Ingredient(0, "tomato", Category.VEGETABLE),
        Ingredient(1, "tomato puree", Category.ADDITIVE,
                   is_compound=True, components=("tomato",)),
        Ingredient(2, "soybean sauce", Category.ADDITIVE,
                   aliases=("soy sauce",)),
        Ingredient(3, "garlic", Category.VEGETABLE,
                   aliases=("garlic clove", "cloves garlic")),
        Ingredient(4, "clove", Category.SPICE),
        Ingredient(5, "olive", Category.FRUIT),
        Ingredient(6, "olive oil", Category.ESSENTIAL_OIL,
                   aliases=("extra virgin olive oil",)),
    ]
    return AliasResolver(ingredients)


def test_longest_match_wins_compound(resolver):
    assert resolver.resolve("2 cups tomato puree").ingredient.name == "tomato puree"


def test_longest_match_wins_oil(resolver):
    assert resolver.resolve("olive oil").ingredient.name == "olive oil"
    assert resolver.resolve("3 olives").ingredient.name == "olive"


def test_alias_resolution(resolver):
    assert resolver.resolve("1 tbsp soy sauce").ingredient.name == "soybean sauce"


def test_descriptor_stripping(resolver):
    assert resolver.resolve("finely chopped fresh tomato").ingredient.name == "tomato"


def test_garlic_vs_clove_disambiguation(resolver):
    assert resolver.resolve("2 cloves garlic").ingredient.name == "garlic"
    assert resolver.resolve("3 whole cloves").ingredient.name == "clove"


def test_plural_mentions(resolver):
    assert resolver.resolve("tomatoes").ingredient.name == "tomato"


def test_unresolvable_returns_none(resolver):
    resolution = resolver.resolve("unicorn tears")
    assert resolution.ingredient is None
    assert not resolution.resolved


def test_empty_mention(resolver):
    assert resolver.resolve("").ingredient is None
    assert resolver.resolve("2 1/2 cups").ingredient is None


def test_window_fallback_extracts_entity(resolver):
    resolution = resolver.resolve("organic heritage tomato from the garden")
    assert resolution.ingredient.name == "tomato"


def test_resolve_many_preserves_order(resolver):
    resolutions = resolver.resolve_many(["tomato", "soy sauce"])
    assert [r.ingredient.name for r in resolutions] == ["tomato", "soybean sauce"]


def test_conflicting_aliases_raise():
    with pytest.raises(AliasConflictError):
        AliasResolver(
            [
                Ingredient(0, "soybean sauce", Category.ADDITIVE,
                           aliases=("soy",)),
                Ingredient(1, "soybean", Category.LEGUME, aliases=("soy",)),
            ]
        )


def test_duplicate_alias_same_entity_ok():
    resolver = AliasResolver(
        [Ingredient(0, "pepper", Category.SPICE,
                    aliases=("peppercorn", "peppercorns"))]
    )
    assert resolver.resolve("peppercorns").ingredient.name == "pepper"


# ---------------------------------------------------------------------------
# Protocol properties on the full standard lexicon
# ---------------------------------------------------------------------------


def test_every_canonical_name_resolves_to_itself(lexicon):
    for ingredient in lexicon:
        resolution = lexicon.resolve(ingredient.name)
        assert resolution.ingredient is not None, ingredient.name
        assert resolution.ingredient.name == ingredient.name


def test_every_alias_resolves_to_its_entity(lexicon):
    for ingredient in lexicon:
        for alias in ingredient.aliases:
            resolution = lexicon.resolve(alias)
            assert resolution.ingredient is not None, alias
            assert resolution.ingredient.name == ingredient.name, alias


def test_descriptors_do_not_shadow_canonical_names(lexicon):
    # A canonical name wrapped in descriptors must still resolve to the
    # same entity.
    for ingredient in list(lexicon)[::23]:
        wrapped = f"2 cups fresh chopped {ingredient.name}"
        resolution = lexicon.resolve(wrapped)
        assert resolution.ingredient is not None, wrapped
        assert resolution.ingredient.name == ingredient.name, wrapped
