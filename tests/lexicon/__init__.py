"""Test package: lexicon."""
