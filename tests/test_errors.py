"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_unknown_ingredient_error_is_key_error():
    with pytest.raises(KeyError):
        raise errors.UnknownIngredientError("dragon scale")


def test_unknown_ingredient_error_carries_query():
    exc = errors.UnknownIngredientError("dragon scale")
    assert exc.query == "dragon scale"
    assert "dragon scale" in str(exc)


def test_unknown_category_error_carries_query():
    exc = errors.UnknownCategoryError("Mythical")
    assert exc.query == "Mythical"


def test_alias_conflict_error_names_both_entities():
    exc = errors.AliasConflictError("soy", "soybean", "soybean sauce")
    assert exc.alias == "soy"
    assert "soybean" in str(exc)
    assert "soybean sauce" in str(exc)


def test_parameter_error_is_value_error():
    assert issubclass(errors.ParameterError, ValueError)


def test_domain_errors_are_catchable_by_domain():
    assert issubclass(errors.MiningError, errors.AnalysisError)
    assert issubclass(errors.MetricError, errors.AnalysisError)
    assert issubclass(errors.QueryError, errors.StorageError)
    assert issubclass(errors.CalibrationError, errors.SynthesisError)
    assert issubclass(errors.UnknownRegionError, errors.CorpusError)
