"""Spool telemetry and compaction tests (``repro spool stats|compact``).

The broom's contract is what these tests pin down: :func:`compact_spool`
removes exactly the dead debris — stale claims and their heartbeats,
orphaned heartbeats, long-gone worker markers, aged results and
stranded temps — and never touches live state: pending tasks, beating
claims, fresh temps.  Both entry points take an injectable ``now`` so
staleness is tested against a fixed clock, not wall time.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ExecutionError
from repro.runtime import Spool, compact_spool, spool_stats
from repro.runtime.distributed import (
    ALIVE_SUFFIX,
    CLAIM_SUFFIX,
    HEARTBEAT_SUFFIX,
    RESULT_SUFFIX,
    TASK_SUFFIX,
)

NOW = 1_000_000.0
STALE = 60.0


@pytest.fixture()
def spool(tmp_path):
    s = Spool(root=tmp_path / "spool")
    s.ensure()
    return s


def _touch(path, age: float = 0.0) -> None:
    path.write_bytes(b"x")
    os.utime(path, (NOW - age, NOW - age))


def test_stats_and_compact_require_a_spool(tmp_path):
    with pytest.raises(ExecutionError, match="no spool directory"):
        spool_stats(tmp_path / "missing")
    with pytest.raises(ExecutionError, match="no spool directory"):
        compact_spool(tmp_path / "missing")
    with pytest.raises(ExecutionError, match="> 0"):
        spool_stats(tmp_path, stale_after=0.0)
    with pytest.raises(ExecutionError, match="> 0"):
        compact_spool(tmp_path, stale_after=-1.0)


def test_empty_spool_stats(spool):
    stats = spool_stats(spool.root, stale_after=STALE, now=NOW)
    assert stats.pending_tasks == 0
    assert stats.claimed == 0
    assert stats.stale_claims == 0
    assert stats.live_workers == 0
    assert stats.attempts == {}
    assert not stats.stop_signaled


def test_stats_categorize_everything(spool):
    _touch(spool.tasks / f"t0.a01{TASK_SUFFIX}")
    _touch(spool.tasks / f"t1.a01{TASK_SUFFIX}")
    # A live claim: fresh heartbeat.
    _touch(spool.claimed / f"t2.a01.w0{CLAIM_SUFFIX}", age=120.0)
    _touch(spool.claimed / f"t2.a01.w0{HEARTBEAT_SUFFIX}", age=1.0)
    # A dead claim: heartbeat went stale.
    _touch(spool.claimed / f"t3.a01.w1{CLAIM_SUFFIX}", age=300.0)
    _touch(spool.claimed / f"t3.a01.w1{HEARTBEAT_SUFFIX}", age=290.0)
    _touch(spool.results / f"t4{RESULT_SUFFIX}", age=5.0)
    _touch(spool.workers / f"w0{ALIVE_SUFFIX}", age=1.0)
    _touch(spool.workers / f"w9{ALIVE_SUFFIX}", age=999.0)
    _touch(spool.tasks / "t5.a01.task.tmp.123", age=400.0)
    spool.stop_path.touch()
    spool.attempts_path.write_text(
        json.dumps({"outcome": "completed"}) + "\n"
        + json.dumps({"outcome": "completed"}) + "\n"
        + json.dumps({"outcome": "lease_expired"}) + "\n"
        + "{broken\n",
        encoding="utf-8",
    )

    stats = spool_stats(spool.root, stale_after=STALE, now=NOW)
    assert stats.pending_tasks == 2
    assert stats.claimed == 2
    assert stats.stale_claims == 1
    assert stats.results == 1
    assert stats.live_workers == 1
    assert stats.dead_workers == 1
    assert stats.orphan_tmp == 1
    assert stats.stop_signaled
    assert stats.attempts == {
        "completed": 2, "lease_expired": 1, "unparseable": 1,
    }


def test_compact_removes_only_dead_debris(spool):
    # Live state — all of this must survive compaction untouched.
    pending = spool.tasks / f"t0.a01{TASK_SUFFIX}"
    _touch(pending, age=9999.0)  # pending tasks are never aged out
    live_claim = spool.claimed / f"t1.a01.w0{CLAIM_SUFFIX}"
    live_beat = spool.claimed / f"t1.a01.w0{HEARTBEAT_SUFFIX}"
    _touch(live_claim, age=500.0)
    _touch(live_beat, age=2.0)  # still beating
    live_worker = spool.workers / f"w0{ALIVE_SUFFIX}"
    _touch(live_worker, age=3.0)
    fresh_result = spool.results / f"t2{RESULT_SUFFIX}"
    _touch(fresh_result, age=4.0)
    fresh_tmp = spool.results / "t3.result.tmp.55"
    _touch(fresh_tmp, age=5.0)  # may be a concurrent writer mid-rename

    # Debris — all of this must go.
    dead_claim = spool.claimed / f"t4.a01.w1{CLAIM_SUFFIX}"
    dead_beat = spool.claimed / f"t4.a01.w1{HEARTBEAT_SUFFIX}"
    _touch(dead_claim, age=400.0)
    _touch(dead_beat, age=400.0)
    orphan_beat = spool.claimed / f"t5.a01.w2{HEARTBEAT_SUFFIX}"
    _touch(orphan_beat, age=1.0)  # claim already gone: age-exempt
    dead_worker = spool.workers / f"w9{ALIVE_SUFFIX}"
    _touch(dead_worker, age=800.0)
    old_result = spool.results / f"t6{RESULT_SUFFIX}"
    _touch(old_result, age=700.0)
    old_tmp = spool.tasks / "t7.a01.task.tmp.99"
    _touch(old_tmp, age=600.0)

    removed = compact_spool(spool.root, stale_after=STALE, now=NOW)
    assert removed.stale_claims == 1
    assert removed.orphan_heartbeats == 1
    assert removed.dead_workers == 1
    assert removed.stale_results == 1
    assert removed.orphan_tmp == 1
    assert removed.total == 5

    for survivor in (
        pending, live_claim, live_beat, live_worker, fresh_result, fresh_tmp,
    ):
        assert survivor.exists(), survivor
    for gone in (
        dead_claim, dead_beat, orphan_beat, dead_worker, old_result, old_tmp,
    ):
        assert not gone.exists(), gone


def test_claim_without_heartbeat_judged_by_claim_age(spool):
    # Renamed moments ago, heartbeat not yet touched: live.
    young = spool.claimed / f"t0.a01.w0{CLAIM_SUFFIX}"
    _touch(young, age=1.0)
    # Claimed long ago, no heartbeat ever: dead.
    old = spool.claimed / f"t1.a01.w1{CLAIM_SUFFIX}"
    _touch(old, age=500.0)

    stats = spool_stats(spool.root, stale_after=STALE, now=NOW)
    assert stats.stale_claims == 1
    removed = compact_spool(spool.root, stale_after=STALE, now=NOW)
    assert removed.stale_claims == 1
    assert young.exists()
    assert not old.exists()


def test_compact_is_idempotent(spool):
    _touch(spool.claimed / f"t0.a01.w0{CLAIM_SUFFIX}", age=500.0)
    first = compact_spool(spool.root, stale_after=STALE, now=NOW)
    assert first.total == 1
    second = compact_spool(spool.root, stale_after=STALE, now=NOW)
    assert second.total == 0
