"""Checkpoint store and cache-integrity tests (DESIGN.md §9).

The store's promise is narrow and absolute: :meth:`CheckpointStore.put`
either lands a complete, checksummed snapshot or leaves only a temp
file, and :meth:`CheckpointStore.latest` never returns bytes that fail
a check — torn, truncated, bit-flipped and version-skewed snapshots are
quarantined with a recorded :class:`CacheCorruption` and the scan falls
back to the next older one.  The run-cache side of the same contract
(corrupt entries evicted loudly, orphan temps swept) is covered here
too, because the two stores share the crash-consistency discipline.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import RunCacheError
from repro.runtime import (
    CHECKPOINT_FORMAT_VERSION,
    CacheCorruptionWarning,
    CheckpointPolicy,
    CheckpointStore,
    RunCache,
    RunCheckpointer,
    cache_corruptions,
    clear_cache_corruptions,
    clear_resume_events,
    resume_events,
)
from repro.runtime.checkpoint import (
    KEEP_SNAPSHOTS,
    QUARANTINE_SUFFIX,
    arm_kill_at_step,
    consume_armed_kill,
    disarm_kill,
)


@pytest.fixture(autouse=True)
def _clean_records():
    clear_cache_corruptions()
    clear_resume_events()
    disarm_kill()
    yield
    clear_cache_corruptions()
    clear_resume_events()
    disarm_kill()


# ---------------------------------------------------------------------------
# Store round-trip, retention, lifecycle
# ---------------------------------------------------------------------------


def test_put_latest_round_trip(tmp_path):
    store = CheckpointStore(tmp_path)
    payload = {"step": 3, "planes": [1.0, 2.0], "rng": b"\x00\x01"}
    store.put("runA", 3, payload)
    assert store.latest("runA") == (3, payload)
    # Keys are isolated from each other.
    assert store.latest("runB") is None


def test_retention_keeps_newest_snapshots(tmp_path):
    store = CheckpointStore(tmp_path)
    for step in (2, 4, 6, 8):
        store.put("run", step, {"at": step})
    assert store.steps("run") == (8, 6)
    assert len(store.steps("run")) == KEEP_SNAPSHOTS
    assert store.latest("run") == (8, {"at": 8})


def test_discard_and_len(tmp_path):
    store = CheckpointStore(tmp_path)
    store.put("a", 1, "x")
    store.put("b", 1, "y")
    assert len(store) == 2
    assert store.discard("a") == 1
    assert len(store) == 1
    assert store.latest("a") is None


def test_put_rejects_nonpositive_step(tmp_path):
    store = CheckpointStore(tmp_path)
    with pytest.raises(RunCacheError, match=">= 1"):
        store.put("run", 0, "x")


def test_store_rejects_file_path(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("x")
    with pytest.raises(RunCacheError, match="not a\n?.*directory"):
        CheckpointStore(blocker)


def test_policy_validation():
    with pytest.raises(RunCacheError, match=">= 1"):
        CheckpointPolicy(directory="d", every=0)
    assert CheckpointPolicy(directory="d", every=5).every == 5


# ---------------------------------------------------------------------------
# Corruption: quarantine, fall-back, structured records
# ---------------------------------------------------------------------------


def test_bit_flip_quarantines_and_falls_back(tmp_path):
    store = CheckpointStore(tmp_path)
    store.put("run", 4, {"at": 4})
    path = store.put("run", 8, {"at": 8})
    blob = bytearray(path.read_bytes())
    blob[-10] ^= 0xFF  # flip a bit inside the pickled payload
    path.write_bytes(bytes(blob))

    with pytest.warns(CacheCorruptionWarning):
        assert store.latest("run") == (4, {"at": 4})
    assert not path.exists()
    quarantined = list(tmp_path.glob(f"*{QUARANTINE_SUFFIX}"))
    assert len(quarantined) == 1
    events = cache_corruptions()
    assert len(events) == 1
    assert events[0].store == "CheckpointStore"
    assert events[0].action == "quarantined"


def test_truncated_snapshot_is_torn(tmp_path):
    store = CheckpointStore(tmp_path)
    path = store.put("run", 2, {"at": 2})
    path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
    with pytest.warns(CacheCorruptionWarning):
        assert store.latest("run") is None
    assert cache_corruptions()[0].kind == "torn-snapshot"


def test_format_version_mismatch_discarded(tmp_path):
    store = CheckpointStore(tmp_path)
    path = store.path_for("run", 5)
    wrapper = {
        "version": CHECKPOINT_FORMAT_VERSION + 1,
        "step": 5,
        "sha256": "0" * 64,
        "payload": b"irrelevant",
    }
    path.write_bytes(pickle.dumps(wrapper))
    with pytest.warns(CacheCorruptionWarning):
        assert store.latest("run") is None
    assert cache_corruptions()[0].kind == "format-version"


def test_every_snapshot_corrupt_means_fresh_start(tmp_path):
    store = CheckpointStore(tmp_path)
    for step in (3, 6):
        path = store.put("run", step, {"at": step})
        path.write_bytes(b"garbage")
    with pytest.warns(CacheCorruptionWarning):
        assert store.latest("run") is None  # restart from step 0
    assert len(cache_corruptions()) == 2
    assert len(list(tmp_path.glob(f"*{QUARANTINE_SUFFIX}"))) == 2


def test_corruption_warns_once_per_store_and_kind(tmp_path):
    store = CheckpointStore(tmp_path)
    path1 = store.put("a", 1, "x")
    path1.write_bytes(b"junk")
    with pytest.warns(CacheCorruptionWarning):
        store.latest("a")
    # Same (store, kind) again: recorded, but no second warning.
    path2 = store.put("b", 1, "y")
    path2.write_bytes(b"junk")
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        store.latest("b")
    assert len(cache_corruptions()) == 2


# ---------------------------------------------------------------------------
# Crash-window debris: orphan temps in both stores
# ---------------------------------------------------------------------------


def test_checkpoint_orphan_tmp_cleanup(tmp_path):
    store = CheckpointStore(tmp_path)
    store.put("run", 2, {"at": 2})
    # A writer killed between temp write and rename leaves exactly this.
    orphan = tmp_path / "run.s00000004.ckpt.pkl.tmp.9999"
    orphan.write_bytes(b"half a snapshot")
    assert store.orphan_tmp_paths() == [orphan]
    # The orphan is invisible to reads...
    assert store.latest("run") == (2, {"at": 2})
    # ...and swept by clear() along with everything else.
    assert store.clear() == 2
    assert store.orphan_tmp_paths() == []
    assert store.latest("run") is None


def test_checkpoint_prune_sweeps_aged_tmp_and_quarantine(tmp_path):
    store = CheckpointStore(tmp_path)
    store.put("run", 2, {"at": 2})
    (tmp_path / "run.s00000004.ckpt.pkl.tmp.123").write_bytes(b"x")
    (tmp_path / "old.s00000001.ckpt.bad").write_bytes(b"y")
    # Nothing is old yet at age 1h.
    assert store.prune_older_than(3600.0) == 0
    # With a zero threshold everything goes.
    assert store.prune_older_than(0.0) == 3
    with pytest.raises(RunCacheError, match=">= 0"):
        store.prune_older_than(-1.0)


def test_run_cache_corrupt_entry_event_and_orphan_sweep(tmp_path):
    cache = RunCache(tmp_path)
    path = cache.path_for("deadbeef")
    path.write_bytes(b"not a pickle")
    with pytest.warns(CacheCorruptionWarning):
        assert cache.get("deadbeef") is None
    assert not path.exists()  # still evicted, as before
    events = cache_corruptions()
    assert len(events) == 1
    assert events[0].store == "RunCache"
    assert events[0].kind == "unreadable-entry"
    assert events[0].action == "removed"

    # Crash-window temp: the same name put() would have used mid-write.
    orphan = tmp_path / "deadbeef.run.tmp.4242"
    orphan.write_bytes(b"half an entry")
    assert cache.orphan_tmp_paths() == [orphan]
    assert cache.clear() == 1  # just the orphan; real entry already gone
    assert cache.orphan_tmp_paths() == []


def test_run_cache_prune_removes_aged_orphan_tmp(tmp_path):
    cache = RunCache(tmp_path)
    orphan = tmp_path / "cafe.run.tmp.77"
    orphan.write_bytes(b"x")
    assert cache.prune_older_than(3600.0) == 0  # too young
    assert orphan.exists()
    assert cache.prune_older_than(0.0) == 1
    assert not orphan.exists()


# ---------------------------------------------------------------------------
# RunCheckpointer behavior
# ---------------------------------------------------------------------------


def test_checkpointer_snapshots_on_period_and_discards(tmp_path):
    store = CheckpointStore(tmp_path)
    cp = RunCheckpointer(store, "run", every=3)
    taken = []
    for step in range(1, 8):
        cp.after_step(step, lambda s=step: taken.append(s) or {"at": s})
    assert taken == [3, 6]
    assert store.steps("run") == (6, 3)
    assert cp.resumed_from_step is None
    cp.finished()
    assert store.latest("run") is None


def test_checkpointer_resume_skips_resnapshot_of_loaded_step(tmp_path):
    store = CheckpointStore(tmp_path)
    store.put("run", 6, {"at": 6})
    cp = RunCheckpointer(store, "run", every=3)
    assert cp.load() == {"at": 6}
    assert cp.resumed_from_step == 6
    assert resume_events()[-1].step == 6
    captured = []
    # Steps at or before the loaded step must not re-snapshot (capture
    # would be wasted work; worse, it would churn retention).
    cp.after_step(6, lambda: captured.append(6))
    assert captured == []
    cp.after_step(9, lambda: {"at": 9})
    assert store.steps("run") == (9, 6)


def test_checkpointer_kill_trips_after_snapshot(tmp_path, monkeypatch):
    class Killed(BaseException):
        pass

    import repro.runtime.checkpoint as checkpoint_module

    monkeypatch.setattr(
        checkpoint_module, "_hard_exit",
        lambda code: (_ for _ in ()).throw(Killed()),
    )
    store = CheckpointStore(tmp_path)
    cp = RunCheckpointer(store, "run", every=2, kill_at_step=2)
    with pytest.raises(Killed):
        cp.after_step(2, lambda: {"at": 2})
    # Snapshot-then-kill: the aligned snapshot landed before death.
    assert store.steps("run") == (2,)


def test_arm_consume_disarm_latch():
    arm_kill_at_step(7)
    assert consume_armed_kill() == 7
    assert consume_armed_kill() is None  # consuming disarms
    arm_kill_at_step(3)
    disarm_kill()
    assert consume_armed_kill() is None
    with pytest.raises(RunCacheError, match=">= 1"):
        arm_kill_at_step(0)
