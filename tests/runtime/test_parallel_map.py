"""Tests for parallel_map's process path and degradation reporting."""

from __future__ import annotations

import os

import pytest

from repro.runtime import (
    BackendDegradationWarning,
    RuntimeConfig,
    backend_degradations,
    clear_backend_degradations,
    parallel_map,
)


def _square(x: int) -> int:
    return x * x


def _worker_pid(_x: int) -> int:
    return os.getpid()


def _call_thunk(thunk):
    return thunk()


def _forty_two() -> int:
    return 42


@pytest.fixture(autouse=True)
def _clean_degradation_log():
    clear_backend_degradations()
    yield
    clear_backend_degradations()


def test_picklable_fn_keeps_process_backend():
    config = RuntimeConfig(backend="process", jobs=2)
    assert parallel_map(_square, [1, 2, 3], runtime=config) == [1, 4, 9]
    assert backend_degradations() == ()


def test_process_backend_actually_crosses_process_boundary():
    config = RuntimeConfig(backend="process", jobs=2)
    pids = parallel_map(_worker_pid, list(range(4)), runtime=config)
    assert all(pid != os.getpid() for pid in pids)


def test_closure_degrades_with_one_time_warning():
    captured = 10

    def closure(x: int) -> int:
        return x + captured

    config = RuntimeConfig(backend="process", jobs=2)
    with pytest.warns(BackendDegradationWarning, match="does not pickle"):
        assert parallel_map(closure, [1, 2], runtime=config) == [11, 12]
    events = backend_degradations()
    assert len(events) == 1
    assert events[0].requested == "process"
    assert events[0].effective == "thread"
    assert events[0].reason  # the pickling error is recorded verbatim
    assert "closure" in events[0].callable_name

    # Second use of the same callable: silent (one-time), still threads.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert parallel_map(closure, [3], runtime=config) == [13]
    assert len(backend_degradations()) == 1


def test_lambda_degrades_and_records():
    config = RuntimeConfig(backend="process", jobs=2)
    with pytest.warns(BackendDegradationWarning):
        assert parallel_map(lambda x: x - 1, [5], runtime=config) == [4]
    assert len(backend_degradations()) == 1


def test_unpicklable_items_degrade_instead_of_crashing():
    # Module-level fn but closure items: the map must fall back to
    # threads (the pre-degradation behavior), not raise from the pool.
    items = [lambda: 1, lambda: 2]
    config = RuntimeConfig(backend="process", jobs=2)
    with pytest.warns(BackendDegradationWarning, match="work item"):
        result = parallel_map(_call_thunk, items, runtime=config)
    assert result == [1, 2]
    assert backend_degradations()[0].reason.startswith("work item")


def test_heterogeneous_items_fall_back_mid_map():
    # The first item pickles, a later one does not: the first-item
    # probe passes, the pool raises, and the map must still complete
    # on threads instead of surfacing PicklingError to the caller.
    items = [_forty_two, lambda: 99]  # module-level fn pickles; lambda not
    config = RuntimeConfig(backend="process", jobs=2)
    with pytest.warns(BackendDegradationWarning, match="process boundary"):
        result = parallel_map(_call_thunk, items, runtime=config)
    assert result == [42, 99]
    assert backend_degradations()[0].reason.startswith(
        "map failed to cross the process boundary"
    )


def test_prefer_thread_is_silent():
    import warnings

    captured = 2

    def closure(x: int) -> int:
        return x * captured

    config = RuntimeConfig(backend="process", jobs=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = parallel_map(
            closure, [1, 2], runtime=config, prefer_thread=True
        )
    assert result == [2, 4]
    assert backend_degradations() == ()  # declared, not degraded


def test_serial_and_thread_backends_never_warn():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert parallel_map(lambda x: x, [1, 2]) == [1, 2]
        assert parallel_map(
            lambda x: x, [1, 2], runtime=RuntimeConfig(backend="thread", jobs=2)
        ) == [1, 2]


def test_jobs_one_process_request_stays_serial():
    # jobs=1 degrades to the serial executor before pickling matters.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        config = RuntimeConfig(backend="process", jobs=1)
        assert parallel_map(lambda x: x + 1, [1], runtime=config) == [2]
