"""Property-based tests for the task-lease state machine and the spool.

Two safety properties carry the whole distributed backend, and both are
interleaving-sensitive in ways example-based tests cannot sweep:

* **never lose a task** — whatever order claims, heartbeats, expiries,
  timeouts, failures and completions arrive in, every task ends in a
  legal state and anything not finished is still retryable (or has
  loudly exhausted its attempts);
* **never complete a task twice** — the ledger accepts exactly one
  completion per task, no matter how many straggler results show up.

:class:`~repro.runtime.distributed.LeaseLedger` is deliberately pure
(no filesystem, injected clock and jitter rng) precisely so hypothesis
can drive it through arbitrary event sequences here.  The third
property pins the wire format: a :class:`~repro.runtime.runner.
RunRequest` round-trips through pickle — the spool's serialization —
without changing its cache fingerprint, which is what makes a worker's
cache write interchangeable with the coordinator's.
"""

from __future__ import annotations

import pickle
import random

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.models.registry import PAPER_MODELS, create_model
from repro.runtime import LeaseLedger, RunRequest
from repro.runtime.distributed import (
    LEASE_CLAIMED,
    LEASE_DONE,
    LEASE_FAILED,
    LEASE_PENDING,
    backoff_delay,
)

N_TASKS = 4
MAX_ATTEMPTS = 3
LEASE_TIMEOUT = 0.5
TASK_TIMEOUT = 1.0
WORKERS = ("w0", "w1", "w2")

_STATES = (LEASE_PENDING, LEASE_CLAIMED, LEASE_DONE, LEASE_FAILED)


class LeaseLedgerMachine(RuleBasedStateMachine):
    """Drive one ledger through arbitrary interleavings of observations."""

    def __init__(self):
        super().__init__()
        self.ledger = LeaseLedger(
            N_TASKS,
            max_attempts=MAX_ATTEMPTS,
            backoff_base=0.01,
            backoff_cap=0.05,
            rng=random.Random(0),
        )
        self.now = 0.0
        self.completions = [0] * N_TASKS
        self.ever_done: set[int] = set()
        self.ever_failed: set[int] = set()

    def _advance(self, dt: float) -> None:
        self.now += dt

    indexes = st.integers(min_value=0, max_value=N_TASKS - 1)
    clocks = st.floats(min_value=0.0, max_value=0.7, allow_nan=False)

    @rule(index=indexes, worker=st.sampled_from(WORKERS), dt=clocks)
    def claim(self, index, worker, dt):
        self._advance(dt)
        accepted = self.ledger.claim(index, worker, self.now)
        if accepted:
            lease = self.ledger.lease(index)
            assert lease.status == LEASE_CLAIMED
            assert lease.worker == worker

    @rule(index=indexes, dt=clocks)
    def heartbeat(self, index, dt):
        self._advance(dt)
        self.ledger.heartbeat(index, self.now)

    @rule(index=indexes, dt=clocks)
    def complete(self, index, dt):
        self._advance(dt)
        if self.ledger.complete(index, self.now):
            self.completions[index] += 1

    @rule(index=indexes, dt=clocks)
    def expire(self, index, dt):
        self._advance(dt)
        self.ledger.expire(index, self.now, LEASE_TIMEOUT)

    @rule(index=indexes, dt=clocks)
    def time_out(self, index, dt):
        self._advance(dt)
        self.ledger.time_out(index, self.now, TASK_TIMEOUT)

    @rule(index=indexes, dt=clocks)
    def fail(self, index, dt):
        self._advance(dt)
        self.ledger.fail(index, "injected failure", self.now)

    # -- safety properties -------------------------------------------

    @invariant()
    def no_task_is_ever_lost(self):
        # Every task is always in exactly one legal state; nothing
        # vanishes from the ledger regardless of event order.
        assert len(self.ledger) == N_TASKS
        for lease in self.ledger.leases():
            assert lease.status in _STATES

    @invariant()
    def no_task_completes_twice(self):
        assert all(count <= 1 for count in self.completions)

    @invariant()
    def attempts_respect_the_budget(self):
        for lease in self.ledger.leases():
            assert 1 <= lease.attempt <= MAX_ATTEMPTS
            if lease.status == LEASE_FAILED:
                # Exhaustion only after the full budget was spent.
                assert lease.attempt == MAX_ATTEMPTS

    @invariant()
    def done_and_failed_are_absorbing(self):
        for lease in self.ledger.leases():
            if lease.status == LEASE_DONE:
                self.ever_done.add(lease.index)
            if lease.status == LEASE_FAILED:
                self.ever_failed.add(lease.index)
        for index in self.ever_done:
            assert self.ledger.lease(index).status == LEASE_DONE
        for index in self.ever_failed:
            assert self.ledger.lease(index).status == LEASE_FAILED

    @invariant()
    def claimed_leases_have_a_worker(self):
        for lease in self.ledger.leases():
            if lease.status == LEASE_CLAIMED:
                assert lease.worker in WORKERS
                assert lease.claimed_at is not None
            if lease.status == LEASE_PENDING:
                assert lease.worker is None


LeaseLedgerMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestLeaseLedgerProperties = LeaseLedgerMachine.TestCase


# ---------------------------------------------------------------------------
# Backoff policy
# ---------------------------------------------------------------------------


@given(
    retry=st.integers(min_value=1, max_value=12),
    base=st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
    cap=st.floats(min_value=0.001, max_value=60.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(deadline=None)
def test_backoff_delay_is_bounded_exponential_with_jitter(
    retry, base, cap, seed
):
    delay = backoff_delay(retry, base, cap, random.Random(seed))
    raw = min(cap, base * 2.0 ** (retry - 1))
    assert 0.5 * raw <= delay < 1.5 * raw
    assert delay <= 1.5 * cap


# ---------------------------------------------------------------------------
# Spool round-trip
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**63 - 1),
    record_history=st.booleans(),
    engine=st.sampled_from((None, "reference", "vectorized", "batched")),
    model_name=st.sampled_from(PAPER_MODELS),
)
@settings(max_examples=40, deadline=None)
def test_run_request_round_trips_through_spool_pickle(
    tiny_spec, seed, record_history, engine, model_name
):
    request = RunRequest(
        model=create_model(model_name),
        spec=tiny_spec,
        seed=seed,
        record_history=record_history,
        engine=engine,
    )
    loaded = pickle.loads(
        pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
    )
    assert loaded.seed == request.seed
    assert loaded.record_history == request.record_history
    assert loaded.engine == request.engine
    assert loaded.spec == request.spec
    # The cache fingerprint is the identity that matters: a worker's
    # cache write for the deserialized request must land on the exact
    # key the coordinator computed for the original.
    assert loaded.fingerprint() == request.fingerprint()
