"""Bit-identical resume property tests (DESIGN.md §9 acceptance).

The contract under test: kill a run at *any* step, resume it from its
latest valid snapshot with a fresh generator seeded the same way, and
the completed run is **byte-for-byte identical** to one that was never
interrupted — transactions, final pool, trace counters and recorded
history alike.  Hypothesis drives the kill step and snapshot period so
every alignment is exercised: kill on a snapshot boundary, kill one
step after, kill before the first snapshot ever lands (resume then
falls back to a fresh start), kill past the end of the run (no kill
fires at all).

The kill primitive (:func:`repro.runtime.checkpoint._hard_exit`) is
monkeypatched to raise a sentinel, so hundreds of crashes run
in-process; the store still sees exactly the on-disk state a real
``os._exit`` leaves.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.runtime.checkpoint as checkpoint_module
from repro.models.batched import run_batched
from repro.models.registry import create_model
from repro.rng import rng_from_seed
from repro.runtime import CheckpointStore, RunCheckpointer, clear_resume_events


class Killed(BaseException):
    """Sentinel standing in for ``os._exit`` under the monkeypatch.

    Derives from ``BaseException`` so no engine ``except Exception``
    can swallow it — just as nothing swallows a real process death.
    """


@pytest.fixture(autouse=True)
def _in_process_kills(monkeypatch):
    monkeypatch.setattr(
        checkpoint_module, "_hard_exit",
        lambda code: (_ for _ in ()).throw(Killed()),
    )
    clear_resume_events()
    yield
    clear_resume_events()


def _signature(run) -> bytes:
    return pickle.dumps(
        (run.transactions, run.final_pool_size, run.initial_recipes,
         run.trace, run.history),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


_MODELS = ("CM-R", "CM-C")  # copy-only and copy-mutate paths
_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@_SETTINGS
@given(
    model_name=st.sampled_from(_MODELS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    every=st.integers(min_value=1, max_value=7),
    kill_at=st.integers(min_value=1, max_value=400),
    record_history=st.booleans(),
)
def test_vectorized_resume_is_bit_identical(
    tiny_spec, tmp_path_factory, model_name, seed, every, kill_at,
    record_history,
):
    model = create_model(model_name)
    uninterrupted = model.run(
        tiny_spec, seed=seed, record_history=record_history
    )

    directory = tmp_path_factory.mktemp("ckpt")
    store = CheckpointStore(directory)
    first = RunCheckpointer(store, "run", every=every, kill_at_step=kill_at)
    try:
        killed = model.run(
            tiny_spec, seed=seed,
            record_history=record_history, checkpointer=first,
        )
    except Killed:
        second = RunCheckpointer(store, "run", every=every)
        resumed = model.run(
            tiny_spec, seed=seed,
            record_history=record_history, checkpointer=second,
        )
        if second.resumed_from_step is not None:
            # A resume really happened, at or before the kill point (the
            # snapshot-then-kill order means a snapshot-aligned kill
            # leaves a snapshot *of* the kill step itself).
            assert 0 < second.resumed_from_step <= kill_at
        assert _signature(resumed) == _signature(uninterrupted)
        second.finished()
    else:
        # The run ended before step kill_at: no kill, plain equality.
        assert _signature(killed) == _signature(uninterrupted)


@_SETTINGS
@given(
    model_name=st.sampled_from(_MODELS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    every=st.integers(min_value=1, max_value=5),
    kill_at=st.integers(min_value=1, max_value=250),
    n_runs=st.integers(min_value=1, max_value=3),
)
def test_batched_resume_is_bit_identical(
    tiny_spec, tmp_path_factory, model_name, seed, every, kill_at, n_runs
):
    model = create_model(model_name, engine="batched")
    rngs = lambda: [rng_from_seed(seed + i) for i in range(n_runs)]  # noqa: E731
    uninterrupted = run_batched(model, tiny_spec, rngs(), record_history=True)

    directory = tmp_path_factory.mktemp("ckpt")
    store = CheckpointStore(directory)
    first = RunCheckpointer(store, "batch", every=every, kill_at_step=kill_at)
    try:
        killed = run_batched(
            model, tiny_spec, rngs(), record_history=True,
            checkpointer=first,
        )
    except Killed:
        second = RunCheckpointer(store, "batch", every=every)
        resumed = run_batched(
            model, tiny_spec, rngs(), record_history=True,
            checkpointer=second,
        )
        assert [_signature(r) for r in resumed] == [
            _signature(r) for r in uninterrupted
        ]
        second.finished()
    else:
        assert [_signature(r) for r in killed] == [
            _signature(r) for r in uninterrupted
        ]


def test_resume_survives_corrupt_newest_snapshot(tiny_spec, tmp_path):
    """Corrupt the newest snapshot: resume falls back and still matches."""
    import warnings

    model = create_model("CM-C")
    seed = 20190408
    uninterrupted = model.run(tiny_spec, seed=seed)

    store = CheckpointStore(tmp_path)
    first = RunCheckpointer(store, "run", every=3, kill_at_step=9)
    with pytest.raises(Killed):
        model.run(tiny_spec, seed=seed, checkpointer=first)
    steps = store.steps("run")
    assert len(steps) == 2, "kill at step 9 with every=3 must leave 9 and 6"
    newest = store.path_for("run", steps[0])
    newest.write_bytes(b"bit rot")

    second = RunCheckpointer(store, "run", every=3)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the corruption warning
        resumed = model.run(
            tiny_spec, seed=seed, checkpointer=second
        )
    # Fell back to the older snapshot, not a fresh start...
    assert second.resumed_from_step == steps[1]
    # ...and the result is still bit-identical.
    assert _signature(resumed) == _signature(uninterrupted)


def test_resume_with_all_snapshots_corrupt_restarts_fresh(
    tiny_spec, tmp_path
):
    import warnings

    model = create_model("CM-R")
    seed = 7
    uninterrupted = model.run(tiny_spec, seed=seed)

    store = CheckpointStore(tmp_path)
    first = RunCheckpointer(store, "run", every=2, kill_at_step=8)
    with pytest.raises(Killed):
        model.run(tiny_spec, seed=seed, checkpointer=first)
    for step in store.steps("run"):
        store.path_for("run", step).write_bytes(b"gone")

    second = RunCheckpointer(store, "run", every=2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        resumed = model.run(
            tiny_spec, seed=seed, checkpointer=second
        )
    assert second.resumed_from_step is None  # fresh start
    assert _signature(resumed) == _signature(uninterrupted)
