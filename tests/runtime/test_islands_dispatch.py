"""Island ensembles through the runtime: grouping, caching, backends.

The §10 dispatch contract: member runs are pure functions of
``(simulation, member, seed)``, so every backend produces bit-identical
results, cache hits may split archipelago groups without changing any
run, and consecutive same-(simulation, seed) members fold into a single
archipelago execution.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.islands import (
    IslandSimulation,
    MigrationTopology,
    run_island_ensemble,
)
from repro.models.params import CuisineSpec
from repro.runtime import (
    ArchipelagoRequest,
    RunCache,
    RunRequest,
    RuntimeConfig,
    fingerprint_many,
)
from repro.runtime.runner import _plan_work

_CATEGORIES = (Category.VEGETABLE, Category.SPICE, Category.DAIRY)


def _spec(code, n_ingredients=24, n_recipes=30):
    return CuisineSpec(
        region_code=code,
        ingredient_ids=tuple(range(n_ingredients)),
        categories=tuple(_CATEGORIES[i % 3] for i in range(n_ingredients)),
        avg_recipe_size=4.0,
        n_recipes=n_recipes,
        phi=n_ingredients / n_recipes,
    )


def _simulation(rate=0.2):
    codes = ("A", "B", "C")
    return IslandSimulation(
        CopyMutateRandom(),
        [_spec(code) for code in codes],
        MigrationTopology.full_mesh(codes, rate),
    )


def _payload(run):
    return (
        run.region_code,
        run.transactions,
        run.final_pool_size,
        dataclasses.asdict(run.trace),
    )


def _ensemble_payload(result):
    return {
        code: tuple(_payload(run) for run in runs)
        for code, runs in result.runs.items()
    }


# ---------------------------------------------------------------------------
# Grouping
# ---------------------------------------------------------------------------


def test_plan_work_folds_members_into_archipelagos():
    simulation = _simulation()
    members = simulation.members()
    requests = [
        RunRequest(model=member, spec=member.spec, seed=seed)
        for seed in (101, 102)
        for member in members
    ]
    work = _plan_work(requests, range(len(requests)))
    assert len(work) == 2
    for item, seed in zip(work, (101, 102)):
        assert isinstance(item, ArchipelagoRequest)
        assert item.simulation is simulation
        assert item.members == (0, 1, 2)
        assert item.seed == seed


def test_plan_work_folds_across_cache_gaps():
    """A cache hit in the middle of an archipelago leaves the remaining
    members adjacent; they still fold into one execution."""
    simulation = _simulation()
    members = simulation.members()
    requests = [
        RunRequest(model=member, spec=member.spec, seed=7)
        for member in members
    ]
    work = _plan_work(requests, [0, 2])  # member 1 served from cache
    assert len(work) == 1
    assert isinstance(work[0], ArchipelagoRequest)
    assert work[0].members == (0, 2)


def test_plan_work_keeps_lone_member_single():
    simulation = _simulation()
    member = simulation.member(1)
    requests = [RunRequest(model=member, spec=member.spec, seed=7)]
    work = _plan_work(requests, [0])
    assert len(work) == 1
    assert isinstance(work[0], RunRequest)


def test_grouped_equals_ungrouped_member_runs():
    simulation = _simulation()
    members = simulation.members()
    grouped = simulation.run_members([0, 1, 2], seed=55)
    for index, member in enumerate(members):
        solo = member.run(member.spec, seed=55)
        assert _payload(solo) == _payload(grouped[index])


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backends_bit_identical_to_serial(backend):
    simulation = _simulation()
    serial = run_island_ensemble(
        simulation, 3, seed=99, runtime=RuntimeConfig(backend="serial")
    )
    other = run_island_ensemble(
        simulation, 3, seed=99,
        runtime=RuntimeConfig(backend=backend, jobs=2),
    )
    assert serial.seeds == other.seeds
    assert _ensemble_payload(serial) == _ensemble_payload(other)


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------


def test_ensemble_caches_member_runs(tmp_path):
    simulation = _simulation()
    config = RuntimeConfig(cache_dir=tmp_path)
    first = run_island_ensemble(simulation, 2, seed=77, runtime=config)
    assert first.executed == 2 * 3  # every member of every archipelago
    second = run_island_ensemble(simulation, 2, seed=77, runtime=config)
    assert second.executed == 0
    assert _ensemble_payload(first) == _ensemble_payload(second)


def test_partial_cache_hits_never_change_results(tmp_path):
    """Warming a single member's cache splits its archipelago group on
    the next ensemble; results must stay bit-identical anyway."""
    simulation = _simulation()
    cold = run_island_ensemble(simulation, 2, seed=77)
    cache = RunCache(tmp_path)
    member = simulation.member(1)
    warm_seed = cold.seeds[0]
    key = fingerprint_many(member, member.spec, [warm_seed], False, None)[0]
    cache.put(key, member.run(member.spec, seed=warm_seed))
    warmed = run_island_ensemble(
        simulation, 2, seed=77, runtime=RuntimeConfig(), cache=cache
    )
    assert warmed.executed == 2 * 3 - 1
    assert _ensemble_payload(cold) == _ensemble_payload(warmed)


def test_member_cache_keys_distinguish_members_and_topology(tmp_path):
    simulation = _simulation()
    other_topology = IslandSimulation(
        CopyMutateRandom(),
        [_spec(code) for code in ("A", "B", "C")],
        MigrationTopology.ring(("A", "B", "C"), 0.2),
    )
    keys = {
        fingerprint_many(member, member.spec, [5], False, None)[0]
        for member in (*simulation.members(), *other_topology.members())
    }
    assert len(keys) == 6  # member index and topology both key

    plain = CopyMutateRandom()
    member = simulation.member(0)
    plain_key = fingerprint_many(plain, member.spec, [5], False, None)[0]
    assert plain_key not in keys  # islands never collide with plain runs
