"""Tests for the mined-curve cache (key scheme, hit/miss, coexistence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MiningConfig
from repro.errors import RunCacheError
from repro.runtime import (
    CurveCache,
    RunCache,
    curve_key,
    transactions_fingerprint,
)

TXNS = [frozenset({1, 2, 3}), frozenset({2, 3}), frozenset({1})]
MINING = MiningConfig(min_support=0.05)


def test_fingerprint_is_content_addressed():
    same = transactions_fingerprint([{3, 2, 1}, {3, 2}, {1}])
    assert transactions_fingerprint(TXNS) == same  # item order irrelevant
    reordered = transactions_fingerprint([TXNS[1], TXNS[0], TXNS[2]])
    assert reordered != transactions_fingerprint(TXNS)  # txn order matters
    assert transactions_fingerprint([]) != transactions_fingerprint([set()])


def test_curve_key_covers_mining_config_and_kind():
    fp = transactions_fingerprint(TXNS)
    base = curve_key(fp, MINING)
    assert curve_key(fp, MINING) == base
    assert curve_key(fp, MiningConfig(min_support=0.1)) != base
    assert curve_key(fp, MiningConfig(max_size=2)) != base
    assert curve_key(fp, MINING, level="category") != base
    assert curve_key(fp, MINING, kind="mining") != base
    other_fp = transactions_fingerprint([{9}])
    assert curve_key(other_fp, MINING) != base


def test_curve_key_algorithm_agnostic():
    # Every registered miner returns identical results (the DESIGN.md §6
    # equality contract), so entries are shared across algorithms: a
    # bitset-warmed cache serves the eclat default and vice versa.
    fp = transactions_fingerprint(TXNS)
    assert curve_key(fp, MiningConfig(algorithm="bitset")) == curve_key(
        fp, MiningConfig(algorithm="eclat")
    )


def test_hit_miss_store_roundtrip(tmp_path):
    cache = CurveCache(tmp_path)
    key = curve_key(transactions_fingerprint(TXNS), MINING)
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    frequencies = np.array([0.9, 0.5, 0.5])
    cache.put(key, frequencies)
    loaded = cache.get(key)
    assert np.array_equal(loaded, frequencies)
    assert cache.stats.hits == 1 and cache.stats.stores == 1


def test_changed_fingerprint_or_config_misses(tmp_path):
    cache = CurveCache(tmp_path)
    fp = transactions_fingerprint(TXNS)
    cache.put(curve_key(fp, MINING), np.array([1.0]))
    # Different transactions -> miss.
    assert cache.get(
        curve_key(transactions_fingerprint([{4}]), MINING)
    ) is None
    # Different mining config -> miss.
    assert cache.get(
        curve_key(fp, MiningConfig(min_support=0.2))
    ) is None


def test_shares_directory_with_run_cache(tmp_path):
    run_cache = RunCache(tmp_path)
    curve_cache = CurveCache(tmp_path)
    run_cache.put("a" * 64, {"fake": "run"})
    curve_cache.put("a" * 64, np.array([1.0]))
    # Same key, different stores: no collision, independent counts.
    assert len(run_cache) == 1
    assert len(curve_cache) == 1
    assert curve_cache.clear() == 1
    assert len(run_cache) == 1  # clearing curves leaves runs intact


def test_corrupt_entry_is_evicted(tmp_path):
    cache = CurveCache(tmp_path)
    key = "b" * 64
    cache.put(key, np.array([1.0]))
    cache.path_for(key).write_bytes(b"not a pickle")
    assert cache.get(key) is None
    assert not cache.path_for(key).exists()


def test_prune_only_touches_curves(tmp_path):
    run_cache = RunCache(tmp_path)
    curve_cache = CurveCache(tmp_path)
    run_cache.put("c" * 64, {"fake": "run"})
    curve_cache.put("c" * 64, np.array([1.0]))
    assert curve_cache.prune_older_than(0.0, now=1e12) == 1
    assert len(run_cache) == 1


def test_not_a_directory(tmp_path):
    path = tmp_path / "file"
    path.write_text("x")
    with pytest.raises(RunCacheError):
        CurveCache(path)


def test_bare_pickle_store_is_unusable(tmp_path):
    # The base class declares no suffix; instantiating it directly
    # would glob-and-clear every sibling store's entries.
    from repro.runtime import PickleStore

    with pytest.raises(RunCacheError, match="suffix"):
        PickleStore(tmp_path)
