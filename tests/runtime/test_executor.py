"""Tests for the executor backends and their selection logic."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.runtime import (
    ProcessExecutor,
    RuntimeConfig,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)


def _square(x: int) -> int:
    return x * x


def test_serial_map_preserves_order():
    assert SerialExecutor().map(_square, range(7)) == [
        0, 1, 4, 9, 16, 25, 36
    ]


def test_thread_map_preserves_order():
    executor = ThreadExecutor(jobs=4)
    assert executor.map(_square, range(20)) == [i * i for i in range(20)]


def test_process_map_preserves_order():
    executor = ProcessExecutor(jobs=2)
    assert executor.map(_square, range(8)) == [i * i for i in range(8)]


def test_pool_backends_handle_empty_input():
    assert ThreadExecutor(jobs=2).map(_square, []) == []
    assert ProcessExecutor(jobs=2).map(_square, []) == []


def test_closures_work_on_thread_backend():
    offset = 10
    assert ThreadExecutor(jobs=2).map(lambda x: x + offset, [1, 2]) == [11, 12]


def test_jobs_one_degrades_any_backend_to_serial():
    for backend in ("serial", "thread", "process"):
        executor = get_executor(RuntimeConfig(backend=backend, jobs=1))
        assert isinstance(executor, SerialExecutor)


def test_get_executor_defaults_to_serial():
    assert isinstance(get_executor(None), SerialExecutor)
    assert isinstance(get_executor(), SerialExecutor)


def test_get_executor_builds_requested_backend():
    assert isinstance(
        get_executor(RuntimeConfig(backend="thread", jobs=2)), ThreadExecutor
    )
    assert isinstance(
        get_executor(RuntimeConfig(backend="process", jobs=2)),
        ProcessExecutor,
    )


def test_pool_executor_rejects_single_worker_construction():
    with pytest.raises(ExecutionError):
        ThreadExecutor(jobs=1)
    with pytest.raises(ExecutionError):
        ProcessExecutor(jobs=0)


def test_executor_reports_effective_jobs():
    assert SerialExecutor().jobs == 1
    assert ThreadExecutor(jobs=3).jobs == 3


def test_pickling_requirement_flags():
    assert not SerialExecutor.requires_pickling
    assert not ThreadExecutor.requires_pickling
    assert ProcessExecutor.requires_pickling
