"""Backend-determinism guarantees of the execution runtime.

The contract under test is the acceptance criterion of the runtime
subsystem: for a fixed master seed, serial, thread and process execution
produce **bit-identical** :class:`~repro.models.base.EvolutionRun`
results — same transactions, same traces, same pool sizes — and the
master seed stream itself advances identically under every backend.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.models.ensemble import run_ensemble
from repro.models.registry import PAPER_MODELS, create_model
from repro.rng import ensure_rng, rng_from_seed, spawn, spawn_seeds
from repro.runtime import RuntimeConfig, execute_runs

BACKEND_CONFIGS = (
    RuntimeConfig(),
    RuntimeConfig(backend="thread", jobs=3),
    RuntimeConfig(backend="process", jobs=2),
)


def _run_signature(runs):
    return [
        (run.transactions, run.final_pool_size, run.initial_recipes, run.trace)
        for run in runs
    ]


def test_spawn_seeds_matches_spawn(tiny_spec):
    """spawn() and spawn_seeds()+rng_from_seed() are the same stream."""
    seeds = spawn_seeds(ensure_rng(11), 5)
    generators = spawn(ensure_rng(11), 5)
    for seed, generator in zip(seeds, generators):
        assert rng_from_seed(seed).integers(0, 2**31) == generator.integers(
            0, 2**31
        )


@pytest.mark.parametrize("model_name", PAPER_MODELS)
def test_all_backends_bit_identical(tiny_spec, model_name):
    model = create_model(model_name)
    seeds = spawn_seeds(ensure_rng(7), 6)
    reference = None
    for config in BACKEND_CONFIGS:
        runs = execute_runs(model, tiny_spec, seeds, runtime=config)
        signature = _run_signature(runs)
        if reference is None:
            reference = signature
        else:
            assert signature == reference, (
                f"{config.backend} diverged from serial for {model_name}"
            )


def test_run_ensemble_backend_invariant(tiny_spec):
    """The full ensemble aggregation is backend-independent."""
    model = create_model("CM-R")
    results = [
        run_ensemble(model, tiny_spec, n_runs=5, seed=13, runtime=config)
        for config in BACKEND_CONFIGS
    ]
    import numpy as np

    for result in results[1:]:
        assert _run_signature(result.runs) == _run_signature(results[0].runs)
        assert np.array_equal(
            result.ingredient_curve.frequencies,
            results[0].ingredient_curve.frequencies,
        )


def test_run_ensemble_default_matches_explicit_serial(tiny_spec):
    model = create_model("CM-C")
    implicit = run_ensemble(model, tiny_spec, n_runs=4, seed=3)
    explicit = run_ensemble(
        model, tiny_spec, n_runs=4, seed=3, runtime=RuntimeConfig()
    )
    assert _run_signature(implicit.runs) == _run_signature(explicit.runs)


def test_record_history_survives_every_backend(tiny_spec):
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(5), 3)
    histories = []
    for config in BACKEND_CONFIGS:
        runs = execute_runs(
            model, tiny_spec, seeds, runtime=config, record_history=True
        )
        histories.append([run.history for run in runs])
        for run in runs:
            assert run.history is not None
            assert run.history[-1][1] == tiny_spec.n_recipes
    assert histories[1] == histories[0]
    assert histories[2] == histories[0]


def test_seed_order_defines_result_order(tiny_spec):
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(21), 4)
    forward = execute_runs(model, tiny_spec, seeds)
    backward = execute_runs(model, tiny_spec, list(reversed(seeds)))
    assert _run_signature(forward) == _run_signature(list(reversed(backward)))


_CROSS_PROCESS_SNIPPET = """
import hashlib
from repro.lexicon.builder import standard_lexicon
from repro.synthesis.worldgen import WorldKitchen

kitchen = WorldKitchen(standard_lexicon(), seed=2)
dataset = kitchen.generate_dataset(region_codes=("KOR",), scale=0.04)
payload = repr([(r.region_code, r.ingredient_ids) for r in dataset]).encode()
print(hashlib.sha256(payload).hexdigest())
"""


def test_corpus_generation_is_hash_seed_independent():
    """Regression: corpus generation must not depend on PYTHONHASHSEED.

    WorldKitchen used to derive per-region RNG keys via ``hash(str)``,
    which is salted per interpreter — every CLI invocation produced a
    different corpus for the same seed, poisoning the on-disk run cache.
    """
    root = Path(__file__).resolve().parents[2]
    digests = set()
    for hash_seed in ("0", "12345"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (str(root / "src"), env.get("PYTHONPATH", ""))
            if part
        )
        result = subprocess.run(
            [sys.executable, "-c", _CROSS_PROCESS_SNIPPET],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=root,
        )
        digests.add(result.stdout.strip())
    assert len(digests) == 1, "corpus digest varies with PYTHONHASHSEED"
