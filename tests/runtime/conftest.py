"""Fixtures for the runtime tests: a tiny, fast cuisine spec."""

from __future__ import annotations

import pytest

from repro.lexicon.categories import Category
from repro.models.params import CuisineSpec

_CATEGORIES = (Category.VEGETABLE, Category.SPICE, Category.DAIRY)


@pytest.fixture(scope="session")
def tiny_spec() -> CuisineSpec:
    """A 30-ingredient, 40-recipe cuisine — milliseconds per run."""
    return CuisineSpec(
        region_code="TST",
        ingredient_ids=tuple(range(30)),
        categories=tuple(_CATEGORIES[i % 3] for i in range(30)),
        avg_recipe_size=4.0,
        n_recipes=40,
        phi=0.6,
    )
