"""Batched-engine dispatch through the runtime (DESIGN.md §7).

The dispatcher folds adjacent cache misses that resolve to
``engine="batched"`` into same-cell :class:`BatchRequest` groups and
executes each group as one stacked pass.  The contract tested here:

* grouping is same-cell and identity-based — other engines, other
  models, and singleton misses stay plain per-run requests;
* results are bit-identical to per-run vectorized execution on every
  backend, regardless of how cache hits split a group;
* cached batched runs interoperate with per-run replay: each run is
  individually cacheable and its lazy transactions pickle back as a
  plain eager list;
* :class:`~repro.models.batched.BatchedTransactions` honors the
  sequence protocol (len/index/slice/iterate/compare) both ways.
"""

from __future__ import annotations

import pickle

import pytest

from repro.models.batched import BatchedTransactions, run_batched
from repro.models.extensions.variable_size import VariableSizeCopyMutate
from repro.models.registry import create_model
from repro.rng import ensure_rng, rng_from_seed, spawn_seeds
from repro.runtime import (
    BatchRequest,
    RunCache,
    RunRequest,
    RuntimeConfig,
    execute_runs,
)
from repro.runtime.runner import _plan_work


def _signature(runs):
    return [(run.transactions, run.trace) for run in runs]


def _requests(model, spec, seeds, engine="batched"):
    return [
        RunRequest(model=model, spec=spec, seed=int(seed), engine=engine)
        for seed in seeds
    ]


# ----------------------------------------------------------------------
# Grouping
# ----------------------------------------------------------------------


def test_plan_work_groups_same_cell_runs(tiny_spec):
    model = create_model("CM-R")
    requests = _requests(model, tiny_spec, range(4))
    work = _plan_work(requests, list(range(4)))
    assert len(work) == 1
    (batch,) = work
    assert isinstance(batch, BatchRequest)
    assert batch.seeds == (0, 1, 2, 3)


def test_plan_work_keeps_singletons_as_run_requests(tiny_spec):
    model = create_model("CM-R")
    requests = _requests(model, tiny_spec, range(3))
    work = _plan_work(requests, [1])
    assert len(work) == 1
    assert isinstance(work[0], RunRequest)
    assert work[0].seed == 1


def test_plan_work_groups_across_cache_hits(tiny_spec):
    """A hit between two misses does not break the same-cell group."""
    model = create_model("CM-R")
    requests = _requests(model, tiny_spec, range(3))
    work = _plan_work(requests, [0, 2])
    assert len(work) == 1
    (batch,) = work
    assert isinstance(batch, BatchRequest)
    assert batch.seeds == (0, 2)


def test_plan_work_respects_cell_boundaries(tiny_spec):
    cm_r, cm_c = create_model("CM-R"), create_model("CM-C")
    requests = _requests(cm_r, tiny_spec, range(2)) + _requests(
        cm_c, tiny_spec, range(2)
    )
    work = _plan_work(requests, list(range(4)))
    assert len(work) == 2
    assert all(isinstance(item, BatchRequest) for item in work)
    assert [item.model.name for item in work] == ["CM-R", "CM-C"]


def test_plan_work_leaves_other_engines_alone(tiny_spec):
    model = create_model("CM-R")
    requests = _requests(model, tiny_spec, range(3), engine="vectorized")
    work = _plan_work(requests, list(range(3)))
    assert all(isinstance(item, RunRequest) for item in work)


def test_plan_work_degrades_unbatchable_models(tiny_spec):
    """CM-V resolves to vectorized, so its requests never group."""
    model = VariableSizeCopyMutate()
    requests = _requests(model, tiny_spec, range(3))
    work = _plan_work(requests, list(range(3)))
    assert all(isinstance(item, RunRequest) for item in work)


# ----------------------------------------------------------------------
# Dispatch equivalence
# ----------------------------------------------------------------------


def test_execute_runs_batched_equals_vectorized(tiny_spec):
    model = create_model("CM-M")
    seeds = spawn_seeds(ensure_rng(7), 6)
    batched = execute_runs(model, tiny_spec, seeds, engine="batched")
    vectorized = execute_runs(model, tiny_spec, seeds, engine="vectorized")
    assert _signature(batched) == _signature(vectorized)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_batched_bit_identical_across_backends(tiny_spec, backend):
    model = create_model("CM-C")
    seeds = spawn_seeds(ensure_rng(5), 4)
    serial = execute_runs(model, tiny_spec, seeds, engine="batched")
    parallel = execute_runs(
        model, tiny_spec, seeds, engine="batched",
        runtime=RuntimeConfig(backend=backend, jobs=2),
    )
    assert _signature(serial) == _signature(parallel)


def test_cm_v_dispatches_through_batched_request(tiny_spec):
    """engine="batched" on CM-V silently runs vectorized, per run."""
    model = VariableSizeCopyMutate()
    seeds = spawn_seeds(ensure_rng(3), 3)
    batched = execute_runs(model, tiny_spec, seeds, engine="batched")
    vectorized = execute_runs(model, tiny_spec, seeds, engine="vectorized")
    assert _signature(batched) == _signature(vectorized)


# ----------------------------------------------------------------------
# Cache interop
# ----------------------------------------------------------------------


def test_batched_runs_cache_individually(tiny_spec, tmp_path):
    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(1), 5)
    first = execute_runs(
        model, tiny_spec, seeds, cache=cache, engine="batched"
    )
    assert cache.stats.misses == 5 and cache.stats.stores == 5

    # Warm replay serves every run individually, content-identical.
    second = execute_runs(
        model, tiny_spec, seeds, cache=cache, engine="batched"
    )
    assert cache.stats.hits == 5
    assert _signature(first) == _signature(second)
    # Lazy transactions pickle as the plain eager list.
    assert all(type(run.transactions) is list for run in second)


def test_partial_warm_cache_splits_group_safely(tiny_spec, tmp_path):
    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(1), 6)
    execute_runs(
        model, tiny_spec, [seeds[1], seeds[4]], cache=cache,
        engine="batched",
    )
    runs = execute_runs(
        model, tiny_spec, seeds, cache=cache, engine="batched"
    )
    assert cache.stats.hits == 2
    # Batch composition must not affect results: the split groups equal
    # an uncached full-batch execution.
    uncached = execute_runs(model, tiny_spec, seeds, engine="batched")
    assert _signature(runs) == _signature(uncached)


def test_batched_and_vectorized_keys_are_distinct(tiny_spec, tmp_path):
    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(2), 2)
    execute_runs(model, tiny_spec, seeds, cache=cache, engine="batched")
    execute_runs(model, tiny_spec, seeds, cache=cache, engine="vectorized")
    # Same results, but separate key spaces — no cross-engine hits.
    assert cache.stats.hits == 0
    assert cache.stats.stores == 4


# ----------------------------------------------------------------------
# BatchedTransactions sequence protocol
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def lazy_run(tiny_spec):
    model = create_model("CM-R")
    return run_batched(model, tiny_spec, [rng_from_seed(8)])[0]


def test_lazy_transactions_sequence_protocol(lazy_run):
    transactions = lazy_run.transactions
    assert isinstance(transactions, BatchedTransactions)
    assert len(transactions) == 40
    assert isinstance(transactions[0], frozenset)
    assert transactions[-1] == transactions[len(transactions) - 1]
    assert transactions[3:6] == list(transactions)[3:6]
    assert bool(transactions)


def test_lazy_transactions_equality_both_directions(lazy_run):
    transactions = lazy_run.transactions
    eager = list(transactions)
    assert transactions == eager
    assert eager == transactions
    assert not transactions == eager[:-1]
    mutated = eager[:-1] + [frozenset({999})]
    assert transactions != mutated


def test_lazy_transactions_pickle_as_plain_list(lazy_run):
    transactions = lazy_run.transactions
    restored = pickle.loads(pickle.dumps(transactions))
    assert type(restored) is list
    assert restored == transactions
