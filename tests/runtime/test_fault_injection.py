"""Fault-injection tests for the distributed backend (DESIGN.md §8).

The lease protocol earns its keep only under failure, so these tests
*make* workers fail — killed mid-claim, hung past the task timeout,
merely delayed — and assert the two things the contract promises: the
sweep still completes with results **bit-identical** to serial
execution, and every failure shows up in the structured
:class:`~repro.runtime.distributed.TaskAttempt` record with the right
outcome.  Plan plumbing (JSON round-trip through the spool) is covered
here too, because a fault plan that silently fails to load would turn
every test above into a vacuous happy-path run.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError, TaskRetryExhaustedError
from repro.models.registry import create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import (
    DistributedConfig,
    FaultPlan,
    FaultSpec,
    RuntimeConfig,
    clear_backend_degradations,
    clear_task_attempts,
    execute_runs,
    get_executor,
    task_attempts,
)
from repro.runtime.faults import FAULT_KINDS


def _double(x: int) -> int:
    return x * 2


@pytest.fixture(autouse=True)
def _clean_records():
    clear_task_attempts()
    clear_backend_degradations()
    yield
    clear_task_attempts()
    clear_backend_degradations()


def _config(plan: FaultPlan | None = None, **overrides) -> RuntimeConfig:
    base = dict(
        local_workers=2,
        poll_interval=0.01,
        heartbeat_interval=0.05,
        lease_timeout=0.4,
        task_timeout=30.0,
        backoff_base=0.02,
        backoff_cap=0.1,
        attach_deadline=5.0,
        fault_plan=plan,
    )
    base.update(overrides)
    return RuntimeConfig(
        backend="distributed", jobs=2, distributed=DistributedConfig(**base)
    )


def _run_signature(runs):
    return [
        (run.transactions, run.final_pool_size, run.initial_recipes,
         run.trace)
        for run in runs
    ]


# ---------------------------------------------------------------------------
# Plan plumbing
# ---------------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ExecutionError, match="unknown fault action"):
        FaultSpec(action="explode")
    with pytest.raises(ExecutionError, match="1-based"):
        FaultSpec(action="kill", nth_task=0)
    with pytest.raises(ExecutionError, match=">= 0"):
        FaultSpec(action="delay", seconds=-1.0)


def test_fault_spec_matching():
    spec = FaultSpec(action="kill", nth_task=2, worker="local-1")
    assert spec.matches("local-1", 2)
    assert not spec.matches("local-1", 1)
    assert not spec.matches("local-0", 2)
    # worker=None targets every worker.
    broadcast = FaultSpec(action="kill", nth_task=1)
    assert broadcast.matches("anyone", 1)


def test_fault_plan_first_match_wins_and_round_trips(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(action="delay", nth_task=1, seconds=0.01),
        FaultSpec(action="kill", nth_task=1),
        FaultSpec(action="hang", nth_task=3, worker="w0", seconds=1.0),
    ))
    assert plan.for_task("w0", 1).action == "delay"
    assert plan.for_task("w0", 2) is None
    path = plan.save(tmp_path / "faults.json")
    assert FaultPlan.load(path) == plan


def test_fault_plan_load_failures_are_loud(tmp_path):
    with pytest.raises(ExecutionError, match="no fault plan"):
        FaultPlan.load(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ExecutionError, match="unreadable"):
        FaultPlan.load(bad)
    with pytest.raises(ExecutionError, match="'faults' list"):
        FaultPlan.from_payload({"faults": "nope"})


# ---------------------------------------------------------------------------
# Crash, hang, delay — results must not change
# ---------------------------------------------------------------------------


def test_worker_kill_is_reclaimed_and_retried():
    plan = FaultPlan(faults=(
        FaultSpec(action="kill", nth_task=1, worker="local-0"),
    ))
    result = get_executor(_config(plan)).map(_double, list(range(12)))
    assert result == [x * 2 for x in range(12)]
    outcomes = [a.outcome for a in task_attempts()]
    assert "lease_expired" in outcomes  # the kill was noticed...
    expired = next(
        a for a in task_attempts() if a.outcome == "lease_expired"
    )
    assert expired.worker == "local-0"
    # ...and that exact task completed on a later attempt.
    retried = [
        a for a in task_attempts()
        if a.task_index == expired.task_index and a.outcome == "completed"
    ]
    assert retried and retried[0].attempt == expired.attempt + 1


def test_worker_hang_hits_task_timeout():
    # The hung worker's heartbeat keeps beating (it is alive, just
    # stuck), so only the per-task timeout — not lease expiry — may
    # reclaim it.
    plan = FaultPlan(faults=(
        FaultSpec(action="hang", nth_task=1, worker="local-1", seconds=30.0),
    ))
    config = _config(plan, task_timeout=0.3, lease_timeout=1.0)
    result = get_executor(config).map(_double, list(range(8)))
    assert result == [x * 2 for x in range(8)]
    outcomes = [a.outcome for a in task_attempts()]
    assert "timed_out" in outcomes
    assert "lease_expired" not in outcomes


def test_delay_fault_is_benign():
    plan = FaultPlan(faults=(
        FaultSpec(action="delay", nth_task=1, seconds=0.05),
    ))
    result = get_executor(_config(plan)).map(_double, list(range(6)))
    assert result == [x * 2 for x in range(6)]
    assert {a.outcome for a in task_attempts()} == {"completed"}


def test_retry_exhaustion_raises_with_attempt_log():
    # Every worker kills its first claim; with a restart budget big
    # enough to keep supplying fresh victims, some task burns all its
    # attempts and the map must fail loudly instead of hanging.
    plan = FaultPlan(faults=(FaultSpec(action="kill", nth_task=1),))
    config = _config(
        plan, local_workers=1, max_attempts=2, lease_timeout=0.3,
        max_worker_restarts=8,
    )
    with pytest.raises(TaskRetryExhaustedError, match="2 attempts"):
        get_executor(config).map(_double, [1, 2, 3])
    expired = [
        a for a in task_attempts() if a.outcome == "lease_expired"
    ]
    assert len(expired) >= 2  # both attempts of the exhausted task died


# ---------------------------------------------------------------------------
# Bit-identity under every fault kind (the acceptance criterion)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("action", FAULT_KINDS)
def test_simulation_results_bit_identical_under_fault(tiny_spec, action):
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(23), 5)
    serial = execute_runs(model, tiny_spec, seeds)
    plan = FaultPlan(faults=(
        FaultSpec(action=action, nth_task=1, worker="local-0", seconds=30.0)
        if action == "hang"
        else FaultSpec(
            action=action, nth_task=1, worker="local-0", seconds=0.05
        ),
    ))
    config = _config(
        plan,
        task_timeout=1.0 if action == "hang" else 30.0,
        lease_timeout=2.0 if action == "hang" else 0.4,
    )
    faulted = execute_runs(model, tiny_spec, seeds, runtime=config)
    assert _run_signature(faulted) == _run_signature(serial), (
        f"results diverged from serial under injected {action!r}"
    )


# ---------------------------------------------------------------------------
# Mid-run kill + checkpoint resume (DESIGN.md §9 acceptance)
# ---------------------------------------------------------------------------


def test_distributed_kill_at_step_resumes_bit_identical(
    tiny_spec, tmp_path
):
    """A worker killed mid-run is resumed from its snapshot, not replayed.

    ``local-0``'s first claim dies at engine step 4 with snapshots
    every 2 steps; the reclaimed attempt must (a) resume from a
    snapshot — recorded as ``resumed_from_step`` on the completed
    :class:`TaskAttempt` — and (b) still produce results bit-identical
    to an uninterrupted serial run.
    """
    model = create_model("CM-R")
    # Enough tasks that local-0 reliably claims one before the queue
    # drains (mirrors test_worker_kill_is_reclaimed_and_retried).
    seeds = spawn_seeds(ensure_rng(23), 12)
    serial = execute_runs(model, tiny_spec, seeds)
    plan = FaultPlan(faults=(
        FaultSpec(action="kill_at_step", nth_task=1, worker="local-0",
                  at_step=4),
    ))
    config = _config(plan, checkpoint_every=2)
    config = RuntimeConfig(
        backend="distributed", jobs=2, cache_dir=tmp_path / "cache",
        distributed=config.distributed,
    )
    faulted = execute_runs(model, tiny_spec, seeds, runtime=config)
    assert _run_signature(faulted) == _run_signature(serial)

    outcomes = [a.outcome for a in task_attempts()]
    assert "lease_expired" in outcomes  # the mid-run death was noticed
    resumed = [
        a for a in task_attempts()
        if a.outcome == "completed" and a.resumed_from_step is not None
    ]
    assert resumed, "no attempt resumed from a snapshot"
    # Snapshot-then-kill at step 4 with every=2: the resume point is
    # the snapshot written at the kill step itself.
    assert resumed[0].resumed_from_step == 4
    # Completed runs discard their snapshots.
    assert not list((tmp_path / "cache").glob("*.ckpt.pkl"))


def test_distributed_kill_at_step_resumes_batched_engine(
    tiny_spec, tmp_path
):
    """Same contract for the batched engine's single stacked task."""
    model = create_model("CM-R", engine="batched")
    seeds = spawn_seeds(ensure_rng(29), 4)
    serial = execute_runs(model, tiny_spec, seeds)
    plan = FaultPlan(faults=(
        FaultSpec(action="kill_at_step", nth_task=1, worker="local-0",
                  at_step=3),
    ))
    # One local worker, so local-0 is guaranteed to claim the single
    # batched task first; its replacement (fresh name) retries it.
    config = _config(plan, local_workers=1, checkpoint_every=1)
    config = RuntimeConfig(
        backend="distributed", jobs=1, cache_dir=tmp_path / "cache",
        distributed=config.distributed,
    )
    faulted = execute_runs(model, tiny_spec, seeds, runtime=config)
    assert _run_signature(faulted) == _run_signature(serial)
    resumed = [
        a for a in task_attempts()
        if a.outcome == "completed" and a.resumed_from_step is not None
    ]
    assert resumed and resumed[0].resumed_from_step == 3
    assert not list((tmp_path / "cache").glob("*.ckpt.pkl"))


def test_kill_at_step_without_checkpointing_replays_from_scratch(tiny_spec):
    """With snapshots off the kill still fires; retry replays step 0."""
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(31), 12)
    serial = execute_runs(model, tiny_spec, seeds)
    plan = FaultPlan(faults=(
        FaultSpec(action="kill_at_step", nth_task=1, worker="local-0",
                  at_step=2),
    ))
    faulted = execute_runs(model, tiny_spec, seeds, runtime=_config(plan))
    assert _run_signature(faulted) == _run_signature(serial)
    outcomes = [a.outcome for a in task_attempts()]
    assert "lease_expired" in outcomes
    # No cache dir, no snapshots: nothing can have resumed.
    assert all(
        a.resumed_from_step is None
        for a in task_attempts()
        if a.outcome == "completed"
    )
