"""Tests for the on-disk run cache."""

from __future__ import annotations

import pytest

from repro.errors import RunCacheError
from repro.models.ensemble import run_ensemble
from repro.models.registry import create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import (
    RunCache,
    RuntimeConfig,
    execute_runs,
    run_fingerprint,
)


def _signature(runs):
    return [(run.transactions, run.trace) for run in runs]


def test_cold_cache_misses_then_stores(tiny_spec, tmp_path):
    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(1), 4)
    execute_runs(model, tiny_spec, seeds, cache=cache)
    assert cache.stats.misses == 4
    assert cache.stats.hits == 0
    assert cache.stats.stores == 4
    assert len(cache) == 4


def test_warm_cache_serves_identical_runs(tiny_spec, tmp_path):
    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(1), 4)
    first = execute_runs(model, tiny_spec, seeds, cache=cache)
    second = execute_runs(model, tiny_spec, seeds, cache=cache)
    assert cache.stats.hits == 4
    assert cache.stats.stores == 4  # nothing re-stored
    assert _signature(first) == _signature(second)


def test_partial_hit_executes_only_misses(tiny_spec, tmp_path):
    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(1), 4)
    execute_runs(model, tiny_spec, seeds[:2], cache=cache)
    runs = execute_runs(model, tiny_spec, seeds, cache=cache)
    assert cache.stats.hits == 2
    assert cache.stats.stores == 4
    assert _signature(runs) == _signature(
        execute_runs(model, tiny_spec, seeds)
    )


def test_cache_is_shared_across_backends(tiny_spec, tmp_path):
    model = create_model("CM-M")
    seeds = spawn_seeds(ensure_rng(9), 4)
    process_cfg = RuntimeConfig(
        backend="process", jobs=2, cache_dir=tmp_path
    )
    populated = execute_runs(model, tiny_spec, seeds, runtime=process_cfg)

    cache = RunCache(tmp_path)
    served = execute_runs(model, tiny_spec, seeds, cache=cache)
    assert cache.stats.hits == 4 and cache.stats.misses == 0
    assert _signature(served) == _signature(populated)


def test_distinct_inputs_do_not_collide(tiny_spec, tmp_path):
    seed = spawn_seeds(ensure_rng(1), 1)[0]
    fingerprints = {
        run_fingerprint(create_model("CM-R"), tiny_spec, seed),
        run_fingerprint(create_model("CM-C"), tiny_spec, seed),
        run_fingerprint(create_model("CM-R"), tiny_spec, seed + 1),
        run_fingerprint(
            create_model("CM-R"), tiny_spec, seed, record_history=True
        ),
        run_fingerprint(
            create_model("CM-R", params=create_model("CM-R")
                         .params.with_mutations(9)),
            tiny_spec, seed,
        ),
    }
    assert len(fingerprints) == 5


def test_fingerprint_covers_non_param_model_state(tiny_spec):
    """Regression: behavioral knobs stored as plain attributes (e.g.
    NullModel.sample_from) must reach the cache key, or the two
    ablation variants would silently share cached runs."""
    from repro.models.null_model import NullModel

    seed = spawn_seeds(ensure_rng(1), 1)[0]
    assert run_fingerprint(
        NullModel(sample_from="pool"), tiny_spec, seed
    ) != run_fingerprint(NullModel(sample_from="universe"), tiny_spec, seed)


def test_fingerprint_is_stable_for_equal_inputs(tiny_spec):
    seed = 424242
    assert run_fingerprint(
        create_model("NM"), tiny_spec, seed
    ) == run_fingerprint(create_model("NM"), tiny_spec, seed)


class _PlainFitness:
    """A user FitnessStrategy that is not a dataclass."""

    def __init__(self, bias: float):
        self.bias = bias

    def assign(self, ingredient_ids, rng):
        import numpy as np

        return np.full(len(ingredient_ids), self.bias)


def test_fingerprint_stable_for_non_dataclass_attributes(tiny_spec):
    """Regression: plain-object attributes must key on class + state,
    not repr() (whose default embeds the memory address, which made
    every identical config miss the cache)."""
    seed = 7
    a = run_fingerprint(
        create_model("CM-R", fitness=_PlainFitness(0.5)), tiny_spec, seed
    )
    b = run_fingerprint(
        create_model("CM-R", fitness=_PlainFitness(0.5)), tiny_spec, seed
    )
    c = run_fingerprint(
        create_model("CM-R", fitness=_PlainFitness(0.9)), tiny_spec, seed
    )
    assert a == b
    assert a != c


def test_fingerprint_handles_array_valued_attributes(tiny_spec):
    """Regression: a strategy holding a numpy array must fingerprint
    (tolist), not crash on the scalar-only ``.item()`` branch."""
    import numpy as np

    class _ArrayFitness:
        def __init__(self):
            self.scores = np.array([0.1, 0.9])

        def assign(self, ingredient_ids, rng):
            return np.full(len(ingredient_ids), 0.5)

    seed = 7
    a = run_fingerprint(
        create_model("CM-R", fitness=_ArrayFitness()), tiny_spec, seed
    )
    b = run_fingerprint(
        create_model("CM-R", fitness=_ArrayFitness()), tiny_spec, seed
    )
    assert a == b


def test_fingerprint_many_matches_single(tiny_spec):
    from repro.runtime import fingerprint_many

    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(3), 4)
    batch = fingerprint_many(model, tiny_spec, seeds)
    assert batch == [
        run_fingerprint(model, tiny_spec, seed) for seed in seeds
    ]
    assert len(set(batch)) == len(batch)


def test_cache_write_failure_does_not_discard_results(tiny_spec, tmp_path,
                                                      monkeypatch):
    """A failing cache.put must degrade, not abort the ensemble."""
    cache = RunCache(tmp_path)

    def broken_put(key, run):
        raise RunCacheError("disk full")

    monkeypatch.setattr(cache, "put", broken_put)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(1), 3)
    runs = execute_runs(model, tiny_spec, seeds, cache=cache)
    assert len(runs) == 3 and all(run is not None for run in runs)
    assert _signature(runs) == _signature(
        execute_runs(model, tiny_spec, seeds)
    )


def test_corrupt_entry_is_a_miss_and_recomputed(tiny_spec, tmp_path):
    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(1), 2)
    clean = execute_runs(model, tiny_spec, seeds, cache=cache)

    for path in tmp_path.glob("*.run.pkl"):
        path.write_bytes(b"not a pickle")
    recovered = execute_runs(model, tiny_spec, seeds, cache=cache)
    assert _signature(recovered) == _signature(clean)
    # the corrupt files were replaced with good entries
    rewarmed = execute_runs(model, tiny_spec, seeds, cache=cache)
    assert _signature(rewarmed) == _signature(clean)


def test_run_ensemble_uses_cache_dir_from_runtime(tiny_spec, tmp_path):
    model = create_model("CM-R")
    config = RuntimeConfig(cache_dir=tmp_path)
    first = run_ensemble(model, tiny_spec, n_runs=3, seed=2, runtime=config)
    assert len(RunCache(tmp_path)) == 3
    second = run_ensemble(model, tiny_spec, n_runs=3, seed=2, runtime=config)
    assert _signature(first.runs) == _signature(second.runs)


def test_cache_rejects_file_path(tmp_path):
    target = tmp_path / "occupied"
    target.write_text("hello")
    with pytest.raises(RunCacheError):
        RunCache(target)


def test_cache_clear(tiny_spec, tmp_path):
    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    execute_runs(model, tiny_spec, spawn_seeds(ensure_rng(1), 3), cache=cache)
    assert cache.clear() == 3
    assert len(cache) == 0


def test_cache_stats_hit_rate():
    from repro.runtime import CacheStats

    stats = CacheStats()
    assert stats.hit_rate() == 0.0
    stats.hits, stats.misses = 3, 1
    assert stats.hit_rate() == pytest.approx(0.75)


def test_engine_distinguishes_cache_keys(tiny_spec):
    """Reference and vectorized runs must never share a cache entry."""
    seed = spawn_seeds(ensure_rng(1), 1)[0]
    reference = run_fingerprint(
        create_model("CM-R", engine="reference"), tiny_spec, seed
    )
    vectorized = run_fingerprint(
        create_model("CM-R", engine="vectorized"), tiny_spec, seed
    )
    assert reference != vectorized
    # Per-request engine override is keyed too, and a request override
    # matching the params engine keys identically.
    overridden = run_fingerprint(
        create_model("CM-R", engine="vectorized"), tiny_spec, seed,
        engine="reference",
    )
    assert overridden != vectorized
    assert run_fingerprint(
        create_model("CM-R", engine="vectorized"), tiny_spec, seed,
        engine="vectorized",
    ) == vectorized


def test_cached_reference_runs_not_served_to_vectorized(tiny_spec, tmp_path):
    """End to end: switching engines misses instead of replaying."""
    cache = RunCache(tmp_path)
    seeds = spawn_seeds(ensure_rng(2), 3)
    execute_runs(
        create_model("CM-R", engine="reference"), tiny_spec, seeds,
        cache=cache,
    )
    assert cache.stats.stores == 3
    execute_runs(
        create_model("CM-R", engine="vectorized"), tiny_spec, seeds,
        cache=cache,
    )
    assert cache.stats.hits == 0
    assert cache.stats.stores == 6


def test_prune_older_than_removes_only_stale_entries(tiny_spec, tmp_path):
    import os
    import time

    cache = RunCache(tmp_path)
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(1), 4)
    execute_runs(model, tiny_spec, seeds, cache=cache)
    paths = sorted(tmp_path.glob("*.run.pkl"))
    assert len(paths) == 4

    now = time.time()
    stale = now - 10 * 86400
    for path in paths[:2]:
        os.utime(path, (stale, stale))
    removed = cache.prune_older_than(7 * 86400, now=now)
    assert removed == 2
    assert len(cache) == 2
    # Survivors still serve hits.
    runs = execute_runs(model, tiny_spec, seeds, cache=cache)
    assert len(runs) == 4
    assert cache.stats.hits == 2


def test_prune_rejects_negative_age(tmp_path):
    cache = RunCache(tmp_path)
    with pytest.raises(RunCacheError):
        cache.prune_older_than(-1)


def test_prune_empty_cache_is_noop(tmp_path):
    assert RunCache(tmp_path).prune_older_than(0) == 0
