"""Tests for the sharded sweep planner (:mod:`repro.runtime.sweep`).

The contract under test is the tentpole acceptance criterion: a grid
sweep — all cells flattened into one backend pass — produces
bit-identical per-cell results to the serial per-cell path for a fixed
master seed, and cache-warm sweeps never touch the worker pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.experiments.base import ExperimentContext
from repro.experiments.fig4 import run_fig4
from repro.lexicon.categories import Category
from repro.models.ensemble import run_ensemble
from repro.models.null_model import NullModel
from repro.models.params import CuisineSpec
from repro.models.registry import PAPER_MODELS, create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import (
    RunCache,
    RuntimeConfig,
    execute_runs,
    execute_sweep,
    plan_cells,
    plan_grid,
    select_regions,
)

_CATEGORIES = (Category.VEGETABLE, Category.SPICE, Category.DAIRY)


@pytest.fixture(scope="module")
def other_spec() -> CuisineSpec:
    """A second tiny cuisine so grids have a real cuisine axis."""
    return CuisineSpec(
        region_code="TS2",
        ingredient_ids=tuple(range(100, 124)),
        categories=tuple(_CATEGORIES[i % 3] for i in range(24)),
        avg_recipe_size=3.0,
        n_recipes=30,
        phi=0.8,
    )


def _signature(runs):
    return [
        (run.transactions, run.final_pool_size, run.initial_recipes, run.trace)
        for run in runs
    ]


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def test_plan_grid_expands_cuisine_major(tiny_spec, other_spec):
    models = [create_model("CM-R"), create_model("NM")]
    plan = plan_grid(models, [tiny_spec, other_spec], n_runs=3, seed=5)
    assert plan.n_cells == 4
    assert plan.total_runs == 12
    assert [(c.region_code, c.model_name) for c in plan.cells] == [
        ("TST", "CM-R"), ("TST", "NM"), ("TS2", "CM-R"), ("TS2", "NM"),
    ]
    assert all(cell.n_runs == 3 for cell in plan.cells)


def test_plan_seeds_replay_the_serial_per_cell_draws(tiny_spec, other_spec):
    """Planned seeds == the draws a serial per-cell loop would make."""
    models = [create_model("CM-R"), create_model("NM")]
    plan = plan_grid(models, [tiny_spec, other_spec], n_runs=4, seed=11)
    reference_root = ensure_rng(11)
    for cell in plan.cells:
        assert list(cell.seeds) == spawn_seeds(reference_root, 4)


def test_plan_cells_advances_a_passed_generator_identically(tiny_spec):
    """Passing a live generator consumes it exactly like per-cell calls."""
    model = create_model("CM-R")
    planned_root = ensure_rng(9)
    plan_cells([(model, tiny_spec)] * 3, n_runs=2, seed=planned_root)
    serial_root = ensure_rng(9)
    for _ in range(3):
        spawn_seeds(serial_root, 2)
    assert planned_root.integers(0, 2**31) == serial_root.integers(0, 2**31)


def test_plan_requests_are_flat_and_cell_major(tiny_spec, other_spec):
    plan = plan_grid(
        [create_model("CM-R")], [tiny_spec, other_spec], n_runs=2, seed=1,
        record_history=True,
    )
    requests = plan.requests()
    assert len(requests) == 4
    assert [r.spec.region_code for r in requests] == [
        "TST", "TST", "TS2", "TS2",
    ]
    assert [r.seed for r in requests] == [
        seed for cell in plan.cells for seed in cell.seeds
    ]
    assert all(r.record_history for r in requests)


def test_plan_validation(tiny_spec):
    with pytest.raises(ExecutionError):
        plan_cells([(create_model("CM-R"), tiny_spec)], n_runs=0, seed=1)
    with pytest.raises(ExecutionError):
        plan_grid([], [tiny_spec], n_runs=2, seed=1)
    with pytest.raises(ExecutionError):
        plan_grid([create_model("CM-R")], [], n_runs=2, seed=1)


def test_select_regions():
    available = ("ITA", "KOR", "MEX")
    assert select_regions(available) == available
    assert select_regions(available, ("MEX", "ITA")) == ("MEX", "ITA")
    with pytest.raises(ExecutionError):
        select_regions(available, ("ITA", "ATLANTIS"))
    with pytest.raises(ExecutionError):  # duplicates would plan twin cells
        select_regions(available, ("ITA", "KOR", "ITA"))


# ---------------------------------------------------------------------------
# Shard/merge round-trip vs the per-cell path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "config",
    (
        RuntimeConfig(),
        RuntimeConfig(backend="thread", jobs=3),
        RuntimeConfig(backend="process", jobs=2),
    ),
    ids=lambda config: config.backend,
)
def test_sweep_bit_identical_to_per_cell_execute_runs(
    tiny_spec, other_spec, config
):
    models = [create_model(name) for name in ("CM-R", "CM-C", "NM")]
    specs = [tiny_spec, other_spec]
    plan = plan_grid(models, specs, n_runs=4, seed=17)
    result = execute_sweep(plan, runtime=config)

    reference_root = ensure_rng(17)
    for cell_runs in result.cells:
        reference = execute_runs(
            cell_runs.cell.model,
            cell_runs.cell.spec,
            spawn_seeds(reference_root, 4),
        )
        assert _signature(cell_runs.runs) == _signature(reference)
    assert result.executed == plan.total_runs
    assert result.cached == 0


def test_sweep_runs_for_and_positional_access(tiny_spec, other_spec):
    models = [create_model("CM-R"), NullModel(sample_from="pool"),
              NullModel(sample_from="universe")]
    plan = plan_grid(models, [tiny_spec, other_spec], n_runs=2, seed=3)
    result = execute_sweep(plan)
    assert len(result.runs_for("CM-R", "TS2")) == 2
    with pytest.raises(ExecutionError):
        result.runs_for("CM-R", "NOPE")
    with pytest.raises(ExecutionError):  # two NM cells per cuisine
        result.runs_for("NM", "TST")
    assert result.cells[1].cell.model.sample_from == "pool"
    assert result.cells[2].cell.model.sample_from == "universe"


def test_sweep_record_history(tiny_spec):
    plan = plan_grid(
        [create_model("CM-R")], [tiny_spec], n_runs=2, seed=2,
        record_history=True,
    )
    result = execute_sweep(plan)
    for run in result.cells[0].runs:
        assert run.history is not None
        assert run.history[-1][1] == tiny_spec.n_recipes


# ---------------------------------------------------------------------------
# Cache integration
# ---------------------------------------------------------------------------


def test_cache_warm_sweep_skips_worker_execution(
    tiny_spec, other_spec, tmp_path, monkeypatch
):
    plan = plan_grid(
        [create_model("CM-R"), create_model("NM")],
        [tiny_spec, other_spec],
        n_runs=3,
        seed=23,
    )
    cache = RunCache(tmp_path)
    cold = execute_sweep(plan, cache=cache)
    assert cold.executed == plan.total_runs and cold.cached == 0

    # A warm sweep must not even construct an executor.
    import repro.runtime.runner as runner_module

    def explode(config):
        raise AssertionError("warm sweep dispatched to the backend")

    monkeypatch.setattr(runner_module, "get_executor", explode)
    warm = execute_sweep(plan, cache=RunCache(tmp_path))
    assert warm.executed == 0
    assert warm.cached == plan.total_runs
    for cold_cell, warm_cell in zip(cold.cells, warm.cells):
        assert _signature(cold_cell.runs) == _signature(warm_cell.runs)
        assert warm_cell.cached == warm_cell.cell.n_runs
        assert warm_cell.executed == 0


def test_sweep_reuses_per_cell_cache_entries(tiny_spec, other_spec, tmp_path):
    """execute_runs and execute_sweep share one fingerprint space."""
    model = create_model("CM-R")
    plan = plan_grid([model], [tiny_spec, other_spec], n_runs=2, seed=31)
    # Warm only the first cell through the per-ensemble path.
    execute_runs(
        model, tiny_spec, plan.cells[0].seeds, cache=RunCache(tmp_path)
    )
    result = execute_sweep(plan, runtime=RuntimeConfig(cache_dir=tmp_path))
    assert result.cells[0].cached == 2
    assert result.cells[1].cached == 0
    assert result.executed == 2


def test_sweep_cache_dir_via_runtime_config(tiny_spec, tmp_path):
    plan = plan_grid([create_model("NM")], [tiny_spec], n_runs=2, seed=41)
    first = execute_sweep(plan, runtime=RuntimeConfig(cache_dir=tmp_path))
    second = execute_sweep(plan, runtime=RuntimeConfig(cache_dir=tmp_path))
    assert first.executed == 2
    assert second.cached == 2 and second.executed == 0


# ---------------------------------------------------------------------------
# Acceptance: fig4 through the sweep == the serial per-cell reference
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig4_context(lexicon, small_corpus) -> ExperimentContext:
    return ExperimentContext(
        lexicon=lexicon, dataset=small_corpus, scale=0.06, seed=5,
        ensemble_runs=2,
    )


def test_fig4_sweep_equals_per_cell_reference(fig4_context):
    """run_fig4's merged ensembles == a serial per-cell run_ensemble loop."""
    codes = ("ITA", "KOR")
    result = run_fig4(fig4_context, region_codes=codes)

    reference_root = ensure_rng(fig4_context.seed)
    for code in codes:
        spec = CuisineSpec.from_view(
            fig4_context.dataset.cuisine(code), fig4_context.lexicon
        )
        for name in PAPER_MODELS:
            reference = run_ensemble(
                create_model(name), spec,
                n_runs=fig4_context.ensemble_runs,
                seed=reference_root,
                mining=fig4_context.mining,
            )
            produced = result.evaluations[code].model_curves[name]
            assert np.array_equal(
                produced.frequencies, reference.ingredient_curve.frequencies
            ), f"{name} on {code} diverged from the per-cell path"


def test_fig4_process_backend_bit_identical(fig4_context):
    serial = run_fig4(fig4_context, region_codes=("ITA", "KOR"))
    process = run_fig4(
        fig4_context.with_runtime(
            RuntimeConfig(backend="process", jobs=2)
        ),
        region_codes=("ITA", "KOR"),
    )
    assert serial.evaluations.keys() == process.evaluations.keys()
    for code, evaluation in serial.evaluations.items():
        other = process.evaluations[code]
        assert evaluation.distances == other.distances
        assert evaluation.best_model == other.best_model
        for name, curve in evaluation.model_curves.items():
            assert np.array_equal(
                curve.frequencies, other.model_curves[name].frequencies
            )
