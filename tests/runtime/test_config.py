"""Tests for :class:`repro.runtime.config.RuntimeConfig`."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ExecutionError
from repro.runtime import BACKENDS, DistributedConfig, RuntimeConfig


def test_defaults_are_serial_and_uncached():
    config = RuntimeConfig()
    assert config.backend == "serial"
    assert config.jobs == 1
    assert config.cache_dir is None
    assert config.distributed is None


def test_backends_constant_covers_all():
    assert BACKENDS == ("serial", "thread", "process", "distributed")
    for backend in BACKENDS:
        assert RuntimeConfig(backend=backend).backend == backend


def test_unknown_backend_rejected():
    with pytest.raises(ExecutionError):
        RuntimeConfig(backend="gpu")


def test_negative_jobs_rejected():
    with pytest.raises(ExecutionError):
        RuntimeConfig(jobs=-1)


def test_jobs_zero_resolves_to_cpu_count():
    resolved = RuntimeConfig(jobs=0).resolve_jobs()
    assert resolved >= 1


def test_explicit_jobs_resolve_unchanged():
    assert RuntimeConfig(backend="thread", jobs=3).resolve_jobs() == 3


def test_cache_dir_coerced_to_path(tmp_path):
    config = RuntimeConfig(cache_dir=str(tmp_path))
    assert isinstance(config.cache_dir, Path)


def test_with_cache_round_trip(tmp_path):
    config = RuntimeConfig(backend="thread", jobs=2)
    cached = config.with_cache(tmp_path)
    assert cached.cache_dir == tmp_path
    assert cached.backend == "thread"
    assert cached.with_cache(None).cache_dir is None


def test_config_is_hashable_and_frozen():
    config = RuntimeConfig()
    assert hash(config) == hash(RuntimeConfig())
    with pytest.raises(Exception):
        config.jobs = 4  # type: ignore[misc]


def test_resolve_distributed_defaults_when_unset():
    config = RuntimeConfig(backend="distributed")
    resolved = config.resolve_distributed()
    assert resolved == DistributedConfig()
    assert resolved.spool_dir is None
    assert resolved.max_attempts >= 1


def test_distributed_config_coerces_spool_dir(tmp_path):
    config = DistributedConfig(spool_dir=str(tmp_path))
    assert isinstance(config.spool_dir, Path)


def test_distributed_config_is_hashable_and_frozen():
    config = DistributedConfig()
    assert hash(config) == hash(DistributedConfig())
    with pytest.raises(Exception):
        config.max_attempts = 5  # type: ignore[misc]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"local_workers": -1},
        {"task_timeout": 0.0},
        {"lease_timeout": -1.0},
        {"heartbeat_interval": 0.0},
        {"max_attempts": 0},
        {"backoff_base": 0.0},
        {"attach_deadline": 0.0},
        {"poll_interval": 0.0},
        {"max_worker_restarts": -1},
        # A lease timeout at or below the heartbeat interval would
        # declare every healthy worker dead between beats.
        {"lease_timeout": 1.0, "heartbeat_interval": 1.0},
    ],
)
def test_distributed_config_rejects_invalid(kwargs):
    with pytest.raises(ExecutionError):
        DistributedConfig(**kwargs)
