"""Tests for :class:`repro.runtime.config.RuntimeConfig`."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ExecutionError
from repro.runtime import BACKENDS, RuntimeConfig


def test_defaults_are_serial_and_uncached():
    config = RuntimeConfig()
    assert config.backend == "serial"
    assert config.jobs == 1
    assert config.cache_dir is None


def test_backends_constant_covers_all():
    assert BACKENDS == ("serial", "thread", "process")
    for backend in BACKENDS:
        assert RuntimeConfig(backend=backend).backend == backend


def test_unknown_backend_rejected():
    with pytest.raises(ExecutionError):
        RuntimeConfig(backend="gpu")


def test_negative_jobs_rejected():
    with pytest.raises(ExecutionError):
        RuntimeConfig(jobs=-1)


def test_jobs_zero_resolves_to_cpu_count():
    resolved = RuntimeConfig(jobs=0).resolve_jobs()
    assert resolved >= 1


def test_explicit_jobs_resolve_unchanged():
    assert RuntimeConfig(backend="thread", jobs=3).resolve_jobs() == 3


def test_cache_dir_coerced_to_path(tmp_path):
    config = RuntimeConfig(cache_dir=str(tmp_path))
    assert isinstance(config.cache_dir, Path)


def test_with_cache_round_trip(tmp_path):
    config = RuntimeConfig(backend="thread", jobs=2)
    cached = config.with_cache(tmp_path)
    assert cached.cache_dir == tmp_path
    assert cached.backend == "thread"
    assert cached.with_cache(None).cache_dir is None


def test_config_is_hashable_and_frozen():
    config = RuntimeConfig()
    assert hash(config) == hash(RuntimeConfig())
    with pytest.raises(Exception):
        config.jobs = 4  # type: ignore[misc]
