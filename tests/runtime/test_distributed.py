"""Tests for the distributed work-queue backend (DESIGN.md §8).

Happy-path correctness, determinism vs serial, the cache-rendezvous
contract, retry exhaustion on deterministic task errors, the
no-workers→process degradation, and the ``repro worker`` CLI loop.
Failure *injection* (kill/hang/delay) lives in
``test_fault_injection.py``; the pure lease state machine is
property-tested in ``test_lease_properties.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ExecutionError, TaskRetryExhaustedError
from repro.models.registry import create_model
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import (
    BackendDegradationWarning,
    DistributedConfig,
    DistributedExecutor,
    RunCache,
    RuntimeConfig,
    Spool,
    backend_degradations,
    clear_backend_degradations,
    clear_task_attempts,
    execute_runs,
    get_executor,
    parallel_map,
    run_worker,
    signal_stop,
    task_attempts,
)


def _square(x: int) -> int:
    return x * x


def _worker_pid(_x: int) -> int:
    return os.getpid()


def _always_fails(_x: int) -> int:
    raise ValueError("deterministic task error")


def fast_distributed(**overrides) -> DistributedConfig:
    """Timings sized for tests: milliseconds, not production seconds."""
    base = dict(
        local_workers=2,
        poll_interval=0.01,
        heartbeat_interval=0.05,
        lease_timeout=0.5,
        task_timeout=30.0,
        backoff_base=0.02,
        backoff_cap=0.1,
        attach_deadline=5.0,
    )
    base.update(overrides)
    return DistributedConfig(**base)


def _config(**overrides) -> RuntimeConfig:
    return RuntimeConfig(
        backend="distributed", jobs=2, distributed=fast_distributed(**overrides)
    )


@pytest.fixture(autouse=True)
def _clean_records():
    clear_task_attempts()
    clear_backend_degradations()
    yield
    clear_task_attempts()
    clear_backend_degradations()


def _run_signature(runs):
    return [
        (run.transactions, run.final_pool_size, run.initial_recipes,
         run.trace)
        for run in runs
    ]


# ---------------------------------------------------------------------------
# Executor basics
# ---------------------------------------------------------------------------


def test_get_executor_builds_distributed():
    executor = get_executor(_config())
    assert isinstance(executor, DistributedExecutor)
    assert executor.name == "distributed"
    assert executor.requires_pickling


def test_distributed_not_degraded_at_jobs_one():
    # jobs=1 degrades the in-process pools to serial, but a distributed
    # request changes *where* work runs, so it must survive.
    config = RuntimeConfig(
        backend="distributed", jobs=1, distributed=fast_distributed()
    )
    assert isinstance(get_executor(config), DistributedExecutor)


def test_map_preserves_order_and_completes():
    result = get_executor(_config()).map(_square, list(range(25)))
    assert result == [x * x for x in range(25)]
    attempts = task_attempts()
    assert len(attempts) == 25
    assert {attempt.outcome for attempt in attempts} == {"completed"}
    assert all(attempt.attempt == 1 for attempt in attempts)


def test_map_empty_items_is_noop():
    assert get_executor(_config()).map(_square, []) == []
    assert task_attempts() == ()


def test_work_crosses_process_boundary():
    pids = get_executor(_config()).map(_worker_pid, list(range(6)))
    assert all(pid != os.getpid() for pid in pids)


def test_unpicklable_work_raises_execution_error():
    captured = 3

    def closure(x: int) -> int:  # pragma: no cover - never executes
        return x + captured

    with pytest.raises(ExecutionError, match="picklable"):
        get_executor(_config()).map(closure, [1, 2])


def test_parallel_map_degrades_unpicklable_to_threads():
    # Through parallel_map the same closure degrades (with a recorded
    # warning) instead of raising — mirroring the process backend.
    captured = 7

    def closure(x: int) -> int:
        return x + captured

    with pytest.warns(BackendDegradationWarning, match="does not pickle"):
        result = parallel_map(closure, [1, 2], runtime=_config())
    assert result == [8, 9]
    events = backend_degradations()
    assert events[0].requested == "distributed"
    assert events[0].effective == "thread"


# ---------------------------------------------------------------------------
# Determinism and the cache rendezvous
# ---------------------------------------------------------------------------


def test_execute_runs_bit_identical_to_serial(tiny_spec):
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(7), 6)
    serial = execute_runs(model, tiny_spec, seeds)
    distributed = execute_runs(model, tiny_spec, seeds, runtime=_config())
    assert _run_signature(distributed) == _run_signature(serial)


def test_workers_write_runs_into_shared_cache(tiny_spec, tmp_path):
    model = create_model("CM-R")
    seeds = spawn_seeds(ensure_rng(11), 5)
    config = RuntimeConfig(
        backend="distributed", jobs=2, cache_dir=tmp_path,
        distributed=fast_distributed(),
    )
    first = execute_runs(model, tiny_spec, seeds, runtime=config)
    # The workers themselves wrote every run into the cache directory —
    # the result rendezvous: a resumed (or serial) invocation is served
    # entirely from disk.
    assert len(RunCache(tmp_path)) == len(seeds)
    cache = RunCache(tmp_path)
    serial = execute_runs(
        model, tiny_spec, seeds,
        runtime=RuntimeConfig(cache_dir=tmp_path), cache=cache,
    )
    assert cache.stats.hits == len(seeds)
    assert cache.stats.misses == 0
    assert _run_signature(serial) == _run_signature(first)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


def test_deterministic_task_error_exhausts_retries():
    config = _config(max_attempts=2)
    with pytest.raises(TaskRetryExhaustedError, match="2 attempts"):
        get_executor(config).map(_always_fails, [1, 2, 3])
    failed = [a for a in task_attempts() if a.outcome == "failed"]
    assert failed
    assert all("deterministic task error" in a.error for a in failed)
    # Some task burned its full attempt budget before the map gave up.
    exhausted = [a for a in failed if a.attempt == 2]
    assert exhausted


def test_attempt_records_are_queryable_and_clearable():
    get_executor(_config()).map(_square, [1, 2])
    assert len(task_attempts()) == 2
    record = task_attempts()[0]
    assert record.task_index in (0, 1)
    assert record.worker is not None
    assert record.elapsed_seconds is not None
    clear_task_attempts()
    assert task_attempts() == ()


# ---------------------------------------------------------------------------
# No-workers degradation
# ---------------------------------------------------------------------------


def test_no_workers_degrades_to_process_with_record():
    config = _config(local_workers=0, attach_deadline=0.2)
    with pytest.warns(BackendDegradationWarning, match="no workers"):
        result = get_executor(config).map(_square, [1, 2, 3])
    assert result == [1, 4, 9]
    events = backend_degradations()
    assert len(events) == 1
    assert events[0].requested == "distributed"
    assert events[0].effective == "process"
    assert "attach" in events[0].reason or "within" in events[0].reason


def test_no_workers_degrades_to_serial_at_jobs_one():
    config = RuntimeConfig(
        backend="distributed", jobs=1,
        distributed=fast_distributed(local_workers=0, attach_deadline=0.2),
    )
    with pytest.warns(BackendDegradationWarning):
        assert get_executor(config).map(_square, [4]) == [16]
    assert backend_degradations()[0].effective == "serial"


# ---------------------------------------------------------------------------
# Worker loop and CLI
# ---------------------------------------------------------------------------


def test_run_worker_exits_on_stop_sentinel(tmp_path):
    spool = tmp_path / "spool"
    signal_stop(spool)
    summary = run_worker(spool, worker_id="idle", poll_interval=0.01)
    assert summary.claimed == 0
    assert summary.completed == 0


def test_run_worker_exits_on_idle_timeout(tmp_path):
    summary = run_worker(
        tmp_path / "spool", poll_interval=0.01, idle_timeout=0.05
    )
    assert summary.claimed == 0


def test_external_cli_worker_serves_a_map(tmp_path):
    spool_dir = tmp_path / "spool"
    Spool(spool_dir).ensure()
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--spool", str(spool_dir),
            "--worker-id", "external-0",
            "--poll-interval", "0.02",
            "--heartbeat-interval", "0.05",
            "--idle-timeout", "30",
        ],
        env=env, cwd=str(root),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        config = RuntimeConfig(
            backend="distributed", jobs=2,
            distributed=fast_distributed(
                local_workers=0, spool_dir=spool_dir, attach_deadline=30.0
            ),
        )
        result = get_executor(config).map(_square, list(range(10)))
        assert result == [x * x for x in range(10)]
        assert {a.worker for a in task_attempts()} == {"external-0"}
        signal_stop(spool_dir)
        stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        assert "external-0 done" in stdout
        assert "10 completed" in stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


def test_cli_parser_accepts_worker_and_distributed_flags():
    from repro.cli import _runtime_from_args, build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["worker", "--spool", "queue", "--max-tasks", "3"]
    )
    assert args.command == "worker"
    assert args.spool == Path("queue")
    assert args.max_tasks == 3

    args = parser.parse_args([
        "sweep", "--backend", "distributed", "--spool-dir", "queue",
        "--local-workers", "0",
    ])
    runtime = _runtime_from_args(args)
    assert runtime.backend == "distributed"
    assert runtime.distributed.spool_dir == Path("queue")
    assert runtime.distributed.local_workers == 0

    # In-process backends carry no distributed policy.
    args = parser.parse_args(["sweep", "--backend", "process", "--jobs", "2"])
    assert _runtime_from_args(args).distributed is None


def test_shared_spool_sessions_do_not_collide(tmp_path):
    # Two sequential maps over one spool directory: nonce-namespaced
    # session files must not cross-contaminate, and the spool stays
    # clean of session litter afterwards.
    spool_dir = tmp_path / "spool"
    config = _config(spool_dir=spool_dir)
    executor = get_executor(config)
    assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert executor.map(_square, [4, 5]) == [16, 25]
    spool = Spool(spool_dir)
    assert list(spool.tasks.glob("*")) == []
    assert list(spool.claimed.glob("*")) == []
    assert list(spool.results.glob("*")) == []
