"""Test package: runtime."""
