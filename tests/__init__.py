"""Test package: tests."""
