"""Shared fixtures.

Expensive objects (the standard lexicon, a small multi-cuisine corpus)
are session-scoped; tests must treat them as immutable.

Fast mode: setting ``REPRO_FAST=1`` (CI does) shrinks the ensemble
sizes integration tests request, via the :func:`ensemble_runs` fixture,
so the suite stays within a few minutes on shared runners.
"""

from __future__ import annotations

import os
from typing import Callable

import pytest

from repro.corpus.dataset import RecipeDataset
from repro.corpus.recipe import Recipe
from repro.lexicon.builder import standard_lexicon
from repro.lexicon.categories import Category
from repro.lexicon.ingredient import Ingredient
from repro.lexicon.lexicon import Lexicon
from repro.synthesis.worldgen import WorldKitchen

#: True when the suite runs in fast mode (``REPRO_FAST=1``).
FAST_MODE = os.environ.get("REPRO_FAST", "") == "1"

#: Ensemble-size ceiling applied in fast mode.
FAST_MAX_RUNS = 2


@pytest.fixture(scope="session")
def ensemble_runs() -> Callable[[int], int]:
    """Scale an ensemble size for the current mode.

    Tests ask for the run count they want at full fidelity
    (``ensemble_runs(4)``); in fast mode the count is capped at
    :data:`FAST_MAX_RUNS` so CI smoke jobs stay quick.
    """

    def scaled(n: int) -> int:
        return min(n, FAST_MAX_RUNS) if FAST_MODE else n

    return scaled


@pytest.fixture(scope="session")
def lexicon() -> Lexicon:
    """The paper-exact 721-entity lexicon."""
    return standard_lexicon()


@pytest.fixture(scope="session")
def tiny_lexicon() -> Lexicon:
    """A 10-entity lexicon for fast, fully controlled tests."""
    return Lexicon(
        [
            Ingredient(0, "tomato", Category.VEGETABLE, aliases=("roma tomato",)),
            Ingredient(1, "onion", Category.VEGETABLE),
            Ingredient(2, "garlic", Category.VEGETABLE, aliases=("garlic clove",)),
            Ingredient(3, "butter", Category.DAIRY),
            Ingredient(4, "milk", Category.DAIRY),
            Ingredient(5, "cumin", Category.SPICE),
            Ingredient(6, "paprika", Category.SPICE),
            Ingredient(7, "basil", Category.HERB),
            Ingredient(8, "flour", Category.CEREAL, aliases=("plain flour",)),
            Ingredient(
                9,
                "tomato puree",
                Category.ADDITIVE,
                is_compound=True,
                components=("tomato",),
            ),
        ]
    )


@pytest.fixture(scope="session")
def small_corpus(lexicon: Lexicon) -> RecipeDataset:
    """A three-cuisine corpus at small scale (deterministic)."""
    kitchen = WorldKitchen(lexicon, seed=1234)
    return kitchen.generate_dataset(
        region_codes=("ITA", "KOR", "MEX"), scale=0.06
    )


@pytest.fixture(scope="session")
def world_corpus(lexicon: Lexicon) -> RecipeDataset:
    """All 25 cuisines at very small scale (for cross-cuisine tests)."""
    kitchen = WorldKitchen(lexicon, seed=99)
    return kitchen.generate_dataset(scale=0.02)


@pytest.fixture()
def tiny_dataset(tiny_lexicon: Lexicon) -> RecipeDataset:
    """A hand-written 8-recipe, 2-cuisine dataset over the tiny lexicon."""
    return RecipeDataset(
        [
            Recipe(0, "ITA", (0, 1, 2, 7)),
            Recipe(1, "ITA", (0, 2, 7)),
            Recipe(2, "ITA", (0, 1, 7)),
            Recipe(3, "ITA", (3, 4, 8)),
            Recipe(4, "KOR", (1, 2, 5)),
            Recipe(5, "KOR", (2, 5, 6)),
            Recipe(6, "KOR", (1, 5, 6)),
            Recipe(7, "KOR", (0, 5, 6, 9)),
        ]
    )
