"""Tests for RNG discipline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    choice_index,
    derive_seed,
    ensure_rng,
    iter_child_rngs,
    shuffled,
    spawn,
)


def test_ensure_rng_accepts_int_seed():
    a = ensure_rng(42)
    b = ensure_rng(42)
    assert a.random() == b.random()


def test_ensure_rng_passes_through_generator():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_rejects_bad_types():
    with pytest.raises(TypeError):
        ensure_rng("not a seed")  # type: ignore[arg-type]


def test_spawn_children_are_independent():
    children = spawn(ensure_rng(7), 3)
    draws = [child.random(5).tolist() for child in children]
    assert draws[0] != draws[1] != draws[2]


def test_spawn_deterministic_from_seed():
    a = spawn(ensure_rng(7), 2)
    b = spawn(ensure_rng(7), 2)
    assert a[0].random() == b[0].random()
    assert a[1].random() == b[1].random()


def test_spawn_zero_children():
    assert spawn(ensure_rng(0), 0) == []


def test_spawn_negative_raises():
    with pytest.raises(ValueError):
        spawn(ensure_rng(0), -1)


def test_derive_seed_in_range():
    seed = derive_seed(ensure_rng(3))
    assert 0 <= seed < 2**63


def test_choice_index_bounds():
    rng = ensure_rng(5)
    for _ in range(100):
        assert 0 <= choice_index(rng, 10) < 10


def test_choice_index_empty_raises():
    with pytest.raises(ValueError):
        choice_index(ensure_rng(0), 0)


@given(st.lists(st.integers(), min_size=0, max_size=30), st.integers(0, 2**31))
@settings(max_examples=50)
def test_shuffled_is_permutation(items, seed):
    result = shuffled(ensure_rng(seed), items)
    assert sorted(result) == sorted(items)


def test_iter_child_rngs_yields_n():
    children = list(iter_child_rngs(1, 4))
    assert len(children) == 4
    assert all(isinstance(c, np.random.Generator) for c in children)
