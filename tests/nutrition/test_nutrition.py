"""Tests for the nutrition substrate."""

from __future__ import annotations

import pytest

from repro.lexicon.categories import Category
from repro.nutrition.profiles import (
    NutrientProfile,
    build_nutrition_table,
)
from repro.nutrition.scoring import (
    ingredient_health_scores,
    nutrition_fitness,
)
from repro.rng import ensure_rng


@pytest.fixture(scope="module")
def table(lexicon):
    return build_nutrition_table(lexicon, seed=3)


def test_profile_validation():
    with pytest.raises(ValueError):
        NutrientProfile(-1, 0, 0, 0, 0, 0, 0)


def test_profile_combined_and_scaled():
    a = NutrientProfile(100, 10, 5, 20, 2, 8, 50)
    b = NutrientProfile(200, 0, 15, 10, 1, 2, 150)
    combined = a.combined(b)
    assert combined.kcal == 300
    assert combined.protein_g == 10
    mean = combined.scaled(0.5)
    assert mean.kcal == 150
    assert mean.sodium_mg == 100
    with pytest.raises(ValueError):
        a.scaled(-1)


def test_every_entity_profiled(lexicon, table):
    assert len(table) == len(lexicon)
    for ingredient in lexicon:
        assert ingredient.ingredient_id in table


def test_category_prototypes_show_through(lexicon, table):
    """Oils are fat-dominated; legumes fiber-rich; additives salty-sweet."""
    import numpy as np

    def mean_of(category, attribute):
        members = lexicon.by_category(category)
        return np.mean([
            getattr(table.profile_of(m.ingredient_id), attribute)
            for m in members if not m.is_compound
        ])

    assert mean_of(Category.ESSENTIAL_OIL, "fat_g") > 70
    assert mean_of(Category.LEGUME, "fiber_g") > mean_of(
        Category.MEAT, "fiber_g"
    )
    assert mean_of(Category.ADDITIVE, "sugar_g") > mean_of(
        Category.VEGETABLE, "sugar_g"
    )


def test_compounds_average_components(lexicon, table):
    puree = lexicon.by_name("tomato puree")
    tomato = lexicon.by_name("tomato")
    # Single-component compound: identical profile.
    assert table.profile_of(puree.ingredient_id) == table.profile_of(
        tomato.ingredient_id
    )


def test_recipe_profile_mean(lexicon, table):
    ids = [lexicon.by_name("tomato").ingredient_id,
           lexicon.by_name("olive oil").ingredient_id]
    recipe = table.recipe_profile(ids)
    a = table.profile_of(ids[0])
    b = table.profile_of(ids[1])
    assert recipe.kcal == pytest.approx((a.kcal + b.kcal) / 2)
    with pytest.raises(ValueError):
        table.recipe_profile([])


def test_deterministic(lexicon):
    a = build_nutrition_table(lexicon, seed=9)
    b = build_nutrition_table(lexicon, seed=9)
    for ingredient in lexicon:
        assert a.profile_of(ingredient.ingredient_id) == b.profile_of(
            ingredient.ingredient_id
        )


def test_health_score_bounds(lexicon, table):
    scores = ingredient_health_scores(lexicon, table)
    assert len(scores) == len(lexicon)
    assert all(0.0 <= s <= 1.0 for s in scores.values())


def test_health_score_orders_sensibly(lexicon, table):
    """Vegetables/legumes beat additives and alcoholic drinks on average."""
    import numpy as np

    scores = ingredient_health_scores(lexicon, table)

    def mean_of(category):
        members = lexicon.by_category(category)
        return np.mean([scores[m.ingredient_id] for m in members])

    assert mean_of(Category.LEGUME) > mean_of(Category.ADDITIVE)
    assert mean_of(Category.VEGETABLE) > mean_of(Category.BAKERY)


def test_nutrition_fitness_usable(lexicon, table):
    fitness = nutrition_fitness(lexicon, table)
    values = fitness.assign(list(lexicon.ids)[:50], ensure_rng(0))
    assert values.shape == (50,)
    assert (values >= 0).all() and (values <= 1).all()
