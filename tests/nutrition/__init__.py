"""Test package: nutrition."""
