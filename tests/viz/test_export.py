"""Tests for artifact export."""

from __future__ import annotations

import csv
import json

from repro.viz.export import write_csv, write_curves_csv, write_json


def test_write_csv(tmp_path):
    path = write_csv(
        tmp_path / "deep" / "t.csv", ("a", "b"), [(1, "x"), (2, "y")]
    )
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "x"], ["2", "y"]]


def test_write_json(tmp_path):
    path = write_json(tmp_path / "t.json", {"x": [1, 2]})
    assert json.loads(path.read_text()) == {"x": [1, 2]}


def test_write_json_fallback_to_str(tmp_path):
    path = write_json(tmp_path / "t.json", {"p": tmp_path})
    assert str(tmp_path) in path.read_text()


def test_write_curves_csv(tmp_path):
    path = write_curves_csv(
        tmp_path / "curves.csv", {"a": [0.5, 0.2], "b": [0.9]}
    )
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["label", "rank", "frequency"]
    assert ["a", "1", "0.5"] in rows
    assert ["a", "2", "0.2"] in rows
    assert ["b", "1", "0.9"] in rows
