"""Tests for ASCII rendering."""

from __future__ import annotations

from repro.viz.ascii import (
    render_boxplots,
    render_curves,
    render_histogram,
    render_table,
)


def test_render_table_alignment():
    text = render_table(
        ("Name", "Value"), [("a", 1), ("bbbb", 22)], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "Name" in lines[1]
    assert all("|" in line for line in lines[1:] if "-" not in line)


def test_render_table_empty_rows():
    text = render_table(("A", "B"), [])
    assert "A" in text


def test_render_curves_markers_and_legend():
    text = render_curves(
        {"emp": [0.5, 0.3, 0.1], "model": [0.4, 0.2, 0.05]},
        width=30, height=8, title="curves",
    )
    assert "curves" in text
    assert "emp" in text and "model" in text
    assert "log-log" in text


def test_render_curves_empty():
    assert "no data" in render_curves({}, title="x")
    assert "no positive data" in render_curves({"z": [0.0]}, title="x")


def test_render_curves_single_point():
    text = render_curves({"one": [0.5]})
    assert "one" in text


def test_render_curves_linear_mode():
    text = render_curves({"a": [0.5, 0.25]}, log_log=False)
    assert "log-log" not in text


def test_render_histogram():
    text = render_histogram([2, 3, 4], [1, 10, 5], title="H")
    lines = text.splitlines()
    assert lines[0] == "H"
    assert "█" in text
    assert "10" in text


def test_render_histogram_empty():
    assert "no data" in render_histogram([], [])


def test_render_boxplots():
    text = render_boxplots(
        {
            "Spice": (0.1, 0.3, 0.5, 0.8, 1.2),
            "Dairy": (0.0, 0.2, 0.4, 0.6, 0.9),
        },
        title="B",
    )
    assert "Spice" in text and "Dairy" in text
    assert "█" in text and "┃" in text


def test_render_boxplots_empty():
    assert "no data" in render_boxplots({})


def test_render_boxplots_degenerate_range():
    text = render_boxplots({"X": (0.5, 0.5, 0.5, 0.5, 0.5)})
    assert "X" in text
