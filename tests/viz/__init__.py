"""Test package: viz."""
