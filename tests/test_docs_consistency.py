"""Code-cited documentation anchors must exist.

DESIGN.md's section numbering is stable API: code comments and
docstrings cite sections by number (``DESIGN.md §5``), and DESIGN.md
itself promises "append, don't renumber".  These tests keep that
promise honest:

* every ``DESIGN.md §N`` citation in ``src/``, ``tests/`` and
  ``benchmarks/`` resolves to a real ``## §N`` heading;
* the Contents line and the actual headings agree;
* README's documentation map mentions every DESIGN.md section.

A failure here means a section was renamed/renumbered or a citation
was typo'd — fix the citation or append a new section, never renumber.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DESIGN = REPO_ROOT / "DESIGN.md"
README = REPO_ROOT / "README.md"
SCANNED_DIRS = ("src", "tests", "benchmarks")
CITATION = re.compile(r"DESIGN\.md §(\d+)")
HEADING = re.compile(r"^## §(\d+)\b", re.MULTILINE)


def _design_sections() -> set[int]:
    return {int(n) for n in HEADING.findall(DESIGN.read_text())}


def _citations() -> dict[int, list[str]]:
    """Map cited section number -> files citing it."""
    cited: dict[int, list[str]] = {}
    for directory in SCANNED_DIRS:
        for path in sorted((REPO_ROOT / directory).rglob("*.py")):
            for number in CITATION.findall(path.read_text()):
                cited.setdefault(int(number), []).append(
                    str(path.relative_to(REPO_ROOT))
                )
    return cited


def test_design_has_sections():
    sections = _design_sections()
    assert sections, "DESIGN.md has no '## §N' headings"
    assert sections == set(range(1, max(sections) + 1)), (
        "DESIGN.md section numbers must be contiguous from §1"
    )


def test_cited_sections_exist():
    sections = _design_sections()
    missing = {
        number: files
        for number, files in _citations().items()
        if number not in sections
    }
    assert not missing, (
        f"code cites DESIGN.md sections that do not exist: {missing}"
    )


def test_contents_line_matches_headings():
    text = DESIGN.read_text()
    contents_match = re.search(
        r"^Contents:.*?(?=\n\n)", text, re.MULTILINE | re.DOTALL
    )
    assert contents_match, "DESIGN.md has no Contents line"
    listed = {int(n) for n in re.findall(r"§(\d+)", contents_match.group())}
    assert listed == _design_sections(), (
        "DESIGN.md Contents line out of sync with its '## §N' headings"
    )


def test_readme_documentation_map_covers_design():
    readme = README.read_text()
    mentioned = {int(n) for n in re.findall(r"§(\d+)", readme)}
    missing = _design_sections() - mentioned
    assert not missing, (
        f"README documentation map does not mention DESIGN.md {missing}"
    )


@pytest.mark.parametrize("section", sorted(_citations()))
def test_each_cited_section_resolves(section):
    """Per-section ids so a failure names the exact dangling citation."""
    assert section in _design_sections()
