"""Test package: generation."""
