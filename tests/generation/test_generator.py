"""Tests for constrained novel-recipe generation."""

from __future__ import annotations

import pytest

from repro.generation.generator import (
    GeneratedRecipe,
    GenerationConstraints,
    GenerationError,
    RecipeGenerator,
)
from repro.lexicon.categories import Category
from repro.models.copy_mutate import CopyMutateCategory
from repro.models.params import CuisineSpec


@pytest.fixture(scope="module")
def evolved_run(lexicon, small_corpus):
    view = small_corpus.cuisine("ITA")
    spec = CuisineSpec.from_view(view, lexicon)
    return CopyMutateCategory().run(spec, seed=3)


@pytest.fixture(scope="module")
def generator(evolved_run, lexicon, small_corpus):
    reference = small_corpus.cuisine("ITA").as_id_sets()
    return RecipeGenerator(evolved_run, lexicon, reference=reference)


def test_unconstrained_generation(generator):
    recipe = generator.generate(seed=1)
    assert isinstance(recipe, GeneratedRecipe)
    assert 2 <= recipe.size <= 38
    assert len(recipe.names) == recipe.size
    assert recipe.source_model == "CM-C"


def test_include_constraint(generator):
    constraints = GenerationConstraints(include=("tomato", "basil"))
    recipe = generator.generate(constraints, seed=2)
    assert "tomato" in recipe.names
    assert "basil" in recipe.names


def test_include_via_alias(generator):
    constraints = GenerationConstraints(include=("soy sauce",))
    recipe = generator.generate(constraints, seed=3)
    assert "soybean sauce" in recipe.names


def test_exclude_category(generator, lexicon):
    constraints = GenerationConstraints(exclude_categories=("Meat", "Fish"))
    recipe = generator.generate(constraints, seed=4)
    categories = {lexicon.category_of(i) for i in recipe.ingredient_ids}
    assert Category.MEAT not in categories
    assert Category.FISH not in categories


def test_exclude_ingredient(generator):
    constraints = GenerationConstraints(exclude=("garlic",))
    recipe = generator.generate(constraints, seed=5)
    assert "garlic" not in recipe.names


def test_size_bounds(generator):
    constraints = GenerationConstraints(min_size=5, max_size=6)
    recipe = generator.generate(constraints, seed=6)
    assert 5 <= recipe.size <= 6


def test_novelty_against_reference(generator, small_corpus):
    reference = set(small_corpus.cuisine("ITA").as_id_sets())
    for seed in range(5):
        recipe = generator.generate(seed=seed)
        assert frozenset(recipe.ingredient_ids) not in reference


def test_generate_many_distinct(generator):
    recipes = generator.generate_many(8, seed=7)
    assert len({r.ingredient_ids for r in recipes}) == 8


def test_contradictory_constraints_rejected(generator):
    with pytest.raises(GenerationError):
        generator.generate(
            GenerationConstraints(include=("beef",),
                                  exclude_categories=("Meat",)),
            seed=0,
        )
    with pytest.raises(GenerationError):
        generator.generate(
            GenerationConstraints(include=("tomato",), exclude=("tomato",)),
            seed=0,
        )


def test_unknown_include_rejected(generator):
    with pytest.raises(GenerationError):
        generator.generate(
            GenerationConstraints(include=("powdered dragon scale",)), seed=0
        )


def test_invalid_size_bounds():
    with pytest.raises(GenerationError):
        GenerationConstraints(min_size=0)
    with pytest.raises(GenerationError):
        GenerationConstraints(min_size=10, max_size=5)


def test_too_many_includes_rejected(generator):
    with pytest.raises(GenerationError):
        generator.generate(
            GenerationConstraints(
                include=("tomato", "basil", "garlic", "onion"), max_size=3
            ),
            seed=0,
        )


def test_empty_run_rejected(lexicon, evolved_run):
    from dataclasses import replace

    empty = replace(evolved_run, transactions=[])
    with pytest.raises(GenerationError):
        RecipeGenerator(empty, lexicon)


def test_deterministic(generator):
    a = generator.generate(seed=42)
    b = generator.generate(seed=42)
    assert a.ingredient_ids == b.ingredient_ids


# ---------------------------------------------------------------------------
# Property-based constraint satisfaction
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@given(
    st.sets(
        st.sampled_from(["tomato", "basil", "garlic", "onion"]),
        max_size=2,
    ),
    st.sets(
        st.sampled_from(["Meat", "Fish", "Seafood", "Beverage Alcoholic"]),
        max_size=2,
    ),
    st.integers(3, 8),
    st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_generated_recipes_satisfy_constraints(
    generator, lexicon, include, exclude_categories, min_size, seed
):
    from repro.lexicon.categories import parse_category

    constraints = GenerationConstraints(
        include=tuple(sorted(include)),
        exclude_categories=tuple(sorted(exclude_categories)),
        min_size=min_size,
        max_size=min_size + 6,
    )
    recipe = generator.generate(constraints, seed=seed)
    assert constraints.min_size <= recipe.size <= constraints.max_size
    for name in include:
        assert name in recipe.names
    banned = {parse_category(c) for c in exclude_categories}
    for ingredient_id in recipe.ingredient_ids:
        assert lexicon.category_of(ingredient_id) not in banned
