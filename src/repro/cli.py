"""Command-line interface.

Subcommands::

    repro generate    — write a calibrated synthetic corpus to JSONL, or
                        stream it to a memory-mapped columnar container
                        (``--format columnar``) at scales no eager
                        loader should hold
    repro stats       — print corpus statistics (Sec. II numbers) from a
                        JSONL corpus or a packed ``.col`` container
    repro corpus      — pack a JSONL/pickle corpus into the columnar
                        container (`pack`), or report a container's
                        plane layout and disk footprint (`stats`)
    repro experiment  — run a paper experiment and print its report
    repro evolve      — run one evolution model on one cuisine
    repro resolve     — resolve raw ingredient mentions via the lexicon
    repro report      — run every experiment, write a markdown report
    repro sweep       — execute the model×cuisine run grid in one
                        sharded pass (and warm the run cache; ``--mine``
                        also warms the mined-curve cache)
    repro worker      — serve a distributed work-queue spool directory
                        (claim tasks, heartbeat, write results) until
                        stopped; pairs with ``--backend distributed``
    repro cache       — inspect (`stats`), empty (`clear`), or age-out
                        (`prune`) a cache directory (runs + mined curves)
    repro spool       — inspect (`stats`) or sweep the dead debris out
                        of (`compact`) a work-queue spool directory

Every stochastic command accepts ``--seed`` for exact reproducibility.
Commands that execute model ensembles (``experiment``, ``evolve``,
``report``, ``sweep``) also accept ``--backend
{serial,thread,process,distributed}``, ``--jobs N`` (0 = all cores),
``--cache-dir PATH`` and ``--engine {reference,vectorized,batched}`` —
results are bit-identical across backends for a fixed seed (per engine;
the batched engine is also bit-identical to vectorized, see DESIGN.md
§5/§7), and the run cache lets repeated invocations reuse completed
runs.  The distributed backend additionally honors ``--spool-dir PATH``
(the shared work-queue directory that external ``repro worker``
processes serve) and ``--local-workers N`` (worker processes the
coordinator spawns itself; 0 = external only) — see DESIGN.md §8.
With ``--cache-dir`` set, ``--checkpoint-every N`` snapshots engine
state every N steps beside the run cache so an interrupted sweep
resumes bit-identically from its latest valid snapshot (DESIGN.md §9).
Mining commands accept ``--mining-algorithm`` (default ``bitset``, the
packed-bit fast path; every registered miner returns identical results,
see DESIGN.md §6).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.invariants import combination_curve
from repro.analysis.itemsets import available_algorithms
from repro.analysis.mae import curve_distance
from repro.config import MiningConfig
from repro.corpus.io import load_jsonl, load_pickle, save_jsonl
from repro.corpus.stats import corpus_stats
from repro.storage.columnar import (
    COLUMNAR_SUFFIX,
    ColumnarCorpus,
    pack_dataset,
)
from repro.experiments.base import ExperimentContext
from repro.experiments.registry import available_experiments, run_experiment
from repro.lexicon.builder import standard_lexicon
from repro.models.ensemble import ensemble_curves, run_ensemble
from repro.models.params import ENGINES, CuisineSpec
from repro.models.registry import (
    PAPER_MODELS,
    available_models,
    create_model,
)
from repro.rng import DEFAULT_SEED
from repro.runtime import (
    BACKENDS,
    CurveCache,
    DistributedConfig,
    FaultPlan,
    RunCache,
    RuntimeConfig,
    compact_spool,
    execute_sweep,
    plan_grid,
    run_worker,
    select_regions,
    spool_stats,
)
from repro.synthesis.worldgen import WorldKitchen
from repro.viz.ascii import render_table

__all__ = ["main", "build_parser"]


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the execution-runtime flags shared by ensemble commands."""
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial",
        help="ensemble execution backend (default: serial)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers; 0 = all cores (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="on-disk run cache directory (reused across invocations)",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help=(
            "simulation engine for model runs (default: vectorized; "
            "'reference' runs the scalar executable-spec loop; "
            "'batched' stacks same-cell runs into one pass, "
            "bit-identical to vectorized — CM-V falls back to "
            "vectorized)"
        ),
    )
    parser.add_argument(
        "--spool-dir", type=Path, default=None,
        help=(
            "distributed backend: shared work-queue directory served "
            "by `repro worker` processes (default: a private temp "
            "spool per map, local workers only)"
        ),
    )
    parser.add_argument(
        "--local-workers", type=int, default=None,
        help=(
            "distributed backend: worker processes the coordinator "
            "spawns itself (default: --jobs; 0 = rely entirely on "
            "external `repro worker` processes)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None,
        help=(
            "snapshot engine state every N steps beside the run cache "
            "so an interrupted run resumes bit-identically (requires "
            "--cache-dir; default: no checkpointing — see DESIGN.md §9)"
        ),
    )


def _runtime_from_args(args: argparse.Namespace) -> RuntimeConfig:
    """Build the RuntimeConfig a command's flags describe."""
    distributed = None
    if args.backend == "distributed":
        distributed = DistributedConfig(
            spool_dir=args.spool_dir,
            local_workers=args.local_workers,
            checkpoint_every=args.checkpoint_every,
        )
    return RuntimeConfig(
        backend=args.backend, jobs=args.jobs, cache_dir=args.cache_dir,
        distributed=distributed,
        checkpoint_every=None if distributed else args.checkpoint_every,
    )


def _add_mining_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the frequent-combination mining flags."""
    parser.add_argument(
        "--min-support", type=float, default=0.05,
        help="relative support threshold (paper: 0.05)",
    )
    parser.add_argument(
        "--mining-algorithm", choices=list(available_algorithms()),
        default="bitset",
        help=(
            "frequent-itemset miner (default: bitset, the packed-bit "
            "fast path; all miners return identical results)"
        ),
    )


def _mining_from_args(args: argparse.Namespace) -> MiningConfig:
    """Build the MiningConfig a command's flags describe."""
    return MiningConfig(
        min_support=args.min_support, algorithm=args.mining_algorithm
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Computational Models for the Evolution of "
            "World Cuisines' (ICDE 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument(
        "output", type=Path, help="output path (JSONL, or .col container)"
    )
    generate.add_argument("--scale", type=float, default=0.1)
    generate.add_argument("--seed", type=int, default=DEFAULT_SEED)
    generate.add_argument(
        "--regions", nargs="*", default=None, help="region codes (default all)"
    )
    generate.add_argument(
        "--format", choices=("jsonl", "columnar"), default="jsonl",
        help=(
            "output format: jsonl (eager, text) or columnar (streamed "
            "chunk-wise to a memory-mapped .col container — the only "
            "path that holds at 100x-1000x paper scale)"
        ),
    )
    generate.add_argument(
        "--chunk-size", type=int, default=100_000,
        help=(
            "columnar: recipes generated and flushed per chunk — the "
            "memory bound (default: 100000)"
        ),
    )
    generate.add_argument(
        "--no-bitplanes", action="store_true",
        help="columnar: skip per-cuisine packed-bit mining planes",
    )
    generate.add_argument(
        "--no-text", action="store_true",
        help="columnar: drop procedural titles (smaller container)",
    )

    stats = sub.add_parser("stats", help="print corpus statistics")
    stats.add_argument(
        "dataset", type=Path, help="JSONL corpus path or .col container"
    )

    corpus = sub.add_parser(
        "corpus",
        help="pack a corpus into the columnar container, or inspect one",
        description=(
            "`pack` converts an existing JSONL (or pickle) corpus into "
            "the memory-mapped columnar container of DESIGN.md §11 — "
            "CSR ingredient planes, per-cuisine slices, optional "
            "packed-bit mining planes — written atomically with "
            "checksummed planes.  `stats` prints a packed container's "
            "corpus summary plus its per-plane disk footprint, in the "
            "same telemetry shape as `repro cache stats` and "
            "`repro spool stats`."
        ),
    )
    corpus.add_argument("action", choices=("pack", "stats"))
    corpus.add_argument(
        "path", type=Path,
        help="pack: input corpus (.jsonl/.pkl); stats: the .col container",
    )
    corpus.add_argument(
        "output", type=Path, nargs="?", default=None,
        help="pack: output container path (default: input with .col)",
    )
    corpus.add_argument(
        "--no-bitplanes", action="store_true",
        help="pack: skip per-cuisine packed-bit mining planes",
    )
    corpus.add_argument(
        "--no-text", action="store_true",
        help="pack: drop titles/sources from the container",
    )
    corpus.add_argument(
        "--verify", action="store_true",
        help="stats: recompute and check every plane's SHA-256",
    )

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "id", choices=list(available_experiments()), help="experiment id"
    )
    experiment.add_argument("--scale", type=float, default=0.08)
    experiment.add_argument("--seed", type=int, default=DEFAULT_SEED)
    experiment.add_argument("--runs", type=int, default=8,
                            help="model runs per ensemble")
    experiment.add_argument("--regions", nargs="*", default=None)
    experiment.add_argument("--artifacts", type=Path, default=None,
                            help="directory for CSV/JSON artifacts")
    experiment.add_argument(
        "--corpus", type=Path, default=None,
        help=(
            "run over a packed columnar corpus (.col) instead of "
            "generating one; --scale then only labels the context"
        ),
    )
    _add_mining_flags(experiment)
    _add_runtime_flags(experiment)

    evolve = sub.add_parser("evolve", help="run one evolution model")
    evolve.add_argument("model", choices=list(available_models()))
    evolve.add_argument("region", help="region code, e.g. ITA")
    evolve.add_argument("--scale", type=float, default=0.08)
    evolve.add_argument("--seed", type=int, default=DEFAULT_SEED)
    evolve.add_argument("--runs", type=int, default=8)
    _add_runtime_flags(evolve)

    resolve = sub.add_parser(
        "resolve", help="resolve raw ingredient mentions against the lexicon"
    )
    resolve.add_argument("mentions", nargs="+", help="raw mention strings")

    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("output", type=Path, help="markdown output path")
    report.add_argument("--scale", type=float, default=0.05)
    report.add_argument("--seed", type=int, default=DEFAULT_SEED)
    report.add_argument("--runs", type=int, default=5)
    report.add_argument("--regions", nargs="*", default=None)
    report.add_argument("--no-ablations", action="store_true")
    _add_runtime_flags(report)

    sweep = sub.add_parser(
        "sweep",
        help="execute the model x cuisine run grid in one sharded pass",
        description=(
            "Plan the full (model x cuisine x seed) grid, shard every run "
            "across the chosen backend in a single pass, and print a "
            "per-model summary.  With --cache-dir the completed runs warm "
            "the on-disk cache, so a later `repro experiment fig4` or "
            "`repro report` with the same --scale/--seed/--runs reuses "
            "them for free."
        ),
    )
    sweep.add_argument(
        "--models", nargs="*", choices=list(available_models()), default=None,
        help="models to sweep (default: the paper's four)",
    )
    sweep.add_argument("--regions", nargs="*", default=None,
                       help="region codes (default all 25)")
    sweep.add_argument("--scale", type=float, default=0.08)
    sweep.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sweep.add_argument("--runs", type=int, default=8,
                       help="model runs per (model, cuisine) cell")
    sweep.add_argument(
        "--corpus", type=Path, default=None,
        help=(
            "sweep over a packed columnar corpus (.col) instead of "
            "generating one; --scale then only labels the context"
        ),
    )
    sweep.add_argument(
        "--mine", action="store_true",
        help=(
            "also mine every cell's per-run curves plus each cuisine's "
            "empirical curve after the sweep, warming the mined-curve "
            "cache (requires --cache-dir; a repeat sweep or matching "
            "experiment then performs zero mining calls)"
        ),
    )
    _add_mining_flags(sweep)
    _add_runtime_flags(sweep)

    worker = sub.add_parser(
        "worker",
        help="serve a distributed work-queue spool directory",
        description=(
            "Attach to a spool directory and serve it: claim tasks by "
            "atomic rename, heartbeat while executing, write results "
            "back.  Any `repro ... --backend distributed --spool-dir "
            "DIR` coordinator sharing the directory (typically on a "
            "shared filesystem) will use this worker.  Exits when the "
            "spool's `stop` sentinel appears and the queue is empty "
            "(create it with `touch DIR/stop`), after --idle-timeout "
            "seconds without work, or after --max-tasks claims."
        ),
    )
    worker.add_argument(
        "--spool", type=Path, required=True,
        help="the work-queue directory to serve",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="stable worker id for claims/heartbeats (default: w<pid>)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="seconds between queue scans when idle (default: 0.2)",
    )
    worker.add_argument(
        "--heartbeat-interval", type=float, default=1.0,
        help=(
            "seconds between heartbeat touches; keep well under the "
            "coordinator's lease timeout (default: 1.0)"
        ),
    )
    worker.add_argument(
        "--idle-timeout", type=float, default=None,
        help="exit after this much idle time (default: wait for stop)",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None,
        help="exit after claiming this many tasks (default: unlimited)",
    )
    worker.add_argument(
        "--fault-plan", type=Path, default=None,
        help=(
            "JSON fault-injection plan to obey (testing; default: the "
            "spool's faults.json when present)"
        ),
    )

    cache = sub.add_parser(
        "cache",
        help=(
            "inspect, clear, or age-out an on-disk cache "
            "(runs and mined curves)"
        ),
    )
    cache.add_argument("action", choices=("stats", "clear", "prune"))
    cache.add_argument(
        "directory", type=Path, nargs="?", default=Path(".repro-cache"),
        help="cache directory (default: .repro-cache)",
    )
    cache.add_argument(
        "--max-age-days", type=float, default=None,
        help="prune: remove entries older than this many days",
    )

    spool = sub.add_parser(
        "spool",
        help="inspect or compact a work-queue spool directory",
        description=(
            "`stats` prints one read-only snapshot of a spool: queue "
            "depth, claimed/stale leases, worker liveness, per-outcome "
            "attempt counts and debris.  `compact` removes exactly the "
            "dead debris — stale claims and heartbeats, long-gone "
            "worker markers, orphaned results and stranded atomic-write "
            "temps — judged by age against --stale-after; live state "
            "and pending tasks are never touched.  Both run safely "
            "beside an active map."
        ),
    )
    spool.add_argument("action", choices=("stats", "compact"))
    spool.add_argument(
        "--spool", type=Path, required=True, dest="spool_dir",
        help="the work-queue directory to inspect or compact",
    )
    spool.add_argument(
        "--stale-after", type=float, default=60.0,
        help=(
            "seconds without a heartbeat/mtime touch before state "
            "counts as dead (default: 60; keep well above the fleet's "
            "heartbeat interval)"
        ),
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=args.seed)
    regions = tuple(args.regions) if args.regions else None
    if args.format == "columnar":
        with kitchen.generate_columnar(
            args.output,
            region_codes=regions,
            scale=args.scale,
            chunk_recipes=args.chunk_size,
            store_text=not args.no_text,
            bitplanes=not args.no_bitplanes,
        ) as corpus:
            count = corpus.n_recipes
            size = corpus.disk_stats().total_bytes
        print(
            f"wrote {count} recipes to {args.output} "
            f"({_format_bytes(size)}, columnar)"
        )
        return 0
    dataset = kitchen.generate_dataset(region_codes=regions, scale=args.scale)
    count = save_jsonl(dataset, args.output)
    print(f"wrote {count} recipes to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.dataset.suffix == COLUMNAR_SUFFIX:
        with ColumnarCorpus.open(args.dataset) as corpus:
            stats = corpus.stats()
    else:
        dataset = load_jsonl(args.dataset)
        stats = corpus_stats(dataset)
    rows = [
        (s.region_code, s.n_recipes, s.n_ingredients,
         f"{s.avg_recipe_size:.2f}", f"{s.phi:.4f}")
        for s in stats.per_cuisine
    ]
    print(render_table(
        ("Region", "Recipes", "Ingredients", "AvgSize", "phi"),
        rows,
        title=(
            f"{stats.n_recipes} recipes, {stats.n_cuisines} cuisines; "
            f"largest {stats.largest_cuisine[0]} "
            f"({stats.largest_cuisine[1]}), smallest "
            f"{stats.smallest_cuisine[0]} ({stats.smallest_cuisine[1]}); "
            f"mean recipe size {stats.mean_recipe_size:.2f}"
        ),
    ))
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    if args.action == "pack":
        output = args.output
        if output is None:
            output = args.path.with_suffix(COLUMNAR_SUFFIX)
        loader = load_pickle if args.path.suffix == ".pkl" else load_jsonl
        dataset = loader(args.path)
        with pack_dataset(
            dataset,
            output,
            store_text=not args.no_text,
            bitplanes=not args.no_bitplanes,
        ) as corpus:
            disk = corpus.disk_stats()
        print(
            f"packed {disk.n_recipes} recipes into {output} "
            f"({_format_bytes(disk.total_bytes)}, {disk.n_planes} planes)"
        )
        return 0
    with ColumnarCorpus.open(args.path, verify=args.verify) as corpus:
        stats = corpus.stats()
        disk = corpus.disk_stats()
    rows: list[tuple[str, str, str]] = [
        ("corpus", "recipes", str(stats.n_recipes)),
        ("corpus", "cuisines", str(stats.n_cuisines)),
        ("corpus", "mean recipe size", f"{stats.mean_recipe_size:.2f}"),
        ("corpus", "total size", _format_bytes(disk.total_bytes)),
        ("corpus", "planes", str(disk.n_planes)),
    ]
    for plane in disk.planes:
        shape = "x".join(str(dim) for dim in plane.shape)
        rows.append(
            (
                "plane",
                f"{plane.name} [{plane.dtype} {shape}]",
                _format_bytes(plane.nbytes),
            )
        )
    verified = " (planes verified)" if args.verify else ""
    print(render_table(
        ("Store", "Quantity", "Value"), rows,
        title=f"Columnar corpus {args.path}{verified}",
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    context = ExperimentContext.create(
        scale=args.scale,
        seed=args.seed,
        region_codes=tuple(args.regions) if args.regions else None,
        mining=_mining_from_args(args),
        ensemble_runs=args.runs,
        artifacts_dir=args.artifacts,
        runtime=_runtime_from_args(args),
        engine=args.engine,
        corpus_path=args.corpus,
    )
    result = run_experiment(args.id, context)
    print(result.render())
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=args.seed)
    dataset = kitchen.generate_dataset(
        region_codes=(args.region,), scale=args.scale
    )
    view = dataset.cuisine(args.region)
    spec = CuisineSpec.from_view(view, lexicon)
    model = create_model(args.model, engine=args.engine)
    result = run_ensemble(
        model, spec, n_runs=args.runs, seed=args.seed,
        runtime=_runtime_from_args(args),
    )
    empirical, _ = combination_curve(dataset, view.region_code, lexicon)
    distance = curve_distance(empirical, result.ingredient_curve)
    trace = result.runs[0].trace
    print(render_table(
        ("Quantity", "Value"),
        [
            ("model", model.name),
            ("region", view.region_code),
            ("empirical recipes", view.n_recipes),
            ("runs", result.n_runs),
            ("recipes per run", result.runs[0].n_recipes),
            ("final pool size (run 0)", result.runs[0].final_pool_size),
            ("mutations accepted (run 0)", trace.mutations_accepted),
            ("distance to empirical", f"{distance:.4f}"),
        ],
        title=f"{model.name} on {view.region_code}",
    ))
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    lexicon = standard_lexicon()
    rows = []
    for mention in args.mentions:
        resolution = lexicon.resolve(mention)
        rows.append(
            (
                mention,
                resolution.ingredient.name if resolution.ingredient else "(unresolved)",
                resolution.ingredient.category.value
                if resolution.ingredient
                else "-",
            )
        )
    print(render_table(("Mention", "Entity", "Category"), rows))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    context = ExperimentContext.create(
        scale=args.scale,
        seed=args.seed,
        region_codes=tuple(args.regions) if args.regions else None,
        ensemble_runs=args.runs,
        runtime=_runtime_from_args(args),
        engine=args.engine,
    )
    report = build_report(
        context, include_ablations=not args.no_ablations
    )
    report.save(args.output)
    print(f"wrote report to {args.output} ({report.elapsed_seconds:.1f}s)")
    for key, value in report.headline.items():
        print(f"  {key}: {value}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    model_names = tuple(args.models) if args.models else PAPER_MODELS
    runtime = _runtime_from_args(args)
    if args.mine and runtime.cache_dir is None:
        # Mining without a cache directory would compute every curve
        # and drop it on the floor — refuse up front, before any grid
        # work, rather than waste minutes of CPU.
        print(
            "error: sweep --mine requires --cache-dir (the mined "
            "curves have nowhere to go)",
            file=sys.stderr,
        )
        return 2
    requested = tuple(args.regions) if args.regions else None
    if requested is not None:
        # Typos surface during corpus generation below; duplicates must
        # fail here — they would silently inflate the duplicated
        # cuisine's corpus before any grid work.
        select_regions(requested, requested)
    context = ExperimentContext.create(
        scale=args.scale,
        seed=args.seed,
        region_codes=requested,
        ensemble_runs=args.runs,
        runtime=runtime,
        engine=args.engine,
        corpus_path=args.corpus,
    )
    # Plan in corpus order (sorted), NOT the command-line order: it is
    # the order run_fig4/build_report walk the grid, so the per-cell
    # seed draws — and therefore the cache keys — line up and a sweep
    # pre-warms those experiments regardless of how --regions was typed.
    codes = select_regions(context.dataset.region_codes())
    specs = [
        CuisineSpec.from_view(context.dataset.cuisine(code), context.lexicon)
        for code in codes
    ]
    plan = plan_grid(
        [create_model(name, engine=args.engine) for name in model_names],
        specs,
        n_runs=args.runs,
        seed=args.seed,
    )
    result = execute_sweep(plan, runtime=runtime)

    rows = []
    for name in model_names:
        cells = [c for c in result.cells if c.model_name == name]
        runs = sum(len(c.runs) for c in cells)
        cached = sum(c.cached for c in cells)
        rows.append((name, len(cells), runs, cached, runs - cached))
    rows.append((
        "total", len(result.cells), result.total_runs, result.cached,
        result.executed,
    ))
    throughput = (
        result.total_runs / result.elapsed_seconds
        if result.elapsed_seconds > 0
        else float("inf")
    )
    print(render_table(
        ("Model", "Cuisines", "Runs", "Cached", "Executed"),
        rows,
        title=(
            f"Sweep: {len(codes)} cuisines x {len(model_names)} models x "
            f"{args.runs} runs = {result.total_runs} total; "
            f"backend={result.backend}, jobs={result.jobs}; "
            f"{result.elapsed_seconds:.1f}s ({throughput:.1f} runs/s)"
        ),
    ))
    if args.mine:
        import time

        mining = _mining_from_args(args)
        curve_cache = CurveCache(runtime.cache_dir)
        start = time.perf_counter()
        # One executor pass for the whole grid (ensemble_curves), not
        # one pool per cell — same curves, a fraction of the overhead.
        ensemble_curves(
            [
                (cell_runs.runs, cell_runs.model_name)
                for cell_runs in result.cells
            ],
            mining=mining, runtime=runtime, curve_cache=curve_cache,
        )
        # Also warm the empirical (per-cuisine corpus) curves, so a
        # later `repro experiment fig4` with matching parameters
        # reaches no miner at all — not just for the model curves.
        for code in codes:
            combination_curve(
                context.dataset, code, context.lexicon,
                mining=mining, curve_cache=curve_cache,
            )
        elapsed = time.perf_counter() - start
        print(
            f"mined {len(result.cells)} cells x {args.runs} runs "
            f"(+ {len(codes)} empirical curves) with "
            f"{mining.algorithm} @ {mining.min_support:g} support in "
            f"{elapsed:.1f}s ({curve_cache.stats.misses} mined, "
            f"{curve_cache.stats.hits} curve-cache hits)"
        )
    if runtime.cache_dir is not None:
        print(
            f"cache {runtime.cache_dir}: "
            f"{len(RunCache(runtime.cache_dir))} runs, "
            f"{len(CurveCache(runtime.cache_dir))} curves"
        )
    return 0


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - loop always returns


def _format_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_cache(args: argparse.Namespace) -> int:
    import time

    directory = args.directory
    if args.action == "prune":
        if args.max_age_days is None:
            print(
                "error: cache prune requires --max-age-days",
                file=sys.stderr,
            )
            return 2
        if args.max_age_days < 0:
            print("error: --max-age-days must be >= 0", file=sys.stderr)
            return 2
    if not directory.exists():
        if args.action in ("clear", "prune"):
            print(f"cache {directory}: nothing to {args.action}")
        else:
            print(f"cache {directory}: no cache directory")
        return 0
    # One directory holds both stores, namespaced by entry suffix.
    stores: list[tuple[str, RunCache | CurveCache]] = [
        ("runs", RunCache(directory)),
        ("curves", CurveCache(directory)),
    ]
    if args.action == "clear":
        removed = {label: store.clear() for label, store in stores}
        print(
            f"removed {removed['runs']} cached runs and "
            f"{removed['curves']} mined curves from {directory}"
        )
        return 0
    if args.action == "prune":
        max_age = args.max_age_days * 86400.0
        removed = {
            label: store.prune_older_than(max_age) for label, store in stores
        }
        kept = sum(store.disk_stats().entries for _label, store in stores)
        print(
            f"pruned {removed['runs']} cached runs and "
            f"{removed['curves']} mined curves older than "
            f"{args.max_age_days:g} days from {directory} ({kept} kept)"
        )
        return 0
    now = time.time()
    rows: list[tuple[str, str, str]] = []
    for label, store in stores:
        stats = store.disk_stats()
        rows.append((label, "entries", str(stats.entries)))
        rows.append((label, "total size", _format_bytes(stats.total_bytes)))
        if stats.oldest_mtime is not None and stats.newest_mtime is not None:
            rows.append((
                label, "oldest entry",
                f"{_format_age(now - stats.oldest_mtime)} ago",
            ))
            rows.append((
                label, "newest entry",
                f"{_format_age(now - stats.newest_mtime)} ago",
            ))
    # Packed corpora share operator directories with caches; surface
    # their footprint in the same telemetry table so corpus, cache and
    # spool accounting read consistently (`repro corpus stats` has the
    # per-plane drill-down).
    corpora = sorted(directory.glob(f"*{COLUMNAR_SUFFIX}"))
    if corpora:
        rows.append(("corpora", "entries", str(len(corpora))))
        rows.append((
            "corpora", "total size",
            _format_bytes(sum(path.stat().st_size for path in corpora)),
        ))
        for path in corpora:
            rows.append((
                "corpora", path.name, _format_bytes(path.stat().st_size)
            ))
    print(render_table(
        ("Store", "Quantity", "Value"), rows, title=f"Cache {directory}"
    ))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = FaultPlan.load(args.fault_plan)
    summary = run_worker(
        args.spool,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        heartbeat_interval=args.heartbeat_interval,
        idle_timeout=args.idle_timeout,
        max_tasks=args.max_tasks,
        fault_plan=fault_plan,
    )
    print(
        f"worker {summary.worker_id} done: {summary.claimed} claimed, "
        f"{summary.completed} completed, {summary.failed} failed"
    )
    return 0


def _cmd_spool(args: argparse.Namespace) -> int:
    if args.action == "compact":
        removed = compact_spool(args.spool_dir, stale_after=args.stale_after)
        print(render_table(
            ("Debris", "Removed"),
            [
                ("stale claims", removed.stale_claims),
                ("orphan heartbeats", removed.orphan_heartbeats),
                ("dead worker markers", removed.dead_workers),
                ("stale results", removed.stale_results),
                ("orphan temp files", removed.orphan_tmp),
                ("total", removed.total),
            ],
            title=(
                f"Compacted {args.spool_dir} "
                f"(stale after {args.stale_after:g}s)"
            ),
        ))
        return 0
    stats = spool_stats(args.spool_dir, stale_after=args.stale_after)
    rows: list[tuple[str, object]] = [
        ("pending tasks", stats.pending_tasks),
        ("claimed", stats.claimed),
        ("stale claims", stats.stale_claims),
        ("results waiting", stats.results),
        ("live workers", stats.live_workers),
        ("dead workers", stats.dead_workers),
        ("orphan temp files", stats.orphan_tmp),
        ("stop signaled", "yes" if stats.stop_signaled else "no"),
    ]
    for outcome in sorted(stats.attempts):
        rows.append((f"attempts[{outcome}]", stats.attempts[outcome]))
    print(render_table(
        ("Quantity", "Value"), rows,
        title=(
            f"Spool {args.spool_dir} (stale after {args.stale_after:g}s)"
        ),
    ))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "corpus": _cmd_corpus,
    "experiment": _cmd_experiment,
    "evolve": _cmd_evolve,
    "resolve": _cmd_resolve,
    "report": _cmd_report,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "cache": _cmd_cache,
    "spool": _cmd_spool,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (:class:`~repro.errors.ReproError`) are reported on
    stderr with exit code 1 instead of a traceback.
    """
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
