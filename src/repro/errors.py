"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failure domain (lexicon, corpus,
model, ...) when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "LexiconError",
    "UnknownIngredientError",
    "UnknownCategoryError",
    "AliasConflictError",
    "CorpusError",
    "UnknownRegionError",
    "EmptyCorpusError",
    "SerializationError",
    "StorageError",
    "QueryError",
    "SynthesisError",
    "CalibrationError",
    "AnalysisError",
    "MiningError",
    "MetricError",
    "ModelError",
    "ParameterError",
    "ExperimentError",
    "ExecutionError",
    "TaskRetryExhaustedError",
    "RunCacheError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


# ---------------------------------------------------------------------------
# Lexicon domain
# ---------------------------------------------------------------------------


class LexiconError(ReproError):
    """A problem with the ingredient lexicon or its construction."""


class UnknownIngredientError(LexiconError, KeyError):
    """An ingredient name or id could not be resolved against the lexicon."""

    def __init__(self, query: str):
        super().__init__(f"unknown ingredient: {query!r}")
        self.query = query


class UnknownCategoryError(LexiconError, KeyError):
    """A category name could not be resolved against the 21 paper categories."""

    def __init__(self, query: str):
        super().__init__(f"unknown ingredient category: {query!r}")
        self.query = query


class AliasConflictError(LexiconError):
    """Two distinct lexicon entities claim the same alias."""

    def __init__(self, alias: str, first: str, second: str):
        super().__init__(
            f"alias {alias!r} maps to both {first!r} and {second!r}"
        )
        self.alias = alias
        self.first = first
        self.second = second


# ---------------------------------------------------------------------------
# Corpus domain
# ---------------------------------------------------------------------------


class CorpusError(ReproError):
    """A problem with recipe data or datasets."""


class UnknownRegionError(CorpusError, KeyError):
    """A region code or name is not one of the paper's 25 regions."""

    def __init__(self, query: str):
        super().__init__(f"unknown region: {query!r}")
        self.query = query


class EmptyCorpusError(CorpusError):
    """An operation that requires recipes was applied to an empty dataset."""


class SerializationError(CorpusError):
    """Reading or writing a dataset failed."""


# ---------------------------------------------------------------------------
# Storage domain
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """A problem inside the indexed recipe store."""


class QueryError(StorageError):
    """A malformed or unsatisfiable store query."""


# ---------------------------------------------------------------------------
# Synthesis domain
# ---------------------------------------------------------------------------


class SynthesisError(ReproError):
    """A problem while generating the synthetic corpus."""


class CalibrationError(SynthesisError):
    """Generated data failed to match its calibration targets."""


# ---------------------------------------------------------------------------
# Analysis domain
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """A problem in a statistical analysis routine."""


class MiningError(AnalysisError):
    """A problem during frequent-itemset mining."""


class MetricError(AnalysisError):
    """A distance/similarity metric was given invalid input."""


# ---------------------------------------------------------------------------
# Models domain
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """A problem inside a culinary evolution model."""


class ParameterError(ModelError, ValueError):
    """Model parameters are inconsistent or out of range."""


# ---------------------------------------------------------------------------
# Experiments domain
# ---------------------------------------------------------------------------


class ExperimentError(ReproError):
    """A problem while running an experiment driver."""


# ---------------------------------------------------------------------------
# Runtime domain
# ---------------------------------------------------------------------------


class ExecutionError(ReproError):
    """A problem in the parallel execution runtime (backends, jobs)."""


class TaskRetryExhaustedError(ExecutionError):
    """A distributed task failed on every allowed attempt.

    Raised by the distributed backend when a task has been retried
    ``max_attempts`` times (worker crashes, timeouts, or deterministic
    task errors) without completing; carries the failing task indices
    and their last recorded errors in the message.
    """


class RunCacheError(ExecutionError):
    """A problem reading or writing the on-disk run cache."""
