"""Constrained novel-recipe generation from evolved pools.

The paper's conclusion motivates "novel recipe generation algorithms
aimed at dietary interventions".  :class:`RecipeGenerator` implements
the natural construction on top of the Sec. V machinery: take the recipe
pool of an evolution run (whose combination statistics match the
cuisine), then sample and locally adapt recipes under user constraints —
required ingredients, excluded categories, size bounds, novelty against
the empirical corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.lexicon.categories import Category, parse_category
from repro.lexicon.lexicon import Lexicon
from repro.models.base import EvolutionRun
from repro.rng import SeedLike, ensure_rng

__all__ = ["GenerationConstraints", "GeneratedRecipe", "RecipeGenerator"]


class GenerationError(ReproError):
    """Constraint set is unsatisfiable against the evolved pool."""


@dataclass(frozen=True)
class GenerationConstraints:
    """What a generated recipe must satisfy.

    Attributes:
        include: Ingredient names that must appear.
        exclude_categories: Categories that must not appear.
        exclude: Ingredient names that must not appear.
        min_size: Minimum distinct-ingredient count.
        max_size: Maximum distinct-ingredient count.
        novel: Require the ingredient set to differ from every recipe in
            the reference corpus (when one is given to the generator).
    """

    include: tuple[str, ...] = ()
    exclude_categories: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    min_size: int = 2
    max_size: int = 38
    novel: bool = True

    def __post_init__(self) -> None:
        if self.min_size < 1 or self.max_size < self.min_size:
            raise GenerationError(
                f"invalid size bounds [{self.min_size}, {self.max_size}]"
            )


@dataclass(frozen=True)
class GeneratedRecipe:
    """One generated recipe.

    Attributes:
        ingredient_ids: Sorted lexicon ids.
        names: Canonical names aligned with ``ingredient_ids``.
        source_model: Name of the model whose pool seeded it.
        edits: Number of local edits applied to satisfy constraints.
    """

    ingredient_ids: tuple[int, ...]
    names: tuple[str, ...]
    source_model: str
    edits: int

    @property
    def size(self) -> int:
        return len(self.ingredient_ids)


class RecipeGenerator:
    """Generates constraint-satisfying recipes from an evolution run.

    Args:
        run: An :class:`EvolutionRun` whose pool statistics match the
            target cuisine (typically a CM-C or CM-M run).
        lexicon: Lexicon for name/category resolution.
        reference: Optional empirical recipe sets for novelty checks.
    """

    def __init__(
        self,
        run: EvolutionRun,
        lexicon: Lexicon,
        reference: list[frozenset[int]] | None = None,
    ):
        if not run.transactions:
            raise GenerationError("evolution run has an empty recipe pool")
        self._run = run
        self._lexicon = lexicon
        self._reference = set(reference or [])
        # Popularity within the evolved pool drives replacements.
        counts: dict[int, int] = {}
        for transaction in run.transactions:
            for ingredient_id in transaction:
                counts[ingredient_id] = counts.get(ingredient_id, 0) + 1
        self._pool_ids = np.array(sorted(counts), dtype=np.int64)
        weights = np.array([counts[int(i)] for i in self._pool_ids], float)
        self._pool_weights = weights / weights.sum()

    # ------------------------------------------------------------------
    # Constraint handling
    # ------------------------------------------------------------------

    def _resolve_constraints(
        self, constraints: GenerationConstraints
    ) -> tuple[set[int], set[int], set[Category]]:
        include_ids: set[int] = set()
        for name in constraints.include:
            resolution = self._lexicon.resolve(name)
            if resolution.ingredient is None:
                raise GenerationError(f"cannot resolve ingredient {name!r}")
            include_ids.add(resolution.ingredient.ingredient_id)
        exclude_ids: set[int] = set()
        for name in constraints.exclude:
            resolution = self._lexicon.resolve(name)
            if resolution.ingredient is not None:
                exclude_ids.add(resolution.ingredient.ingredient_id)
        banned_categories = {
            parse_category(value) for value in constraints.exclude_categories
        }
        for ingredient_id in include_ids:
            if self._lexicon.category_of(ingredient_id) in banned_categories:
                raise GenerationError(
                    "an included ingredient belongs to an excluded category"
                )
            if ingredient_id in exclude_ids:
                raise GenerationError(
                    "an ingredient is both included and excluded"
                )
        if len(include_ids) > constraints.max_size:
            raise GenerationError(
                "more required ingredients than max_size allows"
            )
        return include_ids, exclude_ids, banned_categories

    def _violates(
        self,
        ingredient_id: int,
        exclude_ids: set[int],
        banned: set[Category],
    ) -> bool:
        return (
            ingredient_id in exclude_ids
            or self._lexicon.category_of(ingredient_id) in banned
        )

    def _sample_replacement(
        self,
        rng: np.random.Generator,
        current: set[int],
        exclude_ids: set[int],
        banned: set[Category],
    ) -> int | None:
        for _ in range(64):
            candidate = int(
                self._pool_ids[
                    rng.choice(self._pool_ids.size, p=self._pool_weights)
                ]
            )
            if candidate in current:
                continue
            if self._violates(candidate, exclude_ids, banned):
                continue
            return candidate
        return None

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate(
        self,
        constraints: GenerationConstraints = GenerationConstraints(),
        seed: SeedLike = None,
        max_attempts: int = 200,
    ) -> GeneratedRecipe:
        """Generate one constraint-satisfying recipe.

        Starts from a random pool recipe, swaps out violating
        ingredients for popularity-weighted admissible ones, forces the
        required ingredients in (replacing the least popular members),
        and enforces size bounds and novelty.

        Raises:
            GenerationError: If no satisfying recipe is found within
                ``max_attempts`` seeds.
        """
        rng = ensure_rng(seed)
        include_ids, exclude_ids, banned = self._resolve_constraints(
            constraints
        )
        transactions = self._run.transactions
        for _attempt in range(max_attempts):
            base = set(
                transactions[int(rng.integers(0, len(transactions)))]
            )
            edits = 0
            # Remove violations.
            for ingredient_id in sorted(base):
                if self._violates(ingredient_id, exclude_ids, banned):
                    base.discard(ingredient_id)
                    replacement = self._sample_replacement(
                        rng, base, exclude_ids, banned
                    )
                    if replacement is not None:
                        base.add(replacement)
                    edits += 1
            # Force inclusions.
            for ingredient_id in sorted(include_ids):
                if ingredient_id not in base:
                    if len(base) >= constraints.max_size and base - include_ids:
                        victim = min(
                            base - include_ids,
                            key=lambda i: (
                                self._pool_weights[
                                    int(
                                        np.searchsorted(self._pool_ids, i)
                                    )
                                ]
                                if i in self._pool_ids
                                else 0.0
                            ),
                        )
                        base.discard(victim)
                    base.add(ingredient_id)
                    edits += 1
            # Pad or trim to the size bounds.
            while len(base) < constraints.min_size:
                extra = self._sample_replacement(
                    rng, base, exclude_ids, banned
                )
                if extra is None:
                    break
                base.add(extra)
                edits += 1
            while len(base) > constraints.max_size:
                removable = base - include_ids
                if not removable:
                    break
                base.discard(sorted(removable)[0])
                edits += 1

            if not constraints.min_size <= len(base) <= constraints.max_size:
                continue
            if not include_ids <= base:
                continue
            if any(self._violates(i, exclude_ids, banned) for i in base):
                continue
            if (
                constraints.novel
                and self._reference
                and frozenset(base) in self._reference
            ):
                continue
            ids = tuple(sorted(base))
            return GeneratedRecipe(
                ingredient_ids=ids,
                names=tuple(self._lexicon.by_id(i).name for i in ids),
                source_model=self._run.model_name,
                edits=edits,
            )
        raise GenerationError(
            f"no satisfying recipe found in {max_attempts} attempts; "
            "constraints may be unsatisfiable against this pool"
        )

    def generate_many(
        self,
        count: int,
        constraints: GenerationConstraints = GenerationConstraints(),
        seed: SeedLike = None,
    ) -> list[GeneratedRecipe]:
        """Generate ``count`` distinct recipes under one constraint set."""
        rng = ensure_rng(seed)
        results: list[GeneratedRecipe] = []
        seen: set[tuple[int, ...]] = set()
        guard = 0
        while len(results) < count and guard < count * 50:
            guard += 1
            recipe = self.generate(constraints, seed=rng)
            if recipe.ingredient_ids in seen:
                continue
            seen.add(recipe.ingredient_ids)
            results.append(recipe)
        if len(results) < count:
            raise GenerationError(
                f"only {len(results)} distinct recipes found of {count} "
                "requested"
            )
        return results
