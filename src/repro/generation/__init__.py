"""Novel recipe generation from evolved pools (the paper's motivation)."""

from repro.generation.generator import (
    GeneratedRecipe,
    GenerationConstraints,
    GenerationError,
    RecipeGenerator,
)

__all__ = [
    "GeneratedRecipe",
    "GenerationConstraints",
    "GenerationError",
    "RecipeGenerator",
]
