"""Model-vs-empirical evaluation harness (Sec. VI, Fig. 4).

Given the empirical rank-frequency curve of a cuisine's frequent
combinations and the aggregated curves of candidate evolution models,
computes Eq. 2 distances and identifies the best-fitting model.  The
aggregation follows Sec. V: each of the (paper: 100) independent runs is
mined separately at the same support threshold, and the per-run curves
are rank-aligned averaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.itemsets import mine_frequent_itemsets
from repro.analysis.mae import curve_distance
from repro.analysis.rank_frequency import (
    RankFrequencyCurve,
    average_curves,
    curve_from_mining,
)
from repro.config import DEFAULT_MINING, MiningConfig
from repro.errors import AnalysisError

__all__ = ["ModelEvaluation", "model_curve_from_runs", "evaluate_models"]


def model_curve_from_runs(
    runs: Sequence[Sequence[frozenset[int]]],
    label: str,
    mining: MiningConfig = DEFAULT_MINING,
) -> RankFrequencyCurve:
    """Aggregate a model's runs into one rank-frequency curve.

    Args:
        runs: One transaction list (generated recipe pool) per run.
        label: Curve label (model name).
        mining: Mining configuration shared with the empirical analysis.

    Returns:
        The rank-aligned mean curve over runs.
    """
    if not runs:
        raise AnalysisError(f"model {label!r} has no runs to aggregate")
    curves = []
    for run_index, transactions in enumerate(runs):
        result = mine_frequent_itemsets(
            transactions,
            min_support=mining.min_support,
            algorithm=mining.algorithm,
            max_size=mining.max_size,
        )
        curves.append(curve_from_mining(result, f"{label}#{run_index}"))
    return average_curves(curves, label)


@dataclass(frozen=True)
class ModelEvaluation:
    """Fig. 4 content for one cuisine.

    Attributes:
        region_code: Cuisine evaluated.
        level: ``"ingredient"`` or ``"category"``.
        empirical: Empirical rank-frequency curve.
        model_curves: Aggregated model curves keyed by model name.
        distances: Eq. 2 distance of each model to the empirical curve
            (the numbers printed in Fig. 4's legends).
        distance_kind: Which Eq. 2 reading produced the distances.
    """

    region_code: str
    level: str
    empirical: RankFrequencyCurve
    model_curves: dict[str, RankFrequencyCurve]
    distances: dict[str, float]
    distance_kind: str

    @property
    def best_model(self) -> str:
        """Model with the smallest distance to the empirical curve."""
        return min(self.distances, key=lambda name: (self.distances[name], name))

    def ranking(self) -> list[tuple[str, float]]:
        """Models sorted by ascending distance."""
        return sorted(self.distances.items(), key=lambda kv: (kv[1], kv[0]))


def evaluate_models(
    region_code: str,
    empirical: RankFrequencyCurve,
    model_curves: Mapping[str, RankFrequencyCurve],
    level: str = "ingredient",
    distance_kind: str = "absolute",
) -> ModelEvaluation:
    """Score aggregated model curves against the empirical curve.

    Raises:
        AnalysisError: If no model curves are supplied or any model curve
            shares no ranks with the empirical curve.
    """
    if not model_curves:
        raise AnalysisError("no model curves to evaluate")
    if len(empirical) == 0:
        raise AnalysisError(
            f"empirical curve for {region_code!r} is empty; lower the "
            "support threshold or supply more recipes"
        )
    distances = {
        name: curve_distance(empirical, curve, kind=distance_kind)
        for name, curve in model_curves.items()
    }
    return ModelEvaluation(
        region_code=region_code,
        level=level,
        empirical=empirical,
        model_curves=dict(model_curves),
        distances=distances,
        distance_kind=distance_kind,
    )
