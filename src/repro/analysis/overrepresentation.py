"""Ingredient Overrepresentation (Eq. 1, Sec. III).

For ingredient *i* and cuisine ς:

    O_i^ς = n_i^ς / N^ς − (Σ_c n_i^c) / (Σ_c N^c)

where ``n_i^ς`` is the number of recipes of cuisine ς containing *i* and
``N^ς`` is the cuisine's recipe count; the second term is the same
fraction across all cuisines.  Positive values mean the cuisine uses the
ingredient in a larger share of its recipes than the world does — Table I
reports each cuisine's top five.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.dataset import RecipeDataset
from repro.errors import EmptyCorpusError
from repro.lexicon.lexicon import Lexicon

__all__ = [
    "OverrepresentationEntry",
    "overrepresentation_scores",
    "top_overrepresented",
    "overrepresentation_table",
]


@dataclass(frozen=True)
class OverrepresentationEntry:
    """One (cuisine, ingredient) overrepresentation record.

    Attributes:
        region_code: Cuisine.
        ingredient_id: Lexicon id.
        name: Canonical ingredient name.
        local_fraction: n_i^ς / N^ς.
        global_fraction: Σ_c n_i^c / Σ_c N^c.
        score: ``local_fraction - global_fraction`` (Eq. 1).
    """

    region_code: str
    ingredient_id: int
    name: str
    local_fraction: float
    global_fraction: float
    score: float


def overrepresentation_scores(
    dataset: RecipeDataset,
    region_code: str,
    lexicon: Lexicon,
) -> list[OverrepresentationEntry]:
    """Eq. 1 scores for every ingredient used by a cuisine.

    Returns entries sorted by descending score (ties broken by name for
    determinism).

    Raises:
        EmptyCorpusError: If the cuisine or the corpus is empty.
    """
    view = dataset.cuisine(region_code)
    if not view:
        raise EmptyCorpusError(f"cuisine {region_code!r} has no recipes")
    total_recipes = len(dataset)
    if total_recipes == 0:
        raise EmptyCorpusError("dataset has no recipes")

    local_counts = view.ingredient_recipe_counts()
    global_counts = dataset.global_ingredient_recipe_counts()
    n_local = view.n_recipes

    entries = [
        OverrepresentationEntry(
            region_code=view.region_code,
            ingredient_id=ingredient_id,
            name=lexicon.by_id(ingredient_id).name,
            local_fraction=count / n_local,
            global_fraction=global_counts[ingredient_id] / total_recipes,
            score=count / n_local - global_counts[ingredient_id] / total_recipes,
        )
        for ingredient_id, count in local_counts.items()
    ]
    entries.sort(key=lambda entry: (-entry.score, entry.name))
    return entries


def top_overrepresented(
    dataset: RecipeDataset,
    region_code: str,
    lexicon: Lexicon,
    k: int = 5,
) -> list[OverrepresentationEntry]:
    """The cuisine's ``k`` most overrepresented ingredients (Table I)."""
    return overrepresentation_scores(dataset, region_code, lexicon)[:k]


def overrepresentation_table(
    dataset: RecipeDataset,
    lexicon: Lexicon,
    k: int = 5,
) -> dict[str, list[OverrepresentationEntry]]:
    """Top-k overrepresented ingredients for every cuisine present."""
    return {
        code: top_overrepresented(dataset, code, lexicon, k=k)
        for code in dataset.region_codes()
    }
