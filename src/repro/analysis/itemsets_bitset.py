"""Bitset Eclat: vertical mining over numpy packed-bit tidset matrices.

The pure-Python :func:`~repro.analysis.itemsets.eclat` represents each
item's tidset as a Python ``set`` and intersects candidates one pair at
a time — millions of hash probes per mining call at the paper's support
threshold.  This engine replaces both the representation and the loop:

1. transactions are packed **once** into a bit matrix
   (``np.packbits``): row = item, bit = transaction membership;
2. a depth-first extension intersects the prefix tidset against *every*
   sibling candidate in one vectorized ``AND`` over the packed bytes;
3. supports come from a 256-entry popcount lookup table summed per row
   — no ``unpackbits`` round trip on the hot path.

The search tree, the pruning rule (support >= min_count) and the
``(-support, size, items)`` rank order are exactly those of the
pure-Python miner, so the results are identical item for item and count
for count — a property ``tests/analysis/test_itemsets_bitset.py`` pins
against all four pre-existing miners on randomized inputs.

Registered lazily as ``algorithm="bitset"`` in
:mod:`repro.analysis.itemsets`; select it via
``MiningConfig(algorithm="bitset")`` or ``--mining-algorithm bitset``.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable

import numpy as np

from repro.analysis.itemsets import (
    MAX_ITEMSETS,
    MiningResult,
    _min_count,
    _sorted_result,
    register_algorithm,
)
from repro.errors import MiningError

__all__ = ["bitset_eclat", "mine_packed", "POPCOUNT_TABLE"]

#: Bits set per byte value — the popcount primitive.  Indexing a packed
#: row through this table and summing gives the row's support without
#: unpacking it back to booleans.
POPCOUNT_TABLE: np.ndarray = np.unpackbits(
    np.arange(256, dtype=np.uint8).reshape(-1, 1), axis=1
).sum(axis=1).astype(np.int64)


def bitset_eclat(
    transactions: Iterable[Iterable[int]],
    min_support: float,
    max_size: int | None = None,
) -> MiningResult:
    """Depth-first vertical mining over packed-bit tidsets.

    Args:
        transactions: Item collections (ingredient ids or category
            indexes).
        min_support: Relative support threshold in ``(0, 1]``.
        max_size: Optional cap on itemset size.

    Returns:
        A :class:`~repro.analysis.itemsets.MiningResult` whose itemsets
        and supports are identical to the pure-Python miners' (only the
        ``algorithm`` field differs).
    """
    # Sets pass through untouched (model runs hand us frozensets
    # already); anything else is deduplicated the way the reference
    # miners' normalization does.
    data = [
        transaction
        if isinstance(transaction, (set, frozenset))
        else frozenset(transaction)
        for transaction in transactions
    ]
    n = len(data)
    if n == 0:
        return MiningResult((), 0, min_support, "bitset")
    min_count = _min_count(min_support, n)

    # Flatten once: the only Python-level pass over the data.  Every
    # later step — counting, frequency filtering, bit-matrix build — is
    # a vectorized numpy operation over these flat arrays.
    lengths = np.fromiter(
        (len(transaction) for transaction in data), dtype=np.intp, count=n
    )
    total = int(lengths.sum())
    if total == 0:
        return MiningResult((), n, min_support, "bitset")
    flat_items = np.fromiter(
        chain.from_iterable(data), dtype=np.int64, count=total
    )
    flat_tids = np.repeat(np.arange(n, dtype=np.intp), lengths)

    unique_items, inverse = np.unique(flat_items, return_inverse=True)
    item_counts = np.bincount(inverse, minlength=unique_items.size)
    frequent = item_counts >= min_count
    if not frequent.any():
        return MiningResult((), n, min_support, "bitset")
    frequent_items = [int(item) for item in unique_items[frequent]]
    row_of = np.full(unique_items.size, -1, dtype=np.intp)
    row_of[frequent] = np.arange(int(frequent.sum()), dtype=np.intp)
    occurrence_rows = row_of[inverse]
    kept = occurrence_rows >= 0

    mask = np.zeros((len(frequent_items), n), dtype=bool)
    mask[occurrence_rows[kept], flat_tids[kept]] = True
    packed = np.packbits(mask, axis=1)
    supports = item_counts[frequent].astype(np.int64)

    return _mine_over_matrix(
        frequent_items, packed, supports, n, min_count, min_support, max_size
    )


def _mine_over_matrix(
    frequent_items: list[int],
    packed: np.ndarray,
    supports: np.ndarray,
    n: int,
    min_count: int,
    min_support: float,
    max_size: int | None,
) -> MiningResult:
    """The depth-first extension over an already-frequent packed matrix.

    Shared by :func:`bitset_eclat` (which packs in memory) and
    :func:`mine_packed` (which reads stored planes): same search tree,
    same pruning, same rank order — so both entry points return
    identical results for identical transaction content.
    """
    found: dict[tuple[int, ...], int] = {}

    def extend(
        prefix: tuple[int, ...],
        items: list[int],
        rows: np.ndarray,
        sups: np.ndarray,
    ) -> None:
        for index, item in enumerate(items):
            itemset = prefix + (item,)
            found[itemset] = int(sups[index])
            if len(found) > MAX_ITEMSETS:
                raise MiningError(
                    f"mining exceeded {MAX_ITEMSETS} itemsets; raise "
                    "min_support or cap max_size"
                )
            if max_size is not None and len(itemset) >= max_size:
                continue
            if index + 1 == len(items):
                continue
            # One vectorized AND + popcount covers every sibling at once
            # — the step the pure-Python miner does set by set.
            intersections = rows[index + 1:] & rows[index]
            inter_supports = POPCOUNT_TABLE[intersections].sum(axis=1)
            keep = np.flatnonzero(inter_supports >= min_count)
            if keep.size:
                extend(
                    itemset,
                    [items[index + 1 + k] for k in keep],
                    intersections[keep],
                    inter_supports[keep],
                )

    extend((), frequent_items, packed, supports)
    return _sorted_result(found, n, min_support, "bitset")


#: Rows processed per block when computing supports over a stored
#: matrix — bounds the int64 popcount intermediate, not the matrix.
_ROW_BLOCK = 256


def mine_packed(
    matrix: np.ndarray,
    item_ids: np.ndarray,
    n_transactions: int,
    min_support: float,
    max_size: int | None = None,
) -> MiningResult:
    """Mine a stored packed-bit transaction matrix zero-copy.

    The columnar store's ``bits:<code>`` planes are exactly the matrix
    :func:`bitset_eclat` builds internally — row = item, bit =
    transaction, ``np.packbits`` layout — so a memory-mapped plane can
    be mined without round-tripping through ``Recipe`` objects or
    frozensets.  Supports are popcounted block-wise straight off the
    mapping; only the frequent rows (typically a small fraction at the
    paper's thresholds) are copied into memory for the depth-first
    extension.

    Args:
        matrix: ``(len(item_ids), ceil(n_transactions / 8))`` uint8
            packed membership bits (may be a ``np.memmap`` view); bits
            past ``n_transactions`` must be zero.
        item_ids: Ascending item id per matrix row.
        n_transactions: Number of transactions the bits encode.
        min_support: Relative support threshold in ``(0, 1]``.
        max_size: Optional cap on itemset size.

    Returns:
        A result bit-identical to any registered miner over the same
        transactions (``algorithm`` reads ``"bitset"``).
    """
    matrix = np.asarray(matrix)
    item_ids = np.asarray(item_ids)
    if matrix.ndim != 2 or matrix.dtype != np.uint8:
        raise MiningError(
            f"packed matrix must be 2-D uint8, got {matrix.dtype} "
            f"ndim={matrix.ndim}"
        )
    if matrix.shape[0] != item_ids.size:
        raise MiningError(
            f"{matrix.shape[0]} matrix rows vs {item_ids.size} item ids"
        )
    if item_ids.size > 1 and not (np.diff(item_ids) > 0).all():
        raise MiningError("item_ids must be strictly ascending")
    n = int(n_transactions)
    if n == 0:
        return MiningResult((), 0, min_support, "bitset")
    min_count = _min_count(min_support, n)

    supports = np.empty(matrix.shape[0], dtype=np.int64)
    for start in range(0, matrix.shape[0], _ROW_BLOCK):
        block = matrix[start:start + _ROW_BLOCK]
        supports[start:start + _ROW_BLOCK] = POPCOUNT_TABLE[block].sum(axis=1)
    frequent = supports >= min_count
    if not frequent.any():
        return MiningResult((), n, min_support, "bitset")
    frequent_items = [int(item) for item in item_ids[frequent]]
    packed = np.ascontiguousarray(matrix[frequent])
    return _mine_over_matrix(
        frequent_items,
        packed,
        supports[frequent],
        n,
        min_count,
        min_support,
        max_size,
    )


register_algorithm("bitset", bitset_eclat)
