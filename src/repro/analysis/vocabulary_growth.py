"""Vocabulary growth (Heaps-law) analysis.

Complex-systems studies of cuisine (Kinouchi et al. [7], the paper's
Sec. V basis) characterize culinary evolution as *non-equilibrium*: the
ingredient vocabulary keeps growing as recipes accumulate, following a
sub-linear Heaps-type law ``V(n) ≈ K · n^beta`` with ``beta < 1``.  This
module measures that curve for empirical cuisines and for model runs —
Algorithm 1's ∂-vs-φ pool growth produces exactly such a trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.corpus.dataset import CuisineView
from repro.errors import AnalysisError

__all__ = ["HeapsFit", "vocabulary_growth_curve", "fit_heaps", "growth_from_sets"]


@dataclass(frozen=True)
class HeapsFit:
    """Heaps-law fit ``V(n) = K * n^beta``.

    Attributes:
        k: Prefactor.
        beta: Growth exponent (sub-linear growth when < 1).
        r_squared: Goodness of fit in log-log space.
    """

    k: float
    beta: float
    r_squared: float


def growth_from_sets(recipe_sets: Iterable[frozenset[int]]) -> np.ndarray:
    """Distinct-ingredient count after each recipe, in given order.

    Args:
        recipe_sets: Recipes as ingredient-id sets, in arrival order.

    Returns:
        ``(n_recipes,)`` int64 array: ``result[i]`` is the vocabulary
        size after the first ``i + 1`` recipes.
    """
    seen: set[int] = set()
    growth = []
    for recipe in recipe_sets:
        seen.update(recipe)
        growth.append(len(seen))
    return np.asarray(growth, dtype=np.int64)


def vocabulary_growth_curve(view: CuisineView) -> np.ndarray:
    """Vocabulary growth for an empirical cuisine in stored order."""
    if not view:
        raise AnalysisError(f"cuisine {view.region_code!r} has no recipes")
    return growth_from_sets(
        frozenset(recipe.ingredient_ids) for recipe in view
    )


def fit_heaps(growth: Sequence[int] | np.ndarray) -> HeapsFit:
    """Least-squares fit of ``V(n) = K n^beta`` in log-log space.

    Raises:
        AnalysisError: On fewer than three points.
    """
    values = np.asarray(growth, dtype=float)
    if values.size < 3:
        raise AnalysisError("need at least three growth points to fit")
    n = np.arange(1, values.size + 1, dtype=float)
    fit = scipy_stats.linregress(np.log(n), np.log(values))
    return HeapsFit(
        k=float(np.exp(fit.intercept)),
        beta=float(fit.slope),
        r_squared=float(fit.rvalue**2),
    )
