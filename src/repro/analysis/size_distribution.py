"""Recipe size distributions (Fig. 1).

The paper reports that recipe sizes are Gaussian-like, bounded in
[2, 38], mean ≈ 9, and that the per-cuisine histograms are homogeneous.
This module computes the per-cuisine and aggregate histograms plus a
Gaussian fit (via scipy) so the ``fig1`` experiment can report both the
curves and the fitted parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.corpus.dataset import RecipeDataset
from repro.errors import AnalysisError

__all__ = [
    "SizeDistribution",
    "size_distribution",
    "cuisine_size_distributions",
    "aggregate_size_distribution",
]


@dataclass(frozen=True)
class SizeDistribution:
    """A recipe-size histogram with a Gaussian fit.

    Attributes:
        label: Cuisine code or ``"ALL"`` for the aggregate.
        sizes: Histogram support (distinct sizes, ascending).
        counts: Recipe counts per size.
        fractions: ``counts`` normalized by total recipes.
        mean: Sample mean size.
        std: Sample standard deviation.
        min_size: Smallest observed size.
        max_size: Largest observed size.
        gaussian_mu: Fitted normal location.
        gaussian_sigma: Fitted normal scale.
    """

    label: str
    sizes: np.ndarray
    counts: np.ndarray
    fractions: np.ndarray
    mean: float
    std: float
    min_size: int
    max_size: int
    gaussian_mu: float
    gaussian_sigma: float

    @property
    def n_recipes(self) -> int:
        return int(self.counts.sum())

    def fraction_at(self, size: int) -> float:
        """Fraction of recipes having exactly ``size`` ingredients."""
        index = np.searchsorted(self.sizes, size)
        if index < self.sizes.size and self.sizes[index] == size:
            return float(self.fractions[index])
        return 0.0


def size_distribution(sizes: np.ndarray, label: str) -> SizeDistribution:
    """Build a :class:`SizeDistribution` from raw sizes."""
    if sizes.size == 0:
        raise AnalysisError(f"no sizes to analyze for {label!r}")
    values, counts = np.unique(sizes, return_counts=True)
    mu, sigma = scipy_stats.norm.fit(sizes)
    return SizeDistribution(
        label=label,
        sizes=values.astype(np.int64),
        counts=counts.astype(np.int64),
        fractions=counts / counts.sum(),
        mean=float(sizes.mean()),
        std=float(sizes.std()),
        min_size=int(values.min()),
        max_size=int(values.max()),
        gaussian_mu=float(mu),
        gaussian_sigma=float(sigma),
    )


def cuisine_size_distributions(
    dataset: RecipeDataset,
) -> dict[str, SizeDistribution]:
    """Per-cuisine Fig. 1 curves, keyed by region code."""
    return {
        code: size_distribution(dataset.cuisine(code).sizes(), code)
        for code in dataset.region_codes()
    }


def aggregate_size_distribution(dataset: RecipeDataset) -> SizeDistribution:
    """The Fig. 1 inset: all cuisines pooled."""
    return size_distribution(dataset.sizes(), "ALL")
