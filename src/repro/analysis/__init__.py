"""Statistical analyses of the paper (Secs. III, IV and VI)."""

from repro.analysis.category_usage import (
    BoxplotStats,
    CategoryUsage,
    category_boxplots,
    category_usage_matrix,
    dominant_categories,
)
from repro.analysis.ingredient_usage import (
    ZipfFit,
    cuisine_ingredient_curves,
    fit_zipf,
    ingredient_invariance,
    ingredient_rank_frequency,
)
from repro.analysis.invariants import (
    InvariantAnalysis,
    analyze_invariants,
    combination_curve,
)
from repro.analysis.itemsets import (
    CATEGORY_INDEX,
    FrequentItemset,
    MiningResult,
    apriori,
    available_algorithms,
    bruteforce,
    category_transactions,
    eclat,
    ingredient_transactions,
    mine_frequent_itemsets,
    register_algorithm,
)
from repro.analysis.mae import (
    PairwiseDistances,
    curve_distance,
    pairwise_distance_matrix,
)
from repro.analysis.model_eval import (
    ModelEvaluation,
    evaluate_models,
    model_curve_from_runs,
)
from repro.analysis.overrepresentation import (
    OverrepresentationEntry,
    overrepresentation_scores,
    overrepresentation_table,
    top_overrepresented,
)
from repro.analysis.rank_frequency import (
    RankFrequencyCurve,
    average_curves,
    curve_from_counts,
    curve_from_mining,
)
from repro.analysis.size_distribution import (
    SizeDistribution,
    aggregate_size_distribution,
    cuisine_size_distributions,
    size_distribution,
)
from repro.analysis.vocabulary_growth import (
    HeapsFit,
    fit_heaps,
    growth_from_sets,
    vocabulary_growth_curve,
)

__all__ = [
    "ZipfFit",
    "cuisine_ingredient_curves",
    "fit_zipf",
    "ingredient_invariance",
    "ingredient_rank_frequency",
    "BoxplotStats",
    "CategoryUsage",
    "category_boxplots",
    "category_usage_matrix",
    "dominant_categories",
    "InvariantAnalysis",
    "analyze_invariants",
    "combination_curve",
    "CATEGORY_INDEX",
    "FrequentItemset",
    "MiningResult",
    "apriori",
    "available_algorithms",
    "bruteforce",
    "category_transactions",
    "eclat",
    "ingredient_transactions",
    "mine_frequent_itemsets",
    "register_algorithm",
    "PairwiseDistances",
    "curve_distance",
    "pairwise_distance_matrix",
    "ModelEvaluation",
    "evaluate_models",
    "model_curve_from_runs",
    "OverrepresentationEntry",
    "overrepresentation_scores",
    "overrepresentation_table",
    "top_overrepresented",
    "RankFrequencyCurve",
    "average_curves",
    "curve_from_counts",
    "curve_from_mining",
    "SizeDistribution",
    "aggregate_size_distribution",
    "cuisine_size_distributions",
    "size_distribution",
    "HeapsFit",
    "fit_heaps",
    "growth_from_sets",
    "vocabulary_growth_curve",
]
