"""Frequent-combination mining (Sec. IV).

The paper considers all ingredient combinations ("of size 1 and greater")
that appear in at least 5% of a cuisine's recipes — i.e. frequent
itemsets at relative support 0.05.  Three miners are provided:

* ``eclat`` — vertical tidset intersection, depth-first.  The default;
  fast for the paper's support threshold.
* ``bitset`` — the same search over numpy packed-bit tidsets with
  vectorized AND + popcount (:mod:`repro.analysis.itemsets_bitset`,
  loaded lazily); the fast path for ensemble mining.
* ``apriori`` — classic level-wise candidate generation over horizontal
  data.  Independent implementation used to cross-check Eclat.
* ``fpgrowth`` — FP-tree projection mining; fastest on dense data with
  long frequent itemsets.
* ``bruteforce`` — exact subset enumeration; exponential, only for small
  inputs and property tests.

All miners return identical results (a property the test-suite enforces).
Items are integers (lexicon ingredient ids, or category indexes via
:func:`category_transactions`).  :func:`available_algorithms` lists the
registered miner names; :func:`register_algorithm` is the extension seam
new miners (including the lazily-imported bitset engine) register
through.
"""

from __future__ import annotations

import importlib
import math
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable

from repro.corpus.dataset import CuisineView
from repro.errors import MiningError
from repro.lexicon.categories import Category
from repro.lexicon.lexicon import Lexicon

__all__ = [
    "FrequentItemset",
    "MiningResult",
    "available_algorithms",
    "mine_frequent_itemsets",
    "register_algorithm",
    "eclat",
    "apriori",
    "fpgrowth",
    "bruteforce",
    "category_transactions",
    "ingredient_transactions",
    "CATEGORY_INDEX",
]

#: Stable category <-> index mapping for category-level mining.
CATEGORY_INDEX: dict[Category, int] = {
    category: index for index, category in enumerate(Category)
}
_INDEX_CATEGORY: dict[int, Category] = {
    index: category for category, index in CATEGORY_INDEX.items()
}

#: Safety valve: a mining call producing more itemsets than this is almost
#: certainly misconfigured (e.g. minuscule support on dense data).
MAX_ITEMSETS = 2_000_000


@dataclass(frozen=True)
class FrequentItemset:
    """One frequent combination.

    Attributes:
        items: Sorted item tuple.
        support: Absolute support (number of transactions containing it).
    """

    items: tuple[int, ...]
    support: int

    @property
    def size(self) -> int:
        return len(self.items)

    def relative_support(self, n_transactions: int) -> float:
        """Support normalized by the transaction count."""
        if n_transactions <= 0:
            return 0.0
        return self.support / n_transactions


@dataclass(frozen=True)
class MiningResult:
    """Output of a mining run.

    Attributes:
        itemsets: Frequent itemsets sorted by (-support, size, items) —
            the rank order used by the Fig. 3/4 rank-frequency curves.
        n_transactions: Transactions mined.
        min_support: Relative support threshold used.
        algorithm: Miner name.
    """

    itemsets: tuple[FrequentItemset, ...]
    n_transactions: int
    min_support: float
    algorithm: str

    def __len__(self) -> int:
        return len(self.itemsets)

    def frequencies(self) -> list[float]:
        """Relative supports in rank order (Fig. 3/4 y-values)."""
        if self.n_transactions == 0:
            return []
        return [
            itemset.support / self.n_transactions for itemset in self.itemsets
        ]

    def of_size(self, size: int) -> tuple[FrequentItemset, ...]:
        """Frequent itemsets of exactly ``size`` items."""
        return tuple(i for i in self.itemsets if i.size == size)


def _min_count(min_support: float, n_transactions: int) -> int:
    if not 0.0 < min_support <= 1.0:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    return max(1, math.ceil(min_support * n_transactions))


def _normalize_transactions(
    transactions: Iterable[Iterable[int]],
) -> list[frozenset[int]]:
    return [frozenset(t) for t in transactions]


def _sorted_result(
    found: dict[tuple[int, ...], int],
    n_transactions: int,
    min_support: float,
    algorithm: str,
) -> MiningResult:
    if len(found) > MAX_ITEMSETS:
        raise MiningError(
            f"mining produced {len(found)} itemsets (> {MAX_ITEMSETS}); "
            "raise min_support or cap max_size"
        )
    itemsets = tuple(
        FrequentItemset(items=items, support=support)
        for items, support in sorted(
            found.items(), key=lambda kv: (-kv[1], len(kv[0]), kv[0])
        )
    )
    return MiningResult(
        itemsets=itemsets,
        n_transactions=n_transactions,
        min_support=min_support,
        algorithm=algorithm,
    )


# ---------------------------------------------------------------------------
# Eclat
# ---------------------------------------------------------------------------


def eclat(
    transactions: Iterable[Iterable[int]],
    min_support: float,
    max_size: int | None = None,
) -> MiningResult:
    """Depth-first vertical mining with tidset intersections."""
    data = _normalize_transactions(transactions)
    n = len(data)
    if n == 0:
        return MiningResult((), 0, min_support, "eclat")
    min_count = _min_count(min_support, n)

    tidsets: dict[int, set[int]] = {}
    for tid, transaction in enumerate(data):
        for item in transaction:
            tidsets.setdefault(item, set()).add(tid)

    frequent_items = sorted(
        item for item, tids in tidsets.items() if len(tids) >= min_count
    )
    found: dict[tuple[int, ...], int] = {}

    def extend(
        prefix: tuple[int, ...],
        candidates: list[tuple[int, set[int]]],
    ) -> None:
        for index, (item, tids) in enumerate(candidates):
            items = prefix + (item,)
            found[items] = len(tids)
            if len(found) > MAX_ITEMSETS:
                raise MiningError(
                    f"mining exceeded {MAX_ITEMSETS} itemsets; raise "
                    "min_support or cap max_size"
                )
            if max_size is not None and len(items) >= max_size:
                continue
            next_candidates = []
            for other, other_tids in candidates[index + 1:]:
                intersection = tids & other_tids
                if len(intersection) >= min_count:
                    next_candidates.append((other, intersection))
            if next_candidates:
                extend(items, next_candidates)

    extend((), [(item, tidsets[item]) for item in frequent_items])
    return _sorted_result(found, n, min_support, "eclat")


# ---------------------------------------------------------------------------
# Apriori
# ---------------------------------------------------------------------------


def apriori(
    transactions: Iterable[Iterable[int]],
    min_support: float,
    max_size: int | None = None,
) -> MiningResult:
    """Level-wise mining with candidate generation and pruning."""
    data = _normalize_transactions(transactions)
    n = len(data)
    if n == 0:
        return MiningResult((), 0, min_support, "apriori")
    min_count = _min_count(min_support, n)

    counts: dict[tuple[int, ...], int] = {}
    for transaction in data:
        for item in transaction:
            key = (item,)
            counts[key] = counts.get(key, 0) + 1
    current = {items for items, c in counts.items() if c >= min_count}
    found = {items: counts[items] for items in current}

    size = 1
    while current and (max_size is None or size < max_size):
        size += 1
        # Join step: merge itemsets sharing the first size-2 items.
        sorted_current = sorted(current)
        candidates: set[tuple[int, ...]] = set()
        for i, a in enumerate(sorted_current):
            for b in sorted_current[i + 1:]:
                if a[:-1] != b[:-1]:
                    break
                candidate = a + (b[-1],)
                # Prune: all (size-1)-subsets must be frequent.
                if all(
                    candidate[:j] + candidate[j + 1:] in current
                    for j in range(len(candidate))
                ):
                    candidates.add(candidate)
        if not candidates:
            break
        level_counts = {candidate: 0 for candidate in candidates}
        candidate_list = sorted(candidates)
        for transaction in data:
            if len(transaction) < size:
                continue
            for candidate in candidate_list:
                if all(item in transaction for item in candidate):
                    level_counts[candidate] += 1
        current = {
            candidate
            for candidate, count in level_counts.items()
            if count >= min_count
        }
        for candidate in current:
            found[candidate] = level_counts[candidate]
        if len(found) > MAX_ITEMSETS:
            raise MiningError(
                f"mining exceeded {MAX_ITEMSETS} itemsets; raise "
                "min_support or cap max_size"
            )
    return _sorted_result(found, n, min_support, "apriori")


# ---------------------------------------------------------------------------
# FP-Growth
# ---------------------------------------------------------------------------


class _FPNode:
    """One node of an FP-tree: an item with a count and children."""

    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: int | None, parent: "_FPNode | None"):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _FPNode] = {}
        self.link: _FPNode | None = None  # next node holding the same item


def _build_fp_tree(
    itemlists: list[list[int]],
    counts: list[int],
) -> tuple[_FPNode, dict[int, "_FPNode"]]:
    """Build an FP-tree from (ordered item list, count) pairs."""
    root = _FPNode(None, None)
    headers: dict[int, _FPNode] = {}
    tails: dict[int, _FPNode] = {}
    for items, count in zip(itemlists, counts):
        node = root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                if item in tails:
                    tails[item].link = child
                else:
                    headers[item] = child
                tails[item] = child
            child.count += count
            node = child
    return root, headers


def _fp_mine(
    headers: dict[int, _FPNode],
    item_order: dict[int, int],
    min_count: int,
    suffix: tuple[int, ...],
    found: dict[tuple[int, ...], int],
) -> None:
    """Recursively mine an FP-tree through conditional projections."""
    # Process items from least to most frequent (reverse of tree order).
    for item in sorted(headers, key=lambda i: item_order[i], reverse=True):
        support = 0
        node = headers[item]
        while node is not None:
            support += node.count
            node = node.link
        if support < min_count:
            continue
        itemset = tuple(sorted(suffix + (item,)))
        found[itemset] = support
        if len(found) > MAX_ITEMSETS:
            raise MiningError(
                f"mining exceeded {MAX_ITEMSETS} itemsets; raise "
                "min_support or cap max_size"
            )
        # Conditional pattern base: prefix paths of every node of `item`.
        conditional_lists: list[list[int]] = []
        conditional_counts: list[int] = []
        node = headers[item]
        while node is not None:
            path: list[int] = []
            ancestor = node.parent
            while ancestor is not None and ancestor.item is not None:
                path.append(ancestor.item)
                ancestor = ancestor.parent
            if path:
                path.reverse()
                conditional_lists.append(path)
                conditional_counts.append(node.count)
            node = node.link
        if not conditional_lists:
            continue
        # Keep only items frequent within the conditional base.
        base_counts: dict[int, int] = {}
        for path, count in zip(conditional_lists, conditional_counts):
            for path_item in path:
                base_counts[path_item] = base_counts.get(path_item, 0) + count
        keep = {i for i, c in base_counts.items() if c >= min_count}
        if not keep:
            continue
        filtered = [
            [i for i in path if i in keep] for path in conditional_lists
        ]
        pairs = [
            (path, count)
            for path, count in zip(filtered, conditional_counts)
            if path
        ]
        if not pairs:
            continue
        _root, sub_headers = _build_fp_tree(
            [path for path, _count in pairs],
            [count for _path, count in pairs],
        )
        _fp_mine(sub_headers, item_order, min_count, itemset, found)


def fpgrowth(
    transactions: Iterable[Iterable[int]],
    min_support: float,
    max_size: int | None = None,
) -> MiningResult:
    """FP-Growth mining via recursive conditional FP-trees.

    ``max_size`` is applied as a post-filter (the tree mines all sizes);
    the paper's analyses mine unbounded sizes anyway.
    """
    data = _normalize_transactions(transactions)
    n = len(data)
    if n == 0:
        return MiningResult((), 0, min_support, "fpgrowth")
    min_count = _min_count(min_support, n)

    item_counts: dict[int, int] = {}
    for transaction in data:
        for item in transaction:
            item_counts[item] = item_counts.get(item, 0) + 1
    frequent = {i for i, c in item_counts.items() if c >= min_count}
    # Global order: most frequent first; ties by item id for determinism.
    ordered = sorted(frequent, key=lambda i: (-item_counts[i], i))
    item_order = {item: rank for rank, item in enumerate(ordered)}

    itemlists = []
    for transaction in data:
        kept = sorted(
            (i for i in transaction if i in frequent),
            key=lambda i: item_order[i],
        )
        if kept:
            itemlists.append(kept)
    _root, headers = _build_fp_tree(itemlists, [1] * len(itemlists))

    found: dict[tuple[int, ...], int] = {}
    _fp_mine(headers, item_order, min_count, (), found)
    if max_size is not None:
        found = {
            items: support
            for items, support in found.items()
            if len(items) <= max_size
        }
    return _sorted_result(found, n, min_support, "fpgrowth")


# ---------------------------------------------------------------------------
# Brute force
# ---------------------------------------------------------------------------


def bruteforce(
    transactions: Iterable[Iterable[int]],
    min_support: float,
    max_size: int | None = None,
) -> MiningResult:
    """Exact enumeration of every subset of every transaction.

    Exponential in transaction size — reference implementation for tests.
    """
    data = _normalize_transactions(transactions)
    n = len(data)
    if n == 0:
        return MiningResult((), 0, min_support, "bruteforce")
    min_count = _min_count(min_support, n)

    counts: dict[tuple[int, ...], int] = {}
    for transaction in data:
        items = sorted(transaction)
        limit = len(items) if max_size is None else min(max_size, len(items))
        for size in range(1, limit + 1):
            for subset in combinations(items, size):
                counts[subset] = counts.get(subset, 0) + 1
        if len(counts) > MAX_ITEMSETS:
            raise MiningError(
                f"bruteforce exceeded {MAX_ITEMSETS} counted subsets"
            )
    found = {items: c for items, c in counts.items() if c >= min_count}
    return _sorted_result(found, n, min_support, "bruteforce")


_ALGORITHMS: dict[str, Callable[..., MiningResult]] = {
    "eclat": eclat,
    "apriori": apriori,
    "fpgrowth": fpgrowth,
    "bruteforce": bruteforce,
}

#: Miners that live in their own module and register on first use, so
#: importing :mod:`repro.analysis.itemsets` stays cheap.
_LAZY_ALGORITHMS: dict[str, str] = {
    "bitset": "repro.analysis.itemsets_bitset",
}


def register_algorithm(
    name: str, miner: Callable[..., MiningResult]
) -> None:
    """Register a miner under ``name`` (the extension seam).

    The callable must accept ``(transactions, min_support, max_size=)``
    and honor the shared result contract: identical itemsets/supports to
    the reference miners, sorted by ``(-support, size, items)``.
    """
    _ALGORITHMS[name] = miner


def available_algorithms() -> tuple[str, ...]:
    """Names of every registered mining algorithm, sorted.

    Forces the lazily-registered miners to load first, so the list is
    complete regardless of import order.
    """
    for module in _LAZY_ALGORITHMS.values():
        importlib.import_module(module)
    return tuple(sorted(_ALGORITHMS))


def _resolve_algorithm(algorithm: str) -> Callable[..., MiningResult]:
    miner = _ALGORITHMS.get(algorithm)
    if miner is None and algorithm in _LAZY_ALGORITHMS:
        importlib.import_module(_LAZY_ALGORITHMS[algorithm])
        miner = _ALGORITHMS.get(algorithm)
    if miner is None:
        raise MiningError(
            f"unknown mining algorithm {algorithm!r}; "
            f"available: {list(available_algorithms())}"
        )
    return miner


def mine_frequent_itemsets(
    transactions: Iterable[Iterable[int]],
    min_support: float,
    algorithm: str = "eclat",
    max_size: int | None = None,
) -> MiningResult:
    """Mine frequent combinations with the selected algorithm.

    Args:
        transactions: Item collections (ingredient ids or category
            indexes).
        min_support: Relative support threshold — the paper uses 0.05.
        algorithm: One of :func:`available_algorithms` — ``"eclat"``
            (default), ``"bitset"``, ``"apriori"``, ``"fpgrowth"`` or
            ``"bruteforce"``; all return identical results.
        max_size: Optional cap on itemset size.

    Returns:
        A :class:`MiningResult` with itemsets in rank order.
    """
    miner = _resolve_algorithm(algorithm)
    return miner(transactions, min_support, max_size=max_size)


# ---------------------------------------------------------------------------
# Transaction builders
# ---------------------------------------------------------------------------


def ingredient_transactions(view: CuisineView) -> list[frozenset[int]]:
    """Recipes of a cuisine as ingredient-id transactions."""
    return view.as_id_sets()


def category_transactions(
    view: CuisineView, lexicon: Lexicon
) -> list[frozenset[int]]:
    """Recipes as category-index transactions (Sec. IV category level)."""
    id_to_category = lexicon.id_to_category_array()
    return [
        frozenset(
            CATEGORY_INDEX[id_to_category[ingredient_id]]
            for ingredient_id in recipe.ingredient_ids
        )
        for recipe in view
    ]


def category_from_index(index: int) -> Category:
    """Inverse of :data:`CATEGORY_INDEX`."""
    try:
        return _INDEX_CATEGORY[index]
    except KeyError:
        raise MiningError(f"invalid category index {index}") from None
