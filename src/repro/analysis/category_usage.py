"""Per-category ingredient usage (Fig. 2).

Fig. 2 shows, for each of the 21 categories, boxplots over cuisines of
the *average number of ingredients used per recipe from that category*.
We compute the per-(cuisine, category) means plus five-number summaries
across cuisines, which is all the figure displays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.dataset import RecipeDataset
from repro.errors import AnalysisError
from repro.lexicon.categories import Category
from repro.lexicon.lexicon import Lexicon

__all__ = [
    "CategoryUsage",
    "BoxplotStats",
    "category_usage_matrix",
    "category_boxplots",
    "dominant_categories",
]


@dataclass(frozen=True)
class CategoryUsage:
    """Mean per-recipe usage of one category in one cuisine."""

    region_code: str
    category: Category
    mean_per_recipe: float


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary of per-cuisine means for one category.

    Attributes mirror a standard boxplot: quartiles plus whisker ends
    (1.5 IQR convention) and outliers.
    """

    category: Category
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]
    mean: float

    @classmethod
    def from_values(cls, category: Category, values: np.ndarray) -> "BoxplotStats":
        if values.size == 0:
            raise AnalysisError(f"no values for category {category}")
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        iqr = q3 - q1
        low_limit = q1 - 1.5 * iqr
        high_limit = q3 + 1.5 * iqr
        inside = values[(values >= low_limit) & (values <= high_limit)]
        whisker_low = float(inside.min()) if inside.size else float(values.min())
        whisker_high = float(inside.max()) if inside.size else float(values.max())
        outliers = tuple(
            float(v) for v in values[(values < low_limit) | (values > high_limit)]
        )
        return cls(
            category=category,
            minimum=float(values.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            maximum=float(values.max()),
            whisker_low=whisker_low,
            whisker_high=whisker_high,
            outliers=outliers,
            mean=float(values.mean()),
        )


def category_usage_matrix(
    dataset: RecipeDataset, lexicon: Lexicon
) -> dict[str, dict[Category, float]]:
    """region code -> category -> mean ingredients-per-recipe.

    Every category appears in every cuisine's row (0.0 when unused), so
    downstream consumers can rely on a dense matrix.
    """
    id_to_category = lexicon.id_to_category_array()
    matrix: dict[str, dict[Category, float]] = {}
    for code in dataset.region_codes():
        view = dataset.cuisine(code)
        totals = {category: 0 for category in Category}
        for recipe in view:
            for ingredient_id in recipe.ingredient_ids:
                totals[id_to_category[ingredient_id]] += 1
        n = max(len(view), 1)
        matrix[code] = {
            category: totals[category] / n for category in Category
        }
    return matrix


def category_boxplots(
    dataset: RecipeDataset, lexicon: Lexicon
) -> dict[Category, BoxplotStats]:
    """Fig. 2: per-category boxplot stats across cuisines."""
    matrix = category_usage_matrix(dataset, lexicon)
    if not matrix:
        raise AnalysisError("dataset has no cuisines")
    return {
        category: BoxplotStats.from_values(
            category,
            np.array([row[category] for row in matrix.values()]),
        )
        for category in Category
    }


def dominant_categories(
    dataset: RecipeDataset, lexicon: Lexicon, k: int = 7
) -> list[Category]:
    """Categories with the highest median per-recipe usage.

    The paper singles out Vegetable, Additive, Spice, Dairy, Herb, Plant
    and Fruit as the globally dominant seven.
    """
    boxplots = category_boxplots(dataset, lexicon)
    ranked = sorted(
        boxplots.values(), key=lambda stats: (-stats.median, stats.category.value)
    )
    return [stats.category for stats in ranked[:k]]
