"""Single-ingredient rank-frequency distributions.

Sec. IV opens from the established result (refs [3]-[8]) that "the
pattern of ingredient popularity (rank-frequency distribution) is
consistent across different regions" even though the popular ingredients
themselves differ.  This module computes those curves and a power-law
(Zipf) fit so the invariant can be verified on any corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.analysis.mae import pairwise_distance_matrix
from repro.analysis.rank_frequency import RankFrequencyCurve, curve_from_counts
from repro.corpus.dataset import CuisineView, RecipeDataset
from repro.errors import AnalysisError

__all__ = [
    "ZipfFit",
    "ingredient_rank_frequency",
    "cuisine_ingredient_curves",
    "fit_zipf",
    "ingredient_invariance",
]


@dataclass(frozen=True)
class ZipfFit:
    """Power-law fit of a rank-frequency curve.

    ``log f = intercept - exponent * log rank`` fitted by least squares
    over the full support.

    Attributes:
        exponent: The Zipf exponent (positive for decaying curves).
        intercept: Fitted log-intercept.
        r_squared: Goodness of fit in log-log space.
        n_ranks: Ranks used in the fit.
    """

    exponent: float
    intercept: float
    r_squared: float
    n_ranks: int


def ingredient_rank_frequency(view: CuisineView) -> RankFrequencyCurve:
    """Rank-frequency curve of single-ingredient usage in one cuisine.

    Frequencies are recipe counts normalized by the cuisine's total
    recipe count (an ingredient used in every recipe has frequency 1).
    """
    counts = view.ingredient_recipe_counts()
    if not counts:
        raise AnalysisError(
            f"cuisine {view.region_code!r} has no ingredient usage"
        )
    return curve_from_counts(
        counts.values(), n_transactions=view.n_recipes, label=view.region_code
    )


def cuisine_ingredient_curves(
    dataset: RecipeDataset,
) -> dict[str, RankFrequencyCurve]:
    """Per-cuisine single-ingredient curves, keyed by region code."""
    return {
        code: ingredient_rank_frequency(dataset.cuisine(code))
        for code in dataset.region_codes()
    }


def fit_zipf(curve: RankFrequencyCurve) -> ZipfFit:
    """Least-squares power-law fit in log-log space.

    Raises:
        AnalysisError: If fewer than three positive ranks are available.
    """
    frequencies = curve.frequencies
    positive = frequencies > 0
    if int(positive.sum()) < 3:
        raise AnalysisError(
            f"curve {curve.label!r} has fewer than 3 positive ranks"
        )
    ranks = np.arange(1, len(frequencies) + 1, dtype=float)[positive]
    log_rank = np.log(ranks)
    log_freq = np.log(frequencies[positive])
    fit = scipy_stats.linregress(log_rank, log_freq)
    return ZipfFit(
        exponent=-float(fit.slope),
        intercept=float(fit.intercept),
        r_squared=float(fit.rvalue**2),
        n_ranks=int(positive.sum()),
    )


def ingredient_invariance(dataset: RecipeDataset) -> dict:
    """The refs [3]-[8] invariant, quantified.

    Returns a dict with the per-cuisine Zipf exponents, their spread,
    and the average pairwise curve distance — small spread and distance
    = the invariant holds.
    """
    curves = cuisine_ingredient_curves(dataset)
    if len(curves) < 2:
        raise AnalysisError("need at least two cuisines")
    fits = {code: fit_zipf(curve) for code, curve in curves.items()}
    exponents = np.array([fit.exponent for fit in fits.values()])
    distances = pairwise_distance_matrix(list(curves.values()))
    return {
        "exponents": {code: fit.exponent for code, fit in fits.items()},
        "exponent_mean": float(exponents.mean()),
        "exponent_std": float(exponents.std()),
        "avg_pairwise_distance": distances.average(),
    }
