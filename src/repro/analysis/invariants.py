"""Cross-cuisine invariance analysis (Sec. IV, Fig. 3).

Computes, for every cuisine, the rank-frequency curve of frequent
combinations of ingredients (Fig. 3a) and of ingredient categories
(Fig. 3b), the aggregate (pooled) curve shown in the insets, and the
pairwise Eq. 2 distances quantifying cross-cuisine similarity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis.itemsets import (
    CATEGORY_INDEX,
    MiningResult,
    category_transactions,
    ingredient_transactions,
    mine_frequent_itemsets,
)
from repro.analysis.mae import PairwiseDistances, pairwise_distance_matrix
from repro.analysis.rank_frequency import RankFrequencyCurve, curve_from_mining
from repro.config import DEFAULT_MINING, MiningConfig
from repro.corpus.dataset import RecipeDataset
from repro.errors import AnalysisError, RunCacheError
from repro.lexicon.lexicon import Lexicon
from repro.runtime.curve_cache import (
    CurveCache,
    curve_key,
    transactions_fingerprint,
)
from repro.storage.columnar import ColumnarCorpus

__all__ = ["InvariantAnalysis", "analyze_invariants", "combination_curve"]


def _mine_cached(
    transactions: list[frozenset[int]],
    mining: MiningConfig,
    level: str,
    curve_cache: CurveCache | None,
) -> MiningResult:
    """Mine transactions, consulting the mined-curve cache when given.

    Empirical callers need the full :class:`MiningResult` (itemset
    drill-down), so entries store the result object itself under
    ``kind="mining"`` — distinct from the ensemble path's frequency
    arrays, sharing the same content-addressed key scheme.
    """
    if curve_cache is None:
        return mine_frequent_itemsets(
            transactions,
            min_support=mining.min_support,
            algorithm=mining.algorithm,
            max_size=mining.max_size,
        )
    key = curve_key(
        transactions_fingerprint(transactions), mining,
        level=level, kind="mining",
    )
    cached = curve_cache.get(key)
    if isinstance(cached, MiningResult):
        # Entries are shared across algorithms (the §6 equality
        # contract), so restamp the tag with what the caller asked for
        # rather than reporting whichever miner happened to warm it.
        return dataclasses.replace(cached, algorithm=mining.algorithm)
    result = mine_frequent_itemsets(
        transactions,
        min_support=mining.min_support,
        algorithm=mining.algorithm,
        max_size=mining.max_size,
    )
    try:
        curve_cache.put(key, result)
    except RunCacheError:
        pass  # the cache is an optimization; never fail the analysis
    return result


@dataclass(frozen=True)
class InvariantAnalysis:
    """Fig. 3 contents for one level (ingredient or category).

    Attributes:
        level: ``"ingredient"`` or ``"category"``.
        curves: Per-cuisine rank-frequency curves, keyed by region code.
        aggregate: Pooled curve over all recipes (the figure inset).
        distances: Pairwise Eq. 2 distances between cuisine curves.
        mining: Per-cuisine raw mining results (for drill-down).
    """

    level: str
    curves: dict[str, RankFrequencyCurve]
    aggregate: RankFrequencyCurve
    distances: PairwiseDistances
    mining: dict[str, MiningResult]

    @property
    def average_distance(self) -> float:
        """The paper's headline number (0.035 / 0.052)."""
        return self.distances.average()


def _transactions_for(
    dataset: RecipeDataset | ColumnarCorpus,
    region_code: str,
    lexicon: Lexicon,
    level: str,
) -> list[frozenset[int]]:
    if isinstance(dataset, ColumnarCorpus):
        if level == "ingredient":
            return dataset.transactions(region_code)
        if level == "category":
            id_to_category = lexicon.id_to_category_array()
            return [
                frozenset(
                    CATEGORY_INDEX[id_to_category[ingredient_id]]
                    for ingredient_id in transaction
                )
                for transaction in dataset.transactions(region_code)
            ]
        raise AnalysisError(
            f"unknown level {level!r}; use 'ingredient' or 'category'"
        )
    view = dataset.cuisine(region_code)
    if level == "ingredient":
        return ingredient_transactions(view)
    if level == "category":
        return category_transactions(view, lexicon)
    raise AnalysisError(f"unknown level {level!r}; use 'ingredient' or 'category'")


def combination_curve(
    dataset: RecipeDataset | ColumnarCorpus,
    region_code: str,
    lexicon: Lexicon,
    level: str = "ingredient",
    mining: MiningConfig = DEFAULT_MINING,
    curve_cache: CurveCache | None = None,
) -> tuple[RankFrequencyCurve, MiningResult]:
    """Rank-frequency curve of frequent combinations for one cuisine.

    With a ``curve_cache``, the mining result is served from disk when
    the cuisine's transaction content and mining config match a prior
    call, and stored otherwise — the empirical half of the warm
    zero-mining path (DESIGN.md §6).

    A memory-mapped :class:`~repro.storage.columnar.ColumnarCorpus` is
    accepted in place of a dataset.  At the ingredient level this is
    the zero-object fast path: the cache key's transaction fingerprint
    comes straight from the stored CSR planes (identical to the object
    path's, so either path warms the other), and a miss mines the
    stored packed-bit planes without materializing any transactions.
    """
    if (
        isinstance(dataset, ColumnarCorpus)
        and level == "ingredient"
    ):
        key = None
        if curve_cache is not None:
            key = curve_key(
                dataset.transactions_fingerprint_for(region_code), mining,
                level=level, kind="mining",
            )
            cached = curve_cache.get(key)
            if isinstance(cached, MiningResult):
                result = dataclasses.replace(
                    cached, algorithm=mining.algorithm
                )
                return curve_from_mining(result, region_code), result
        # Bit-identical to every registered miner (the §6 equality
        # contract), so the packed path can serve any requested
        # algorithm — restamped like a shared cache entry.
        result = dataclasses.replace(
            dataset.mine(
                region_code, mining.min_support, max_size=mining.max_size
            ),
            algorithm=mining.algorithm,
        )
        if curve_cache is not None and key is not None:
            try:
                curve_cache.put(key, result)
            except RunCacheError:
                pass  # the cache is an optimization; never fail the analysis
        return curve_from_mining(result, region_code), result
    transactions = _transactions_for(dataset, region_code, lexicon, level)
    result = _mine_cached(transactions, mining, level, curve_cache)
    return curve_from_mining(result, region_code), result


def analyze_invariants(
    dataset: RecipeDataset | ColumnarCorpus,
    lexicon: Lexicon,
    level: str = "ingredient",
    mining: MiningConfig = DEFAULT_MINING,
    distance_kind: str = "absolute",
    curve_cache: CurveCache | None = None,
) -> InvariantAnalysis:
    """Full Fig. 3 analysis at one level.

    Args:
        dataset: Multi-cuisine corpus — a :class:`RecipeDataset` or a
            memory-mapped :class:`~repro.storage.columnar.ColumnarCorpus`
            (mined over its stored planes at the ingredient level).
        lexicon: Lexicon (category map for the category level).
        level: ``"ingredient"`` (Fig. 3a) or ``"category"`` (Fig. 3b).
        mining: Mining configuration (paper: min_support=0.05).
        distance_kind: Eq. 2 reading (see :mod:`repro.analysis.mae`).
        curve_cache: Optional mined-curve cache; per-cuisine and pooled
            mining results are reused across invocations when the
            corpus content and mining config are unchanged.

    Returns:
        An :class:`InvariantAnalysis`.
    """
    codes = dataset.region_codes()
    if len(codes) < 2:
        raise AnalysisError(
            "invariance analysis requires at least two cuisines, got "
            f"{len(codes)}"
        )
    curves: dict[str, RankFrequencyCurve] = {}
    results: dict[str, MiningResult] = {}
    for code in codes:
        curve, result = combination_curve(
            dataset, code, lexicon, level=level, mining=mining,
            curve_cache=curve_cache,
        )
        curves[code] = curve
        results[code] = result

    # Aggregate inset: all recipes pooled into one transaction set.
    pooled: list[frozenset[int]] = []
    for code in codes:
        pooled.extend(_transactions_for(dataset, code, lexicon, level))
    pooled_result = _mine_cached(pooled, mining, level, curve_cache)
    aggregate = curve_from_mining(pooled_result, "ALL")

    distances = pairwise_distance_matrix(
        [curves[code] for code in codes], kind=distance_kind
    )
    return InvariantAnalysis(
        level=level,
        curves=curves,
        aggregate=aggregate,
        distances=distances,
        mining=results,
    )
