"""Rank-frequency distributions (Secs. IV, VI).

A rank-frequency curve lists normalized frequencies in descending order:
``curve[r]`` is the relative support of the rank-``r`` most frequent
combination (or ingredient).  The paper normalizes by the cuisine's total
recipe count and compares curves across cuisines (Fig. 3) and between
empirical data and evolution models (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.itemsets import MiningResult
from repro.errors import AnalysisError

__all__ = [
    "RankFrequencyCurve",
    "curve_from_mining",
    "curve_from_counts",
    "average_curves",
]


@dataclass(frozen=True)
class RankFrequencyCurve:
    """A normalized rank-frequency curve.

    Attributes:
        label: Cuisine code, model name, or other series label.
        frequencies: Descending normalized frequencies; index = rank - 1.
    """

    label: str
    frequencies: np.ndarray

    def __post_init__(self) -> None:
        freqs = np.asarray(self.frequencies, dtype=np.float64)
        if freqs.ndim != 1:
            raise AnalysisError("frequencies must be one-dimensional")
        if freqs.size and np.any(np.diff(freqs) > 1e-12):
            raise AnalysisError(
                f"curve {self.label!r} is not in descending rank order"
            )
        object.__setattr__(self, "frequencies", freqs)

    def __len__(self) -> int:
        return int(self.frequencies.size)

    @property
    def max_rank(self) -> int:
        """The lowest (deepest) rank present."""
        return len(self)

    def truncate(self, max_rank: int) -> "RankFrequencyCurve":
        """The curve's first ``max_rank`` ranks."""
        if max_rank < 0:
            raise AnalysisError(f"max_rank must be >= 0, got {max_rank}")
        return RankFrequencyCurve(self.label, self.frequencies[:max_rank])

    def frequency_at(self, rank: int) -> float:
        """Frequency at 1-based ``rank``."""
        if rank < 1 or rank > len(self):
            raise AnalysisError(
                f"rank {rank} out of range [1, {len(self)}] for "
                f"{self.label!r}"
            )
        return float(self.frequencies[rank - 1])

    def as_series(self) -> list[tuple[int, float]]:
        """``(rank, frequency)`` pairs, 1-based ranks."""
        return [
            (rank, float(freq))
            for rank, freq in enumerate(self.frequencies, start=1)
        ]


def curve_from_mining(result: MiningResult, label: str) -> RankFrequencyCurve:
    """Rank-frequency curve of a mining result (Fig. 3/4 series)."""
    return RankFrequencyCurve(label, np.array(result.frequencies()))


def curve_from_counts(
    counts: Iterable[int], n_transactions: int, label: str
) -> RankFrequencyCurve:
    """Curve from raw occurrence counts (e.g. single-ingredient usage)."""
    if n_transactions <= 0:
        raise AnalysisError(f"n_transactions must be > 0, got {n_transactions}")
    values = np.array(sorted(counts, reverse=True), dtype=np.float64)
    return RankFrequencyCurve(label, values / n_transactions)


def average_curves(
    curves: Sequence[RankFrequencyCurve], label: str
) -> RankFrequencyCurve:
    """Rank-aligned mean of several curves.

    Used to aggregate the 100 model runs (Sec. V: "we create 100 such
    sets ... and study the aggregated statistics").  Rank ``r`` of the
    output is the mean frequency at rank ``r`` over the curves that reach
    that rank.
    """
    if not curves:
        raise AnalysisError("cannot average zero curves")
    max_len = max(len(curve) for curve in curves)
    if max_len == 0:
        return RankFrequencyCurve(label, np.array([]))
    totals = np.zeros(max_len)
    coverage = np.zeros(max_len)
    for curve in curves:
        size = len(curve)
        totals[:size] += curve.frequencies
        coverage[:size] += 1
    mean = totals / np.maximum(coverage, 1)
    # Rank-aligned averaging over ragged curves can produce tiny local
    # inversions where coverage drops; restore monotonicity.
    mean = np.minimum.accumulate(mean)
    return RankFrequencyCurve(label, mean)
