"""Pairwise curve distance — the paper's Eq. 2.

Eq. 2 is *named* "Mean Absolute Error" but is *printed* as a mean of
squared differences:

    (1/r) Σ_{i=1..r} (f_i^a − f_i^b)²

with ``r`` the lowest rank present in both cuisines and ``f_i`` the
rank-``i`` normalized frequencies.  We expose both readings:

* ``kind="absolute"`` — mean |f_a − f_b| (the metric's name; default);
* ``kind="squared"`` — the formula exactly as printed.

The ``ablation_metric`` experiment confirms the paper's qualitative
conclusions are invariant to this choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.rank_frequency import RankFrequencyCurve
from repro.errors import MetricError

__all__ = ["curve_distance", "pairwise_distance_matrix", "PairwiseDistances"]

_KINDS = ("absolute", "squared")


def curve_distance(
    a: RankFrequencyCurve,
    b: RankFrequencyCurve,
    kind: str = "absolute",
) -> float:
    """Eq. 2 distance between two rank-frequency curves.

    Curves are compared down to the lowest rank present in both.

    Args:
        a: First curve.
        b: Second curve.
        kind: ``"absolute"`` (mean |Δ|) or ``"squared"`` (mean Δ², the
            formula as printed in the paper).

    Raises:
        MetricError: On an unknown kind or if either curve is empty.
    """
    if kind not in _KINDS:
        raise MetricError(f"unknown distance kind {kind!r}; use one of {_KINDS}")
    r = min(len(a), len(b))
    if r == 0:
        raise MetricError(
            f"cannot compare curves with no common ranks "
            f"({a.label!r} has {len(a)}, {b.label!r} has {len(b)})"
        )
    delta = a.frequencies[:r] - b.frequencies[:r]
    if kind == "absolute":
        return float(np.mean(np.abs(delta)))
    return float(np.mean(delta**2))


@dataclass(frozen=True)
class PairwiseDistances:
    """All-pairs distances between labelled curves.

    Attributes:
        labels: Curve labels in matrix order.
        matrix: Symmetric ``(n, n)`` distance matrix with zero diagonal.
        kind: Distance kind used.
    """

    labels: tuple[str, ...]
    matrix: np.ndarray
    kind: str

    def distance(self, label_a: str, label_b: str) -> float:
        """Distance between two labelled curves."""
        try:
            i = self.labels.index(label_a)
            j = self.labels.index(label_b)
        except ValueError as exc:
            raise MetricError(f"unknown curve label: {exc}") from None
        return float(self.matrix[i, j])

    def average(self) -> float:
        """Mean off-diagonal distance — the paper's "average MAE"."""
        n = len(self.labels)
        if n < 2:
            raise MetricError("need at least two curves for an average")
        upper = self.matrix[np.triu_indices(n, k=1)]
        return float(upper.mean())

    def most_distinct(self, k: int = 3) -> list[tuple[str, float]]:
        """Curves with the highest mean distance to all others.

        The paper observes small-corpus cuisines (CAM, KOR) are the most
        distinct.
        """
        n = len(self.labels)
        if n < 2:
            raise MetricError("need at least two curves")
        means = (self.matrix.sum(axis=1)) / (n - 1)
        order = np.argsort(-means)
        return [(self.labels[int(i)], float(means[int(i)])) for i in order[:k]]


def pairwise_distance_matrix(
    curves: Sequence[RankFrequencyCurve],
    kind: str = "absolute",
) -> PairwiseDistances:
    """All-pairs Eq. 2 distances between curves."""
    if len(curves) < 2:
        raise MetricError("need at least two curves for a pairwise matrix")
    labels = tuple(curve.label for curve in curves)
    if len(set(labels)) != len(labels):
        raise MetricError("curve labels must be unique")
    n = len(curves)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = curve_distance(curves[i], curves[j], kind=kind)
            matrix[i, j] = matrix[j, i] = d
    return PairwiseDistances(labels=labels, matrix=matrix, kind=kind)
