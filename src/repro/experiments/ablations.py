"""Ablation experiments over the design choices DESIGN.md calls out.

* ``ablation_m`` — initial ingredient pool size ``m`` (paper fixes 20);
* ``ablation_M`` — mutation count ``M`` (paper: 4 for CM-R, 6 for
  CM-C/CM-M);
* ``ablation_minsup`` — the 5% support threshold behind "frequent"
  combinations;
* ``ablation_metric`` — Eq. 2 read as mean absolute vs mean squared
  error (the paper's name/formula mismatch).

Each driver returns an :class:`AblationResult` with one row per swept
value so benches can print the sweep directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.invariants import analyze_invariants, combination_curve
from repro.analysis.mae import curve_distance
from repro.analysis.model_eval import evaluate_models
from repro.config import MiningConfig
from repro.experiments.base import ExperimentContext
from repro.models.ensemble import ensemble_curve
from repro.models.params import CuisineSpec, ModelParams
from repro.models.registry import PAPER_MODELS, create_model
from repro.runtime import execute_sweep, plan_grid
from repro.viz.ascii import render_table

__all__ = [
    "AblationResult",
    "run_ablation_m",
    "run_ablation_mutations",
    "run_ablation_minsup",
    "run_ablation_metric",
    "run_ablation_null_sampling",
]

#: Default cuisine subset for model ablations: one large, one medium,
#: one small corpus — enough spread to see scale effects cheaply.
_DEFAULT_REGIONS = ("ITA", "GRC", "KOR")


@dataclass(frozen=True)
class AblationResult:
    """A parameter sweep summary.

    Attributes:
        name: Ablation identifier.
        parameter: Swept parameter name.
        headers: Column names (first column is the parameter value).
        rows: One row per swept value.
    """

    name: str
    parameter: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def render(self) -> str:
        return render_table(
            self.headers, self.rows, title=f"Ablation: {self.name}"
        )

    def to_payload(self) -> dict:
        return {
            "experiment": self.name,
            "parameter": self.parameter,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }

    def column(self, header: str) -> list[object]:
        """Values of one column across the sweep."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _spec_for(context: ExperimentContext, code: str) -> CuisineSpec:
    return CuisineSpec.from_view(
        context.dataset.cuisine(code), context.lexicon
    )


def _mean_model_distance(
    context: ExperimentContext,
    model_name: str,
    params: ModelParams,
    region_codes: tuple[str, ...],
    mining: MiningConfig | None = None,
) -> float:
    """Mean Eq. 2 distance of one configured model across cuisines.

    The per-cuisine ensembles execute as one sharded sweep, planned in
    cuisine order so the seed draws replay the serial per-cell path.
    """
    mining = mining if mining is not None else context.mining
    plan = plan_grid(
        [create_model(model_name, params=params, engine=context.engine)],
        [_spec_for(context, code) for code in region_codes],
        n_runs=context.ensemble_runs,
        seed=context.seed,
    )
    sweep = execute_sweep(plan, runtime=context.runtime)
    curve_cache = context.curve_cache()
    distances = []
    for code in region_codes:
        empirical, _mining_result = combination_curve(
            context.dataset, code, context.lexicon, mining=mining,
            curve_cache=curve_cache,
        )
        curve = ensemble_curve(
            sweep.runs_for(model_name, code), model_name, mining=mining,
            runtime=context.runtime, curve_cache=curve_cache,
        )
        distances.append(curve_distance(empirical, curve))
    return float(np.mean(distances))


def run_ablation_m(
    context: ExperimentContext,
    values: tuple[int, ...] = (5, 10, 20, 40, 80),
    model_name: str = "CM-R",
    region_codes: tuple[str, ...] = _DEFAULT_REGIONS,
) -> AblationResult:
    """Sweep the initial pool size ``m`` for one model."""
    base = create_model(model_name).params
    rows = []
    for m in values:
        params = replace(base, initial_pool_size=m)
        distance = _mean_model_distance(
            context, model_name, params, region_codes
        )
        rows.append((m, model_name, f"{distance:.4f}"))
    return AblationResult(
        name="ablation_m",
        parameter="initial_pool_size",
        headers=("m", "model", "mean_distance"),
        rows=tuple(rows),
    )


def run_ablation_mutations(
    context: ExperimentContext,
    values: tuple[int, ...] = (1, 2, 4, 6, 8, 12),
    model_names: tuple[str, ...] = ("CM-R", "CM-C"),
    region_codes: tuple[str, ...] = _DEFAULT_REGIONS,
) -> AblationResult:
    """Sweep the mutation count ``M`` for the CM variants."""
    rows = []
    for mutations in values:
        row: list[object] = [mutations]
        for name in model_names:
            params = create_model(name).params.with_mutations(mutations)
            distance = _mean_model_distance(context, name, params, region_codes)
            row.append(f"{distance:.4f}")
        rows.append(tuple(row))
    return AblationResult(
        name="ablation_M",
        parameter="mutations",
        headers=("M", *model_names),
        rows=tuple(rows),
    )


def run_ablation_minsup(
    context: ExperimentContext,
    values: tuple[float, ...] = (0.02, 0.05, 0.08, 0.12),
) -> AblationResult:
    """Sweep the support threshold defining "frequent" combinations."""
    curve_cache = context.curve_cache()
    rows = []
    for min_support in values:
        mining = MiningConfig(
            min_support=min_support,
            max_size=context.mining.max_size,
            algorithm=context.mining.algorithm,
        )
        analysis = analyze_invariants(
            context.dataset, context.lexicon, level="ingredient",
            mining=mining, curve_cache=curve_cache,
        )
        mean_len = float(
            np.mean([len(curve) for curve in analysis.curves.values()])
        )
        rows.append(
            (
                min_support,
                f"{analysis.average_distance:.4f}",
                f"{mean_len:.1f}",
            )
        )
    return AblationResult(
        name="ablation_minsup",
        parameter="min_support",
        headers=("min_support", "avg_pairwise_distance", "mean_curve_len"),
        rows=tuple(rows),
    )


def run_ablation_null_sampling(
    context: ExperimentContext,
    region_codes: tuple[str, ...] = _DEFAULT_REGIONS,
) -> AblationResult:
    """Resolve the NM sampling-universe ambiguity empirically.

    Sec. V's text says null recipes sample "from the ingredient pool
    (I)" — symbolically the *full* list, verbally the growing pool.  We
    run both readings; the paper's conclusion (NM fails) must hold under
    either for the reproduction to be robust.
    """
    from repro.models.null_model import NullModel

    # Two of the three grid columns share the registry name "NM", so the
    # merged cells are addressed positionally: cuisine-major plan order
    # puts cuisine i's columns at cells[3 * i + column].
    models = [
        create_model("CM-R", engine=context.engine),
        NullModel(sample_from="pool", engine=context.engine),
        NullModel(sample_from="universe", engine=context.engine),
    ]
    plan = plan_grid(
        models,
        [_spec_for(context, code) for code in region_codes],
        n_runs=context.ensemble_runs,
        seed=context.seed,
    )
    sweep = execute_sweep(plan, runtime=context.runtime)
    curve_cache = context.curve_cache()
    rows = []
    for cuisine_index, code in enumerate(region_codes):
        empirical, _mining_result = combination_curve(
            context.dataset, code, context.lexicon, mining=context.mining,
            curve_cache=curve_cache,
        )
        row: list[object] = [code]
        for column, model in enumerate(models):
            cell = sweep.cells[len(models) * cuisine_index + column]
            curve = ensemble_curve(
                cell.runs, model.name, mining=context.mining,
                runtime=context.runtime, curve_cache=curve_cache,
            )
            row.append(f"{curve_distance(empirical, curve):.4f}")
        rows.append(tuple(row))
    return AblationResult(
        name="ablation_null_sampling",
        parameter="sample_from",
        headers=("region", "CM-R", "NM(pool)", "NM(universe)"),
        rows=tuple(rows),
    )


def run_ablation_metric(
    context: ExperimentContext,
    region_codes: tuple[str, ...] = _DEFAULT_REGIONS,
) -> AblationResult:
    """Compare Eq. 2 readings: name ("absolute") vs formula ("squared").

    Reports, per cuisine, the best model under each reading and the
    NM-vs-best-CM separation — the paper's conclusions should be
    invariant (NM always loses; best model unchanged or tied).
    """
    plan = plan_grid(
        [create_model(name, engine=context.engine) for name in PAPER_MODELS],
        [_spec_for(context, code) for code in region_codes],
        n_runs=context.ensemble_runs,
        seed=context.seed,
    )
    sweep = execute_sweep(plan, runtime=context.runtime)
    curve_cache = context.curve_cache()
    rows = []
    for code in region_codes:
        empirical, _mining_result = combination_curve(
            context.dataset, code, context.lexicon, mining=context.mining,
            curve_cache=curve_cache,
        )
        model_curves = {
            name: ensemble_curve(
                sweep.runs_for(name, code), name, mining=context.mining,
                runtime=context.runtime, curve_cache=curve_cache,
            )
            for name in PAPER_MODELS
        }
        by_kind = {}
        for kind in ("absolute", "squared"):
            evaluation = evaluate_models(
                code, empirical, model_curves, distance_kind=kind
            )
            nm = evaluation.distances["NM"]
            best_cm = min(
                value for name, value in evaluation.distances.items()
                if name != "NM"
            )
            by_kind[kind] = (evaluation.best_model, nm / max(best_cm, 1e-12))
        rows.append(
            (
                code,
                by_kind["absolute"][0],
                f"{by_kind['absolute'][1]:.1f}x",
                by_kind["squared"][0],
                f"{by_kind['squared'][1]:.1f}x",
            )
        )
    return AblationResult(
        name="ablation_metric",
        parameter="distance_kind",
        headers=(
            "region", "best(absolute)", "NM/CM(absolute)",
            "best(squared)", "NM/CM(squared)",
        ),
        rows=tuple(rows),
    )
