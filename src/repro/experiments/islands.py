"""Experiment ``islands``: the paper's invariants across migration regimes.

Sec. VII names horizontal (cross-region) transmission as the open
modeling frontier.  This experiment co-evolves a neighbourhood of
cuisines under the island engine (DESIGN.md §10) across several
migration topologies — isolated, ring, star, full mesh — and measures
how migration deforms the paper's invariants:

* **rank-frequency / combination curves** — mean pairwise curve
  distance between islands (migration should pull cuisines together)
  and each regime's mean curve distance to the isolated baseline;
* **vocabulary growth** — mean Heaps exponent of the evolved recipe
  pools (sub-linear growth must survive migration);
* **borrowing volume** — total borrowed recipe steps per regime.

Every regime runs the *same* master seeds (paired comparison), so the
isolated regime is bit-identical to what each island would have done
alone and all differences are attributable to migration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.mae import curve_distance
from repro.analysis.rank_frequency import RankFrequencyCurve
from repro.analysis.vocabulary_growth import fit_heaps, growth_from_sets
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentContext
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.ensemble import ensemble_curves
from repro.models.islands import (
    IslandSimulation,
    MigrationTopology,
    run_island_ensemble,
)
from repro.models.params import CuisineSpec
from repro.viz.ascii import render_table
from repro.viz.export import write_csv

__all__ = ["IslandsRegime", "IslandsResult", "run_islands"]

#: Per-edge migration rate shared by the default regimes.  Kept modest
#: so inbound sums stay well below 1 even on the full mesh.
DEFAULT_EDGE_RATE = 0.1

#: How many cuisines the default neighbourhood holds.
DEFAULT_N_ISLANDS = 3


@dataclass(frozen=True)
class IslandsRegime:
    """Measured invariants for one migration regime.

    Attributes:
        name: Regime label (``isolated``/``ring``/``star``/``mesh``).
        borrow_events: Total borrowed recipe steps across islands and
            ensemble runs.
        pairwise_distance: Mean pairwise distance between the islands'
            ensemble-averaged combination curves.
        distance_to_isolated: Mean per-island curve distance to the
            isolated regime (0 for the isolated row itself).
        heaps_beta: Mean Heaps exponent of the evolved pools (first run
            per island); sub-linear growth keeps it < 1.
    """

    name: str
    borrow_events: int
    pairwise_distance: float
    distance_to_isolated: float
    heaps_beta: float


@dataclass(frozen=True)
class IslandsResult:
    """Migration-regime comparison over one cuisine neighbourhood."""

    codes: tuple[str, ...]
    n_runs: int
    scale: float
    regimes: tuple[IslandsRegime, ...]

    def render(self) -> str:
        rows = [
            (
                regime.name,
                regime.borrow_events,
                f"{regime.pairwise_distance:.4f}",
                f"{regime.distance_to_isolated:.4f}",
                f"{regime.heaps_beta:.3f}",
            )
            for regime in self.regimes
        ]
        return render_table(
            ("Regime", "Borrows", "Pairwise dist", "Dist to isolated",
             "Heaps beta"),
            rows,
            title=(
                f"Island migration regimes over {', '.join(self.codes)} "
                f"(scale={self.scale}, {self.n_runs} runs; DESIGN.md §10) — "
                "more migration should pull the islands' curves together"
            ),
        )

    def to_payload(self) -> dict:
        return {
            "experiment": "islands",
            "codes": list(self.codes),
            "n_runs": self.n_runs,
            "scale": self.scale,
            "regimes": [
                {
                    "name": regime.name,
                    "borrow_events": regime.borrow_events,
                    "pairwise_distance": regime.pairwise_distance,
                    "distance_to_isolated": regime.distance_to_isolated,
                    "heaps_beta": regime.heaps_beta,
                }
                for regime in self.regimes
            ],
        }


def _default_regimes(
    codes: tuple[str, ...], rate: float
) -> tuple[tuple[str, MigrationTopology], ...]:
    return (
        ("isolated", MigrationTopology.isolated()),
        ("ring", MigrationTopology.ring(codes, rate)),
        ("star", MigrationTopology.star(codes[0], codes[1:], rate)),
        ("mesh", MigrationTopology.full_mesh(codes, rate)),
    )


def _mean_pairwise(curves: list[RankFrequencyCurve]) -> float:
    total, pairs = 0.0, 0
    for i in range(len(curves)):
        for j in range(i + 1, len(curves)):
            total += curve_distance(curves[i], curves[j])
            pairs += 1
    return total / pairs if pairs else 0.0


def run_islands(
    context: ExperimentContext,
    region_codes: tuple[str, ...] | None = None,
    edge_rate: float = DEFAULT_EDGE_RATE,
) -> IslandsResult:
    """Compare migration regimes over a neighbourhood of cuisines.

    Args:
        context: Shared corpus/runtime inputs; ``ensemble_runs``
            archipelago executions run per regime, dispatched through
            ``context.runtime`` and cached per island.
        region_codes: The neighbourhood (default: the corpus's first
            :data:`DEFAULT_N_ISLANDS` regions, sorted).
        edge_rate: Per-edge migration rate for the non-isolated
            regimes.
    """
    codes = (
        tuple(region_codes)
        if region_codes is not None
        else context.dataset.region_codes()[:DEFAULT_N_ISLANDS]
    )
    if len(codes) < 2:
        raise ExperimentError(
            f"islands experiment needs at least two cuisines, got {codes}"
        )
    specs = [
        CuisineSpec.from_view(context.dataset.cuisine(code), context.lexicon)
        for code in codes
    ]
    model = CopyMutateRandom()
    curve_cache = context.curve_cache()

    per_regime_curves: dict[str, list[RankFrequencyCurve]] = {}
    rows: list[IslandsRegime] = []
    regimes = _default_regimes(codes, edge_rate)
    for name, topology in regimes:
        simulation = IslandSimulation(model, specs, topology)
        ensemble = run_island_ensemble(
            simulation,
            context.ensemble_runs,
            seed=context.seed,
            runtime=context.runtime,
        )
        curves = ensemble_curves(
            [(ensemble.runs[code], f"{name}:{code}") for code in codes],
            mining=context.mining,
            runtime=context.runtime,
            curve_cache=curve_cache,
        )
        per_regime_curves[name] = curves
        betas = [
            fit_heaps(growth_from_sets(ensemble.runs[code][0].transactions)).beta
            for code in codes
        ]
        rows.append(
            IslandsRegime(
                name=name,
                borrow_events=sum(
                    run.trace.recipes_borrowed
                    for code in codes
                    for run in ensemble.runs[code]
                ),
                pairwise_distance=_mean_pairwise(curves),
                distance_to_isolated=0.0,  # filled below
                heaps_beta=sum(betas) / len(betas),
            )
        )

    isolated_curves = per_regime_curves[regimes[0][0]]
    rows = [
        IslandsRegime(
            name=row.name,
            borrow_events=row.borrow_events,
            pairwise_distance=row.pairwise_distance,
            distance_to_isolated=(
                sum(
                    curve_distance(curve, isolated)
                    for curve, isolated in zip(
                        per_regime_curves[row.name], isolated_curves
                    )
                )
                / len(codes)
            ),
            heaps_beta=row.heaps_beta,
        )
        for row in rows
    ]

    result = IslandsResult(
        codes=codes,
        n_runs=context.ensemble_runs,
        scale=context.scale,
        regimes=tuple(rows),
    )
    path = context.artifact_path("islands.csv")
    if path is not None:
        write_csv(
            path,
            ("regime", "borrow_events", "pairwise_distance",
             "distance_to_isolated", "heaps_beta"),
            [
                (
                    regime.name,
                    regime.borrow_events,
                    f"{regime.pairwise_distance:.6f}",
                    f"{regime.distance_to_isolated:.6f}",
                    f"{regime.heaps_beta:.6f}",
                )
                for regime in result.regimes
            ],
        )
    return result
