"""Experiment ``table1``: regenerate Table I.

Per cuisine: recipe count, unique-ingredient count, and the top five
overrepresented ingredients (Eq. 1), side by side with the paper's
published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.overrepresentation import top_overrepresented
from repro.corpus.regions import get_region
from repro.experiments.base import ExperimentContext
from repro.runtime import parallel_map, select_regions
from repro.viz.ascii import render_table
from repro.viz.export import write_csv

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One cuisine's Table I row, measured vs published.

    Attributes:
        region_code: Cuisine.
        n_recipes: Measured recipe count.
        paper_recipes: Published recipe count (unscaled).
        n_ingredients: Measured unique ingredients.
        paper_ingredients: Published unique ingredients.
        top5: Measured top-5 overrepresented ingredient names.
        paper_top5: Published top-5 (or six, for INSC) names.
        overlap: |measured ∩ published| for the top-5 sets.
    """

    region_code: str
    n_recipes: int
    paper_recipes: int
    n_ingredients: int
    paper_ingredients: int
    top5: tuple[str, ...]
    paper_top5: tuple[str, ...]
    overlap: int


@dataclass(frozen=True)
class Table1Result:
    """Regenerated Table I."""

    rows: tuple[Table1Row, ...]
    scale: float

    def mean_top5_overlap(self) -> float:
        """Average overlap between measured and published top-5 sets."""
        return sum(row.overlap for row in self.rows) / len(self.rows)

    def render(self) -> str:
        table_rows = [
            (
                row.region_code,
                row.n_recipes,
                row.paper_recipes,
                row.n_ingredients,
                row.paper_ingredients,
                ", ".join(row.top5),
                f"{row.overlap}/5",
            )
            for row in self.rows
        ]
        return render_table(
            (
                "Region", "Recipes", "Paper", "Ingredients", "Paper",
                "Top-5 overrepresented (measured)", "Overlap",
            ),
            table_rows,
            title=(
                f"Table I reproduction (scale={self.scale}); mean top-5 "
                f"overlap {self.mean_top5_overlap():.2f}/5"
            ),
        )

    def to_payload(self) -> dict:
        return {
            "experiment": "table1",
            "scale": self.scale,
            "mean_top5_overlap": self.mean_top5_overlap(),
            "rows": [
                {
                    "region": row.region_code,
                    "recipes": row.n_recipes,
                    "paper_recipes": row.paper_recipes,
                    "ingredients": row.n_ingredients,
                    "paper_ingredients": row.paper_ingredients,
                    "top5": list(row.top5),
                    "paper_top5": list(row.paper_top5),
                    "overlap": row.overlap,
                }
                for row in self.rows
            ],
        }


def run_table1(
    context: ExperimentContext,
    k: int = 5,
    region_codes: tuple[str, ...] | None = None,
) -> Table1Result:
    """Regenerate Table I from the context's corpus.

    The cuisine grid is resolved through the sweep API
    (:func:`repro.runtime.select_regions`) — same selection and
    validation semantics as the model-grid experiments — and the rows
    fan out across the context's runtime backend.
    """

    def row_for(code: str) -> Table1Row:
        region = get_region(code)
        view = context.dataset.cuisine(code)
        top = top_overrepresented(context.dataset, code, context.lexicon, k=k)
        names = tuple(entry.name for entry in top)
        return Table1Row(
            region_code=code,
            n_recipes=view.n_recipes,
            paper_recipes=region.n_recipes,
            n_ingredients=view.n_ingredients,
            paper_ingredients=region.n_ingredients,
            top5=names,
            paper_top5=region.overrepresented,
            overlap=len(set(names) & set(region.overrepresented)),
        )

    codes = select_regions(context.dataset.region_codes(), region_codes)
    # The row closure is shared-memory analysis over the context —
    # declared thread-bound so a process runtime does not warn.
    rows = parallel_map(
        row_for, codes, runtime=context.runtime, prefer_thread=True
    )
    result = Table1Result(rows=tuple(rows), scale=context.scale)
    path = context.artifact_path("table1.csv")
    if path is not None:
        write_csv(
            path,
            ("region", "recipes", "paper_recipes", "ingredients",
             "paper_ingredients", "top5", "paper_top5", "overlap"),
            [
                (row.region_code, row.n_recipes, row.paper_recipes,
                 row.n_ingredients, row.paper_ingredients,
                 ";".join(row.top5), ";".join(row.paper_top5), row.overlap)
                for row in result.rows
            ],
        )
    return result
