"""Experiment ``fig2``: category-usage boxplots.

Fig. 2 shows, per category, boxplots across cuisines of the average
ingredients-per-recipe drawn from that category.  The paper's narrative
checks encoded here: the seven dominant categories (Vegetable, Additive,
Spice, Dairy, Herb, Plant, Fruit) lead; INSC/AFR are spice-heavy while
JPN/ANZ/IRL are not; SCND/FRA/IRL are dairy-heavy while JPN/SEA/THA/KOR
are not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.category_usage import (
    BoxplotStats,
    category_boxplots,
    category_usage_matrix,
    dominant_categories,
)
from repro.lexicon.categories import CATEGORY_INFO, Category
from repro.experiments.base import ExperimentContext
from repro.viz.ascii import render_boxplots, render_table
from repro.viz.export import write_csv

__all__ = ["Fig2Result", "run_fig2"]

_SPICE_HEAVY = ("INSC", "AFR")
_SPICE_LIGHT = ("JPN", "ANZ", "IRL")
_DAIRY_HEAVY = ("SCND", "FRA", "IRL")
_DAIRY_LIGHT = ("JPN", "SEA", "THA", "KOR")


@dataclass(frozen=True)
class Fig2Result:
    """Regenerated Fig. 2."""

    boxplots: dict[Category, BoxplotStats]
    usage: dict[str, dict[Category, float]]
    dominant: tuple[Category, ...]
    scale: float

    def _mean_usage(self, codes: tuple[str, ...], category: Category) -> float:
        present = [code for code in codes if code in self.usage]
        if not present:
            return 0.0
        return sum(self.usage[code][category] for code in present) / len(present)

    def spice_contrast(self) -> tuple[float, float]:
        """(INSC/AFR mean, JPN/ANZ/IRL mean) spice usage."""
        return (
            self._mean_usage(_SPICE_HEAVY, Category.SPICE),
            self._mean_usage(_SPICE_LIGHT, Category.SPICE),
        )

    def dairy_contrast(self) -> tuple[float, float]:
        """(SCND/FRA/IRL mean, JPN/SEA/THA/KOR mean) dairy usage."""
        return (
            self._mean_usage(_DAIRY_HEAVY, Category.DAIRY),
            self._mean_usage(_DAIRY_LIGHT, Category.DAIRY),
        )

    def render(self) -> str:
        ordered = sorted(
            self.boxplots.values(),
            key=lambda stats: CATEGORY_INFO[stats.category].display_order,
        )
        box_data = {
            stats.category.value: (
                stats.whisker_low, stats.q1, stats.median, stats.q3,
                stats.whisker_high,
            )
            for stats in ordered
        }
        plot = render_boxplots(
            box_data,
            title=(
                f"Fig. 2 reproduction (scale={self.scale}): avg ingredients "
                "per recipe by category, boxplot across cuisines"
            ),
        )
        spice_heavy, spice_light = self.spice_contrast()
        dairy_heavy, dairy_light = self.dairy_contrast()
        narrative = render_table(
            ("Check", "Heavy group", "Light group", "Holds"),
            [
                ("Spice: INSC/AFR vs JPN/ANZ/IRL",
                 f"{spice_heavy:.2f}", f"{spice_light:.2f}",
                 spice_heavy > spice_light),
                ("Dairy: SCND/FRA/IRL vs JPN/SEA/THA/KOR",
                 f"{dairy_heavy:.2f}", f"{dairy_light:.2f}",
                 dairy_heavy > dairy_light),
            ],
            title="Paper narrative checks",
        )
        dominant = ", ".join(category.value for category in self.dominant)
        return f"{plot}\n\nDominant categories: {dominant}\n\n{narrative}"

    def to_payload(self) -> dict:
        spice_heavy, spice_light = self.spice_contrast()
        dairy_heavy, dairy_light = self.dairy_contrast()
        return {
            "experiment": "fig2",
            "scale": self.scale,
            "dominant": [category.value for category in self.dominant],
            "spice_contrast": [spice_heavy, spice_light],
            "dairy_contrast": [dairy_heavy, dairy_light],
            "medians": {
                stats.category.value: stats.median
                for stats in self.boxplots.values()
            },
        }


def run_fig2(context: ExperimentContext, k_dominant: int = 7) -> Fig2Result:
    """Regenerate Fig. 2 from the context's corpus."""
    usage = category_usage_matrix(context.dataset, context.lexicon)
    boxplots = category_boxplots(context.dataset, context.lexicon)
    dominant = tuple(
        dominant_categories(context.dataset, context.lexicon, k=k_dominant)
    )
    result = Fig2Result(
        boxplots=boxplots, usage=usage, dominant=dominant, scale=context.scale
    )
    path = context.artifact_path("fig2.csv")
    if path is not None:
        rows = [
            (code, category.value, f"{value:.6f}")
            for code, row in sorted(usage.items())
            for category, value in row.items()
        ]
        write_csv(path, ("region", "category", "mean_per_recipe"), rows)
    return result
