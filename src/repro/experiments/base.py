"""Experiment framework.

An *experiment* regenerates one paper artifact (a table or figure) from a
calibrated synthetic corpus.  :class:`ExperimentContext` bundles the
shared inputs — lexicon, corpus, mining configuration, ensemble sizing —
so every experiment driver is a pure function
``run_<id>(context) -> <Result>``; result objects know how to render
themselves as text and to export their underlying series.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Protocol

from repro.config import DEFAULT_MINING, MiningConfig
from repro.corpus.dataset import RecipeDataset
from repro.errors import ExperimentError
from repro.lexicon.builder import standard_lexicon
from repro.lexicon.lexicon import Lexicon
from repro.rng import DEFAULT_SEED
from repro.runtime import CurveCache, RuntimeConfig
from repro.synthesis.worldgen import WorldKitchen

__all__ = ["ExperimentContext", "ExperimentResultProtocol"]


class ExperimentResultProtocol(Protocol):
    """What every experiment result can do."""

    def render(self) -> str:
        """Human-readable report (tables/plots as text)."""
        ...  # pragma: no cover - protocol

    def to_payload(self) -> dict:
        """JSON-serializable summary of the result."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ExperimentContext:
    """Shared inputs for experiment drivers.

    Attributes:
        lexicon: The standardized ingredient lexicon.
        dataset: The (synthetic) empirical corpus.
        scale: Scale the corpus was generated at (1.0 = full Table I
            counts).
        seed: Root seed for any model runs inside experiments.
        mining: Frequent-combination mining configuration (paper: 0.05).
        ensemble_runs: Model runs aggregated per (model, cuisine) —
            the paper uses 100; interactive contexts default lower.
        artifacts_dir: Where results write CSV/JSON artifacts (``None``
            disables writing).
        runtime: Execution backend/jobs/cache for model ensembles and
            per-cuisine fan-out (:mod:`repro.runtime`); the default is
            serial with no cache, and results are backend-independent
            for a fixed ``seed``.
        engine: Simulation engine for every model the experiments
            instantiate (``"reference"``/``"vectorized"``/
            ``"batched"``); ``None`` keeps each model's default
            (vectorized).  ``"batched"`` executes each ensemble's
            uncached runs as one stacked pass, bit-identical to
            vectorized (CM-V degrades to vectorized; DESIGN.md §7).
            Part of the run cache key, so switching engines never
            replays another engine's cached runs.
    """

    lexicon: Lexicon
    dataset: RecipeDataset
    scale: float
    seed: int = DEFAULT_SEED
    mining: MiningConfig = DEFAULT_MINING
    ensemble_runs: int = 10
    artifacts_dir: Path | None = None
    runtime: RuntimeConfig = RuntimeConfig()
    engine: str | None = None

    @classmethod
    def create(
        cls,
        scale: float = 0.1,
        seed: int = DEFAULT_SEED,
        region_codes: tuple[str, ...] | None = None,
        mining: MiningConfig = DEFAULT_MINING,
        ensemble_runs: int = 10,
        artifacts_dir: str | Path | None = None,
        lexicon: Lexicon | None = None,
        runtime: RuntimeConfig | None = None,
        engine: str | None = None,
        corpus_path: str | Path | None = None,
    ) -> "ExperimentContext":
        """Build a context with a freshly generated corpus.

        Args:
            scale: Corpus scale (1.0 reproduces full Table I counts).
            seed: Root seed (corpus and model runs derive from it).
            region_codes: Regions to include (default all 25).
            mining: Mining configuration.
            ensemble_runs: Runs per model ensemble.
            artifacts_dir: Optional artifact output directory.
            lexicon: Override lexicon (default: the standard 721-entity
                one).
            runtime: Execution runtime configuration (default serial).
            engine: Simulation engine for model runs —
                ``"reference"``, ``"vectorized"`` or ``"batched"``
                (default: each model's own, i.e. vectorized).
            corpus_path: Open a packed columnar corpus (DESIGN.md §11)
                instead of generating one; ``scale``/``seed``/
                ``region_codes`` then do not shape the corpus (seed
                still drives model runs).  The experiments' model
                calibration needs object views, so the corpus is
                materialized here — packing wins by making worldgen a
                one-time cost, not by keeping experiments zero-copy.
        """
        if scale <= 0:
            raise ExperimentError(f"scale must be > 0, got {scale}")
        if ensemble_runs < 1:
            raise ExperimentError(
                f"ensemble_runs must be >= 1, got {ensemble_runs}"
            )
        lex = lexicon if lexicon is not None else standard_lexicon()
        if corpus_path is not None:
            from repro.storage.columnar import ColumnarCorpus

            with ColumnarCorpus.open(corpus_path) as corpus:
                dataset = corpus.to_dataset()
            if region_codes is not None:
                dataset = dataset.subset(region_codes)
        else:
            kitchen = WorldKitchen(lex, seed=seed)
            dataset = kitchen.generate_dataset(
                region_codes=region_codes, scale=scale
            )
        return cls(
            lexicon=lex,
            dataset=dataset,
            scale=scale,
            seed=seed,
            mining=mining,
            ensemble_runs=ensemble_runs,
            artifacts_dir=Path(artifacts_dir) if artifacts_dir else None,
            runtime=runtime if runtime is not None else RuntimeConfig(),
            engine=engine,
        )

    def with_dataset(self, dataset: RecipeDataset) -> "ExperimentContext":
        """Copy of this context over a different corpus."""
        return replace(self, dataset=dataset)

    def with_runtime(self, runtime: RuntimeConfig) -> "ExperimentContext":
        """Copy of this context executing through a different runtime."""
        return replace(self, runtime=runtime)

    def curve_cache(self) -> CurveCache | None:
        """The mined-curve cache this context's runtime implies.

        ``None`` without a ``runtime.cache_dir``.  One instance per call
        so drivers can read its hit/miss stats for exactly their own
        lookups; every instance shares the same on-disk store.
        """
        if self.runtime.cache_dir is None:
            return None
        return CurveCache(self.runtime.cache_dir)

    def artifact_path(self, name: str) -> Path | None:
        """Path for an artifact file, or ``None`` if writing is disabled."""
        if self.artifacts_dir is None:
            return None
        return self.artifacts_dir / name
