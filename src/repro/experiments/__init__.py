"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.ablations import (
    AblationResult,
    run_ablation_m,
    run_ablation_metric,
    run_ablation_minsup,
    run_ablation_mutations,
)
from repro.experiments.base import ExperimentContext
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.registry import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
)
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "AblationResult",
    "run_ablation_m",
    "run_ablation_metric",
    "run_ablation_minsup",
    "run_ablation_mutations",
    "ExperimentContext",
    "Fig1Result",
    "run_fig1",
    "Fig2Result",
    "run_fig2",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
    "Table1Result",
    "run_table1",
]
