"""Experiment ``non_equilibrium``: Heaps-law growth with and without migration.

The copy-mutate lineage (Kinouchi et al. [7], the paper's Sec. V basis)
frames cuisines as *non-equilibrium* systems: the ingredient vocabulary
never saturates but grows sub-linearly with the recipe count,
``V(n) ≈ K · n^beta`` with ``beta < 1``.  This experiment measures that
exponent three ways for one focal cuisine —

1. the empirical (generated) cuisine's vocabulary growth curve;
2. an isolated Algorithm 1 run, whose ∂-vs-φ alternation *enforces*
   proportional pool growth (the recorded (m, n) trajectory is reported
   against the cuisine's φ);
3. the same cuisine co-evolved on a full-mesh archipelago
   (DESIGN.md §10) — borrowing must not break sub-linear growth,
   because foreign mothers are routed through the same pool accounting
   as native ∂-steps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.vocabulary_growth import (
    fit_heaps,
    growth_from_sets,
    vocabulary_growth_curve,
)
from repro.experiments.base import ExperimentContext
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.islands import IslandSimulation, MigrationTopology
from repro.models.params import CuisineSpec
from repro.rng import rng_from_seed
from repro.viz.ascii import render_table
from repro.viz.export import write_csv

__all__ = ["GrowthFit", "NonEquilibriumResult", "run_non_equilibrium"]

#: Global exchange budget for the migration variant, split across the
#: full mesh's inbound edges.
MIGRATION_RATE = 0.2


@dataclass(frozen=True)
class GrowthFit:
    """One measured vocabulary-growth curve.

    Attributes:
        source: Which curve this is (``empirical`` / ``isolated model``
            / ``migration model``).
        beta: Heaps exponent (< 1 means sub-linear, non-equilibrium
            growth).
        r_squared: Goodness of the log-log power-law fit.
        n_recipes: Length of the growth curve.
    """

    source: str
    beta: float
    r_squared: float
    n_recipes: int


@dataclass(frozen=True)
class NonEquilibriumResult:
    """Heaps-law comparison for one focal cuisine.

    Attributes:
        region_code: The focal cuisine.
        neighbour_codes: Cuisines on the migration variant's mesh.
        fits: Empirical / isolated / migration growth fits.
        pool_ratio_start: Initial m/n of the isolated run's trajectory.
        pool_ratio_end: Final m/n — Algorithm 1 locks this onto φ.
        phi: The cuisine's empirical pool ratio.
        borrow_events: Borrowed steps by the focal island on the mesh.
    """

    region_code: str
    neighbour_codes: tuple[str, ...]
    fits: tuple[GrowthFit, ...]
    pool_ratio_start: float
    pool_ratio_end: float
    phi: float
    borrow_events: int

    def render(self) -> str:
        table = render_table(
            ("Curve", "Heaps beta", "R^2", "Recipes"),
            [
                (fit.source, f"{fit.beta:.3f}", f"{fit.r_squared:.3f}",
                 fit.n_recipes)
                for fit in self.fits
            ],
            title=(
                f"Sub-linear vocabulary growth in {self.region_code} "
                "(beta < 1 = non-equilibrium growth)"
            ),
        )
        mesh = ", ".join(self.neighbour_codes) or "none"
        return (
            f"{table}\n\n"
            f"Algorithm 1 pool ratio m/n: starts at "
            f"{self.pool_ratio_start:.3f}, ends at "
            f"{self.pool_ratio_end:.3f} (cuisine phi = {self.phi:.3f}) — "
            "the ∂-vs-φ rule locks the pool onto proportional growth.\n"
            f"Migration variant: full mesh with {mesh} "
            f"({self.borrow_events} steps borrowed by {self.region_code}; "
            "DESIGN.md §10) keeps growth sub-linear."
        )

    def to_payload(self) -> dict:
        return {
            "experiment": "non_equilibrium",
            "region_code": self.region_code,
            "neighbour_codes": list(self.neighbour_codes),
            "fits": [
                {
                    "source": fit.source,
                    "beta": fit.beta,
                    "r_squared": fit.r_squared,
                    "n_recipes": fit.n_recipes,
                }
                for fit in self.fits
            ],
            "pool_ratio_start": self.pool_ratio_start,
            "pool_ratio_end": self.pool_ratio_end,
            "phi": self.phi,
            "borrow_events": self.borrow_events,
        }


def run_non_equilibrium(
    context: ExperimentContext,
    region_code: str | None = None,
) -> NonEquilibriumResult:
    """Measure Heaps-law growth empirically, in isolation, and on a mesh.

    Args:
        context: Shared corpus/runtime inputs; the single-run curves
            all derive from ``context.seed``.
        region_code: Focal cuisine (default: the corpus's first
            region).  Up to two further regions become mesh neighbours.
    """
    codes = context.dataset.region_codes()
    focal = region_code if region_code is not None else codes[0]
    view = context.dataset.cuisine(focal)
    spec = CuisineSpec.from_view(view, context.lexicon)
    model = CopyMutateRandom()

    empirical_growth = vocabulary_growth_curve(view)
    empirical_fit = fit_heaps(empirical_growth)

    run = model.run(spec, seed=context.seed, record_history=True)
    model_growth = growth_from_sets(run.transactions)
    model_fit = fit_heaps(model_growth)
    trajectory = run.pool_trajectory()
    m0, n0 = trajectory[0]
    m1, n1 = trajectory[-1]

    neighbours = tuple(code for code in codes if code != focal)[:2]
    borrow_events = 0
    fits = [
        GrowthFit("empirical cuisine", empirical_fit.beta,
                  empirical_fit.r_squared, int(empirical_growth.size)),
        GrowthFit("isolated model", model_fit.beta, model_fit.r_squared,
                  int(model_growth.size)),
    ]
    if neighbours:
        mesh_codes = (focal, *neighbours)
        specs = [spec] + [
            CuisineSpec.from_view(
                context.dataset.cuisine(code), context.lexicon
            )
            for code in neighbours
        ]
        topology = MigrationTopology.full_mesh(
            mesh_codes, MIGRATION_RATE / (len(mesh_codes) - 1)
        )
        outcome = IslandSimulation(model, specs, topology).run(
            rng_from_seed(context.seed)
        )
        mesh_growth = growth_from_sets(outcome.runs[focal].transactions)
        mesh_fit = fit_heaps(mesh_growth)
        borrow_events = outcome.borrow_events[focal]
        fits.append(
            GrowthFit("migration model", mesh_fit.beta, mesh_fit.r_squared,
                      int(mesh_growth.size))
        )

    result = NonEquilibriumResult(
        region_code=focal,
        neighbour_codes=neighbours,
        fits=tuple(fits),
        pool_ratio_start=float(m0 / max(n0, 1)),
        pool_ratio_end=float(m1 / max(n1, 1)),
        phi=float(spec.phi),
        borrow_events=borrow_events,
    )
    path = context.artifact_path("non_equilibrium.csv")
    if path is not None:
        write_csv(
            path,
            ("source", "heaps_beta", "r_squared", "n_recipes"),
            [
                (fit.source, f"{fit.beta:.6f}", f"{fit.r_squared:.6f}",
                 fit.n_recipes)
                for fit in result.fits
            ],
        )
    return result
