"""Full reproduction report: run every experiment, write one document.

``build_report`` runs the complete experiment registry against a single
context and assembles a markdown document in the spirit of
EXPERIMENTS.md — headline numbers, per-artifact verdicts, and rendered
tables.  The CLI exposes it as ``repro report``.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass
from pathlib import Path

from repro.config import PAPER
from repro.experiments.ablations import (
    run_ablation_metric,
    run_ablation_minsup,
)
from repro.experiments.base import ExperimentContext
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.table1 import run_table1
from repro.runtime import select_regions

__all__ = ["ReproductionReport", "build_report"]


@dataclass(frozen=True)
class ReproductionReport:
    """The assembled report plus its headline metrics.

    Attributes:
        markdown: Full report text.
        headline: Key quantitative outcomes for programmatic checks.
        elapsed_seconds: Wall time of the full run.
    """

    markdown: str
    headline: dict
    elapsed_seconds: float

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.markdown)
        return target


def build_report(
    context: ExperimentContext,
    include_ablations: bool = True,
    fig4_regions: tuple[str, ...] | None = None,
) -> ReproductionReport:
    """Run every experiment and assemble the reproduction report.

    The ensemble-bound sections (Fig. 4, the metric ablation) plan
    their full model×cuisine grids through :mod:`repro.runtime.sweep`,
    so with a parallel ``context.runtime`` the whole report saturates
    the backend instead of draining one ensemble at a time — and with a
    ``cache_dir`` a ``repro sweep`` pre-warm makes the report's model
    runs free.

    Args:
        context: Shared experiment context.
        include_ablations: Also run the (slower) ablation sweeps.
        fig4_regions: Restrict the model comparison to these cuisines
            (default: every cuisine in the corpus).

    Returns:
        A :class:`ReproductionReport`.
    """
    # Validate the requested model-comparison grid before hours of
    # upstream experiments run against a typo.
    fig4_regions = (
        select_regions(context.dataset.region_codes(), fig4_regions)
        if fig4_regions is not None
        else None
    )
    start = time.time()
    out = io.StringIO()
    headline: dict = {"scale": context.scale, "seed": context.seed}

    out.write("# Reproduction report\n\n")
    out.write(
        f"Corpus: {len(context.dataset)} recipes, "
        f"{len(context.dataset.region_codes())} cuisines, "
        f"scale {context.scale}, seed {context.seed}; "
        f"mining at {context.mining.min_support:.0%} support; "
        f"{context.ensemble_runs} runs per model ensemble.\n\n"
    )

    table1 = run_table1(context)
    headline["table1_top5_overlap"] = table1.mean_top5_overlap()
    out.write("## Table I\n\n```\n")
    out.write(table1.render())
    out.write("\n```\n\n")

    fig1 = run_fig1(context)
    headline["fig1_mean_size"] = fig1.aggregate.mean
    headline["fig1_in_bounds"] = fig1.all_in_paper_bounds()
    out.write("## Fig. 1\n\n```\n")
    out.write(fig1.render())
    out.write("\n```\n\n")

    fig2 = run_fig2(context)
    headline["fig2_spice_contrast"] = fig2.spice_contrast()
    headline["fig2_dairy_contrast"] = fig2.dairy_contrast()
    out.write("## Fig. 2\n\n```\n")
    out.write(fig2.render())
    out.write("\n```\n\n")

    fig3 = run_fig3(context)
    headline["fig3_avg_distance_ingredient"] = fig3.ingredient.average_distance
    headline["fig3_avg_distance_category"] = fig3.category.average_distance
    out.write("## Fig. 3\n\n")
    out.write(
        f"Average pairwise distance: ingredient "
        f"{fig3.ingredient.average_distance:.4f} (paper "
        f"{PAPER.reported_avg_mae_ingredients}), category "
        f"{fig3.category.average_distance:.4f} (paper "
        f"{PAPER.reported_avg_mae_categories}).\n\n"
    )

    fig4 = run_fig4(context, region_codes=fig4_regions)
    headline["fig4_null_separation"] = fig4.null_separation()
    headline["fig4_best_by_cuisine"] = fig4.best_model_by_cuisine()
    out.write("## Fig. 4\n\n```\n")
    out.write(fig4.render())
    out.write("\n```\n\n")

    # Supplementary invariants from the paper's framing (refs [3]-[8]):
    # single-ingredient Zipf curves and Heaps-law vocabulary growth.
    from repro.analysis.ingredient_usage import ingredient_invariance
    from repro.analysis.vocabulary_growth import (
        fit_heaps,
        vocabulary_growth_curve,
    )

    invariance = ingredient_invariance(context.dataset)
    headline["ingredient_zipf_exponent_mean"] = invariance["exponent_mean"]
    headline["ingredient_curve_distance"] = invariance["avg_pairwise_distance"]
    sample_codes = context.dataset.region_codes()[:3]
    heaps = {
        code: fit_heaps(
            vocabulary_growth_curve(context.dataset.cuisine(code))
        )
        for code in sample_codes
    }
    out.write("## Supplementary invariants\n\n")
    out.write(
        f"Single-ingredient rank-frequency: Zipf exponent "
        f"{invariance['exponent_mean']:.3f} ± "
        f"{invariance['exponent_std']:.3f} across cuisines; avg pairwise "
        f"curve distance {invariance['avg_pairwise_distance']:.4f}.\n\n"
    )
    out.write("Heaps-law vocabulary growth (sample):\n\n")
    for code, fit in heaps.items():
        out.write(
            f"- {code}: V(n) ≈ {fit.k:.2f}·n^{fit.beta:.3f} "
            f"(R² {fit.r_squared:.3f})\n"
        )
    out.write("\n")

    if include_ablations:
        minsup = run_ablation_minsup(context)
        out.write("## Ablations\n\n```\n")
        out.write(minsup.render())
        out.write("\n")
        metric = run_ablation_metric(
            context,
            region_codes=fig4_regions
            or tuple(context.dataset.region_codes())[:3],
        )
        out.write(metric.render())
        out.write("\n```\n\n")
        headline["ablation_metric_rows"] = len(metric.rows)

    elapsed = time.time() - start
    out.write(f"_Generated in {elapsed:.1f}s._\n")
    return ReproductionReport(
        markdown=out.getvalue(), headline=headline, elapsed_seconds=elapsed
    )
