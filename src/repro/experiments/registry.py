"""Experiment registry: experiment id -> driver.

Ids match DESIGN.md §4's experiment index; the CLI dispatches through
this table.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    run_ablation_m,
    run_ablation_metric,
    run_ablation_minsup,
    run_ablation_mutations,
    run_ablation_null_sampling,
)
from repro.experiments.base import ExperimentContext
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.islands import run_islands
from repro.experiments.non_equilibrium import run_non_equilibrium
from repro.experiments.table1 import run_table1

__all__ = ["EXPERIMENTS", "available_experiments", "run_experiment"]


def _fig4_categories(context: ExperimentContext):
    return run_fig4(context, level="category")


EXPERIMENTS: dict[str, Callable[[ExperimentContext], object]] = {
    "table1": run_table1,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig4_categories": _fig4_categories,
    "ablation_m": run_ablation_m,
    "ablation_M": run_ablation_mutations,
    "ablation_minsup": run_ablation_minsup,
    "ablation_metric": run_ablation_metric,
    "ablation_null_sampling": run_ablation_null_sampling,
    "islands": run_islands,
    "non_equilibrium": run_non_equilibrium,
}


def available_experiments() -> tuple[str, ...]:
    """All experiment ids in DESIGN.md order."""
    return tuple(EXPERIMENTS)


def run_experiment(experiment_id: str, context: ExperimentContext):
    """Run one experiment by id.

    Raises:
        ExperimentError: For unknown ids.
    """
    driver = EXPERIMENTS.get(experiment_id)
    if driver is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{available_experiments()}"
        )
    return driver(context)
