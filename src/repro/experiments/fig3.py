"""Experiment ``fig3``: cross-cuisine invariance of combination curves.

Fig. 3 plots per-cuisine rank-frequency distributions of frequent
combinations of (a) ingredients and (b) ingredient categories, with the
pooled aggregate inset; the paper reports average pairwise MAE of 0.035
(ingredients) and 0.052 (categories) and notes that the small-corpus
cuisines are the most distinct.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.invariants import InvariantAnalysis, analyze_invariants
from repro.config import PAPER
from repro.experiments.base import ExperimentContext
from repro.runtime import parallel_map
from repro.viz.ascii import render_curves, render_table
from repro.viz.export import write_curves_csv

__all__ = ["Fig3Result", "run_fig3"]


@dataclass(frozen=True)
class Fig3Result:
    """Regenerated Fig. 3 (both levels)."""

    ingredient: InvariantAnalysis
    category: InvariantAnalysis
    scale: float

    def render(self) -> str:
        sections = []
        for label, analysis, paper_value in (
            ("(a) ingredient combinations", self.ingredient,
             PAPER.reported_avg_mae_ingredients),
            ("(b) category combinations", self.category,
             PAPER.reported_avg_mae_categories),
        ):
            curves = {
                code: list(curve.frequencies)
                for code, curve in sorted(analysis.curves.items())
            }
            curves["ALL"] = list(analysis.aggregate.frequencies)
            plot = render_curves(
                curves,
                title=(
                    f"Fig. 3{label}: rank-frequency, "
                    f"avg pairwise distance "
                    f"{analysis.average_distance:.4f} "
                    f"(paper: {paper_value})"
                ),
            )
            distinct = render_table(
                ("Most distinct cuisines", "Mean distance"),
                [
                    (code, f"{value:.4f}")
                    for code, value in analysis.distances.most_distinct(3)
                ],
            )
            sections.append(f"{plot}\n\n{distinct}")
        return "\n\n".join(sections)

    def to_payload(self) -> dict:
        return {
            "experiment": "fig3",
            "scale": self.scale,
            "avg_distance_ingredient": self.ingredient.average_distance,
            "paper_avg_mae_ingredient": PAPER.reported_avg_mae_ingredients,
            "avg_distance_category": self.category.average_distance,
            "paper_avg_mae_category": PAPER.reported_avg_mae_categories,
            "most_distinct_ingredient": self.ingredient.distances.most_distinct(3),
            "curve_lengths": {
                code: len(curve)
                for code, curve in self.ingredient.curves.items()
            },
        }


def run_fig3(context: ExperimentContext) -> Fig3Result:
    """Regenerate Fig. 3 from the context's corpus.

    The two levels fan out as a closure over the context —
    ``prefer_thread`` declares that up front, so a ``process`` runtime
    runs them on threads without a degradation warning.  With a
    ``--cache-dir`` runtime, every per-cuisine and pooled mining result
    is served from the mined-curve cache on repeat invocations.
    """
    curve_cache = context.curve_cache()
    ingredient, category = parallel_map(
        lambda level: analyze_invariants(
            context.dataset, context.lexicon, level=level,
            mining=context.mining, curve_cache=curve_cache,
        ),
        ("ingredient", "category"),
        runtime=context.runtime,
        prefer_thread=True,
    )
    result = Fig3Result(
        ingredient=ingredient, category=category, scale=context.scale
    )
    for level, analysis in (("ingredient", ingredient), ("category", category)):
        path = context.artifact_path(f"fig3_{level}.csv")
        if path is not None:
            curves = {
                code: list(curve.frequencies)
                for code, curve in analysis.curves.items()
            }
            curves["ALL"] = list(analysis.aggregate.frequencies)
            write_curves_csv(path, curves)
    return result
