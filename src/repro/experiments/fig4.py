"""Experiment ``fig4``: evolution models vs empirical distributions.

Fig. 4 compares, per cuisine, the empirical rank-frequency curve of
frequent ingredient combinations against the aggregated curves of CM-R,
CM-C, CM-M and the Null Model, with Eq. 2 distances in the legend.  The
paper's findings encoded here:

* every copy-mutate variant tracks the empirical curve; the null model
  does not (rapid, abrupt decline; much higher distance);
* the best CM variant differs across cuisines;
* at the *category* level even the null model fits, so that statistic
  does not discriminate (the ``level="category"`` variant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.invariants import combination_curve
from repro.analysis.model_eval import ModelEvaluation, evaluate_models
from repro.experiments.base import ExperimentContext
from repro.models.ensemble import ensemble_curves
from repro.models.params import CuisineSpec
from repro.models.registry import PAPER_MODELS, create_model
from repro.runtime import execute_sweep, plan_grid, select_regions
from repro.viz.ascii import render_curves, render_table
from repro.viz.export import write_curves_csv

__all__ = ["Fig4Result", "run_fig4"]


@dataclass(frozen=True)
class Fig4Result:
    """Regenerated Fig. 4 at one level.

    Attributes:
        evaluations: Per-cuisine model evaluations, keyed by region code.
        level: ``"ingredient"`` (the figure) or ``"category"`` (the
            Sec. VI negative result).
        n_runs: Ensemble runs aggregated per model.
        scale: Corpus scale.
    """

    evaluations: dict[str, ModelEvaluation]
    level: str
    n_runs: int
    scale: float

    def best_model_by_cuisine(self) -> dict[str, str]:
        return {
            code: evaluation.best_model
            for code, evaluation in self.evaluations.items()
        }

    def mean_distance(self, model_name: str) -> float:
        """Mean Eq. 2 distance of one model across cuisines."""
        values = [
            evaluation.distances[model_name]
            for evaluation in self.evaluations.values()
            if model_name in evaluation.distances
        ]
        return float(np.mean(values)) if values else float("nan")

    def null_separation(self) -> float:
        """Mean NM distance divided by mean best-CM distance.

        Values well above 1 reproduce the paper's key claim that the
        null model fails where copy-mutate succeeds.
        """
        cm_best = [
            min(
                value
                for name, value in evaluation.distances.items()
                if name != "NM"
            )
            for evaluation in self.evaluations.values()
            if len(evaluation.distances) > 1
        ]
        nm = [
            evaluation.distances["NM"]
            for evaluation in self.evaluations.values()
            if "NM" in evaluation.distances
        ]
        if not cm_best or not nm:
            return float("nan")
        denominator = max(float(np.mean(cm_best)), 1e-12)
        return float(np.mean(nm)) / denominator

    def render(self) -> str:
        model_names = sorted(
            next(iter(self.evaluations.values())).distances
        ) if self.evaluations else []
        rows = []
        for code in sorted(self.evaluations):
            evaluation = self.evaluations[code]
            rows.append(
                (
                    code,
                    *(f"{evaluation.distances[name]:.4f}" for name in model_names),
                    evaluation.best_model,
                )
            )
        table = render_table(
            ("Region", *model_names, "Best"),
            rows,
            title=(
                f"Fig. 4 reproduction ({self.level} level, scale="
                f"{self.scale}, {self.n_runs} runs/model): Eq. 2 distance "
                f"to empirical curve; NM/CM separation "
                f"{self.null_separation():.1f}x"
            ),
        )
        sections = [table]
        # Render one representative cuisine's curves.
        if self.evaluations:
            code = sorted(self.evaluations)[0]
            evaluation = self.evaluations[code]
            curves = {"empirical": list(evaluation.empirical.frequencies)}
            curves.update(
                {
                    name: list(curve.frequencies)
                    for name, curve in sorted(evaluation.model_curves.items())
                }
            )
            sections.append(
                render_curves(
                    curves,
                    title=f"Example cuisine {code}: empirical vs models",
                )
            )
        return "\n\n".join(sections)

    def to_payload(self) -> dict:
        return {
            "experiment": "fig4",
            "level": self.level,
            "scale": self.scale,
            "n_runs": self.n_runs,
            "null_separation": self.null_separation(),
            "best_model_by_cuisine": self.best_model_by_cuisine(),
            "distances": {
                code: dict(evaluation.distances)
                for code, evaluation in self.evaluations.items()
            },
        }


def run_fig4(
    context: ExperimentContext,
    level: str = "ingredient",
    model_names: tuple[str, ...] = PAPER_MODELS,
    region_codes: tuple[str, ...] | None = None,
) -> Fig4Result:
    """Regenerate Fig. 4 from the context's corpus.

    The full (model × cuisine × seed) grid is planned and executed as
    one sharded sweep (:mod:`repro.runtime.sweep`): every run request
    goes through a single backend pass instead of one ensemble at a
    time, which saturates a many-core box end to end while staying
    bit-identical to the per-cell path for a fixed ``context.seed``.
    With a ``--cache-dir`` runtime both layers warm: cached runs skip
    simulation, and the mined-curve cache (empirical and per-run model
    curves alike) makes a repeat invocation perform zero mining calls.

    Args:
        context: Experiment context (corpus + mining + ensemble size).
        level: ``"ingredient"`` or ``"category"``.
        model_names: Models to evaluate (default: the paper's four).
        region_codes: Cuisines to include (default: all in the corpus).
    """
    codes = select_regions(context.dataset.region_codes(), region_codes)
    specs = {
        code: CuisineSpec.from_view(
            context.dataset.cuisine(code), context.lexicon
        )
        for code in codes
    }
    plan = plan_grid(
        [create_model(name, engine=context.engine) for name in model_names],
        [specs[code] for code in codes],
        n_runs=context.ensemble_runs,
        seed=context.seed,
    )
    sweep = execute_sweep(plan, runtime=context.runtime)
    curve_cache = context.curve_cache()
    # Mine the whole (cuisine × model) grid in one executor pass
    # instead of one pool per cell (ensemble_curves); per-cell averages
    # are bit-identical to the per-cell path.
    cells = [
        (sweep.runs_for(name, code), name)
        for code in codes
        for name in model_names
    ]
    grid_curves = ensemble_curves(
        cells, mining=context.mining, level=level,
        lexicon=context.lexicon if level == "category" else None,
        runtime=context.runtime, curve_cache=curve_cache,
    )
    evaluations: dict[str, ModelEvaluation] = {}
    for position, code in enumerate(codes):
        empirical, _mining = combination_curve(
            context.dataset, code, context.lexicon,
            level=level, mining=context.mining, curve_cache=curve_cache,
        )
        model_curves = dict(
            zip(
                model_names,
                grid_curves[
                    position * len(model_names):
                    (position + 1) * len(model_names)
                ],
            )
        )
        evaluations[code] = evaluate_models(
            code, empirical, model_curves, level=level
        )
    result = Fig4Result(
        evaluations=evaluations,
        level=level,
        n_runs=context.ensemble_runs,
        scale=context.scale,
    )
    path = context.artifact_path(f"fig4_{level}.csv")
    if path is not None:
        curves = {}
        for code, evaluation in evaluations.items():
            curves[f"{code}:empirical"] = list(evaluation.empirical.frequencies)
            for name, curve in evaluation.model_curves.items():
                curves[f"{code}:{name}"] = list(curve.frequencies)
        write_curves_csv(path, curves)
    return result
