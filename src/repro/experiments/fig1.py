"""Experiment ``fig1``: recipe size distributions.

Fig. 1 shows per-cuisine recipe size distributions plus the aggregate
inset; the paper highlights that sizes are Gaussian-like, bounded in
[2, 38] and average about 9 — homogeneously across cuisines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.size_distribution import (
    SizeDistribution,
    aggregate_size_distribution,
    cuisine_size_distributions,
)
from repro.config import PAPER
from repro.experiments.base import ExperimentContext
from repro.viz.ascii import render_histogram, render_table
from repro.viz.export import write_csv

__all__ = ["Fig1Result", "run_fig1"]


@dataclass(frozen=True)
class Fig1Result:
    """Regenerated Fig. 1."""

    per_cuisine: dict[str, SizeDistribution]
    aggregate: SizeDistribution
    scale: float

    def all_in_paper_bounds(self) -> bool:
        """Whether every recipe size lies in the paper's [2, 38]."""
        return (
            self.aggregate.min_size >= PAPER.recipe_size_min
            and self.aggregate.max_size <= PAPER.recipe_size_max
        )

    def mean_of_means(self) -> float:
        """Mean of per-cuisine mean sizes."""
        return float(
            np.mean([dist.mean for dist in self.per_cuisine.values()])
        )

    def render(self) -> str:
        summary_rows = [
            (
                code,
                dist.n_recipes,
                f"{dist.mean:.2f}",
                f"{dist.std:.2f}",
                dist.min_size,
                dist.max_size,
                f"{dist.gaussian_mu:.2f}",
                f"{dist.gaussian_sigma:.2f}",
            )
            for code, dist in sorted(self.per_cuisine.items())
        ]
        table = render_table(
            ("Region", "Recipes", "Mean", "Std", "Min", "Max",
             "Fit mu", "Fit sigma"),
            summary_rows,
            title=(
                f"Fig. 1 reproduction (scale={self.scale}): recipe size "
                f"distributions; aggregate mean "
                f"{self.aggregate.mean:.2f} (paper: approx. "
                f"{PAPER.recipe_size_mean:.0f}), bounds "
                f"[{self.aggregate.min_size}, {self.aggregate.max_size}] "
                f"(paper: [{PAPER.recipe_size_min}, "
                f"{PAPER.recipe_size_max}])"
            ),
        )
        histogram = render_histogram(
            list(self.aggregate.sizes),
            list(self.aggregate.counts),
            title="Aggregate recipe size histogram (inset)",
        )
        return f"{table}\n\n{histogram}"

    def to_payload(self) -> dict:
        return {
            "experiment": "fig1",
            "scale": self.scale,
            "aggregate_mean": self.aggregate.mean,
            "aggregate_std": self.aggregate.std,
            "bounds": [self.aggregate.min_size, self.aggregate.max_size],
            "paper_bounds": [PAPER.recipe_size_min, PAPER.recipe_size_max],
            "in_paper_bounds": self.all_in_paper_bounds(),
            "per_cuisine_means": {
                code: dist.mean for code, dist in self.per_cuisine.items()
            },
        }


def run_fig1(context: ExperimentContext) -> Fig1Result:
    """Regenerate Fig. 1 from the context's corpus."""
    result = Fig1Result(
        per_cuisine=cuisine_size_distributions(context.dataset),
        aggregate=aggregate_size_distribution(context.dataset),
        scale=context.scale,
    )
    path = context.artifact_path("fig1.csv")
    if path is not None:
        rows = []
        for code, dist in sorted(result.per_cuisine.items()):
            for size, fraction in zip(dist.sizes, dist.fractions):
                rows.append((code, int(size), float(fraction)))
        for size, fraction in zip(result.aggregate.sizes, result.aggregate.fractions):
            rows.append(("ALL", int(size), float(fraction)))
        write_csv(path, ("region", "size", "fraction"), rows)
    return result
