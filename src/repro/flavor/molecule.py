"""Flavor molecule entity (FlavorDB stand-in).

The paper's lexicon derives from FlavorDB [9], a database of flavor
molecules per ingredient.  No table or figure depends on molecule data,
but the food-pairing literature the paper builds on (refs [3]-[6]) is
defined in terms of *shared flavor compounds*, so the reproduction keeps
a faithful data model: molecules with identifiers and odor descriptors,
assigned to ingredients via :mod:`repro.flavor.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlavorMolecule", "ODOR_DESCRIPTORS"]

#: Vocabulary of odor descriptors used when synthesizing molecules.
ODOR_DESCRIPTORS: tuple[str, ...] = (
    "sweet", "fruity", "green", "citrus", "floral", "woody", "earthy",
    "nutty", "roasted", "caramellic", "buttery", "creamy", "fatty",
    "sulfurous", "pungent", "spicy", "herbal", "minty", "camphoreous",
    "smoky", "meaty", "marine", "mushroom", "winey", "sour", "bitter",
    "balsamic", "honey", "vanilla", "almond", "coconut", "berry",
    "apple", "melon", "tropical", "waxy", "musty", "alliaceous",
)


@dataclass(frozen=True, slots=True)
class FlavorMolecule:
    """A flavor compound.

    Attributes:
        molecule_id: Stable integer id (synthetic analogue of a PubChem id).
        name: Display name.
        odors: Odor descriptors associated with this compound.
    """

    molecule_id: int
    name: str
    odors: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.molecule_id < 0:
            raise ValueError(f"molecule_id must be >= 0, got {self.molecule_id}")
        if not self.name:
            raise ValueError("molecule name must be non-empty")

    def shares_odor_with(self, other: "FlavorMolecule") -> bool:
        """Whether two molecules share at least one odor descriptor."""
        return bool(set(self.odors) & set(other.odors))
