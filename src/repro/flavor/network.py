"""Flavor network construction (Ahn et al. [3]).

Builds the weighted ingredient graph in which two ingredients are linked
iff they share flavor compounds, with edge weight = number of shared
compounds.  This is the backbone structure of the food-pairing literature
the paper cites; exposed for exploratory analyses and examples.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.flavor.profiles import FlavorProfileSet

__all__ = ["build_flavor_network", "backbone", "top_pairings"]


def build_flavor_network(
    profiles: FlavorProfileSet,
    ingredients: Iterable[str] | None = None,
    min_shared: int = 1,
) -> nx.Graph:
    """Build the shared-compound ingredient network.

    Args:
        profiles: Flavor profiles to link on.
        ingredients: Node subset (defaults to every profiled ingredient).
        min_shared: Minimum shared-compound count for an edge.

    Returns:
        An undirected :class:`networkx.Graph` whose edges carry a
        ``weight`` attribute (shared-compound count).
    """
    names = sorted(profiles.profiles if ingredients is None else ingredients)
    graph = nx.Graph()
    graph.add_nodes_from(names)
    for i, a in enumerate(names):
        profile_a = profiles.profile_of(a)
        if not profile_a:
            continue
        for b in names[i + 1:]:
            shared = len(profile_a & profiles.profile_of(b))
            if shared >= min_shared:
                graph.add_edge(a, b, weight=shared)
    return graph


def backbone(graph: nx.Graph, min_weight: int) -> nx.Graph:
    """Subgraph keeping only edges with ``weight >= min_weight``."""
    kept = [
        (u, v)
        for u, v, w in graph.edges(data="weight", default=0)
        if w >= min_weight
    ]
    sub = nx.Graph()
    sub.add_nodes_from(graph.nodes)
    sub.add_edges_from(
        (u, v, {"weight": graph[u][v]["weight"]}) for u, v in kept
    )
    return sub


def top_pairings(graph: nx.Graph, k: int = 10) -> list[tuple[str, str, int]]:
    """The ``k`` strongest pairings as ``(a, b, shared_count)`` tuples."""
    ranked = sorted(
        ((u, v, int(w)) for u, v, w in graph.edges(data="weight", default=0)),
        key=lambda edge: (-edge[2], edge[0], edge[1]),
    )
    return ranked[:k]
