"""Flavor-molecule substrate (FlavorDB stand-in; refs [3]-[6], [9]).

No paper table or figure depends on molecule data, but the food-pairing
ecosystem the paper builds on does; this subpackage provides synthetic
molecule profiles, pairing statistics and the shared-compound network.
"""

from repro.flavor.molecule import FlavorMolecule, ODOR_DESCRIPTORS
from repro.flavor.network import backbone, build_flavor_network, top_pairings
from repro.flavor.pairing import (
    PairingResult,
    food_pairing_bias,
    mean_shared_compounds,
)
from repro.flavor.profiles import FlavorProfileSet, build_flavor_profiles

__all__ = [
    "FlavorMolecule",
    "ODOR_DESCRIPTORS",
    "build_flavor_network",
    "backbone",
    "top_pairings",
    "PairingResult",
    "food_pairing_bias",
    "mean_shared_compounds",
    "FlavorProfileSet",
    "build_flavor_profiles",
]
