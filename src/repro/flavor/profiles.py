"""Synthetic flavor profiles: which molecules occur in which ingredient.

FlavorDB assigns each ingredient a set of flavor molecules; ingredients of
the same category share many compounds (all citrus fruits share limonene
and friends), with some cross-category bridges (the basis of the
food-pairing hypothesis).  This module synthesizes a profile assignment
with exactly that structure:

* a *category core* — molecules shared by most members of a category;
* a *private tail* — molecules mostly unique to the ingredient;
* *bridge molecules* — a global pool sprinkled across categories.

The construction is deterministic for a fixed seed, so pairing analyses
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flavor.molecule import FlavorMolecule, ODOR_DESCRIPTORS
from repro.lexicon.categories import Category
from repro.lexicon.lexicon import Lexicon
from repro.rng import SeedLike, ensure_rng

__all__ = ["FlavorProfileSet", "build_flavor_profiles"]

#: Defaults loosely follow FlavorDB scale: ~50 molecules per ingredient.
DEFAULT_CORE_SIZE = 18
DEFAULT_PRIVATE_SIZE = 24
DEFAULT_BRIDGE_POOL = 160
DEFAULT_BRIDGE_PER_INGREDIENT = 8


@dataclass(frozen=True)
class FlavorProfileSet:
    """Molecule profiles for every ingredient in a lexicon.

    Attributes:
        molecules: All synthesized molecules, indexed by ``molecule_id``.
        profiles: ingredient name -> frozenset of molecule ids.
    """

    molecules: tuple[FlavorMolecule, ...]
    profiles: dict[str, frozenset[int]] = field(repr=False)

    def profile_of(self, ingredient_name: str) -> frozenset[int]:
        """Molecule ids of an ingredient (empty set if unknown)."""
        return self.profiles.get(ingredient_name, frozenset())

    def shared_compounds(self, a: str, b: str) -> frozenset[int]:
        """Molecule ids shared by two ingredients."""
        return self.profile_of(a) & self.profile_of(b)

    def n_shared(self, a: str, b: str) -> int:
        """Number of shared molecules — the Ahn et al. pairing weight."""
        return len(self.shared_compounds(a, b))

    def mean_profile_size(self) -> float:
        """Average number of molecules per ingredient."""
        if not self.profiles:
            return 0.0
        return float(np.mean([len(p) for p in self.profiles.values()]))


def _mint_molecules(
    rng: np.random.Generator, count: int, prefix: str, start_id: int
) -> list[FlavorMolecule]:
    molecules = []
    for offset in range(count):
        n_odors = int(rng.integers(1, 4))
        odors = tuple(
            sorted(rng.choice(len(ODOR_DESCRIPTORS), size=n_odors, replace=False))
        )
        molecules.append(
            FlavorMolecule(
                molecule_id=start_id + offset,
                name=f"{prefix}-{start_id + offset}",
                odors=tuple(ODOR_DESCRIPTORS[i] for i in odors),
            )
        )
    return molecules


def build_flavor_profiles(
    lexicon: Lexicon,
    seed: SeedLike = 7,
    core_size: int = DEFAULT_CORE_SIZE,
    private_size: int = DEFAULT_PRIVATE_SIZE,
    bridge_pool: int = DEFAULT_BRIDGE_POOL,
    bridges_per_ingredient: int = DEFAULT_BRIDGE_PER_INGREDIENT,
) -> FlavorProfileSet:
    """Synthesize flavor profiles for every entity in ``lexicon``.

    Compound ingredients inherit the union of their components' profiles,
    matching the paper's treatment of compounds as aggregates.

    Args:
        lexicon: Target lexicon.
        seed: RNG seed for deterministic synthesis.
        core_size: Molecules in each category's shared core.
        private_size: Private molecules minted per ingredient.
        bridge_pool: Size of the global bridge-molecule pool.
        bridges_per_ingredient: Bridge molecules sampled per ingredient.

    Returns:
        A :class:`FlavorProfileSet` covering every lexicon entity.
    """
    rng = ensure_rng(seed)
    molecules: list[FlavorMolecule] = []

    bridge = _mint_molecules(rng, bridge_pool, "bridge", 0)
    molecules.extend(bridge)
    bridge_ids = np.array([m.molecule_id for m in bridge])

    category_core: dict[Category, np.ndarray] = {}
    next_id = len(molecules)
    for category in Category:
        core = _mint_molecules(rng, core_size, f"core-{category.name.lower()}", next_id)
        molecules.extend(core)
        category_core[category] = np.array([m.molecule_id for m in core])
        next_id += core_size

    profiles: dict[str, frozenset[int]] = {}
    # Pass 1: simple ingredients.
    for ingredient in lexicon.simple_ingredients:
        core_ids = category_core[ingredient.category]
        n_core = int(rng.integers(max(1, core_size // 2), core_size + 1))
        chosen_core = rng.choice(core_ids, size=n_core, replace=False)

        private = _mint_molecules(rng, private_size, "priv", next_id)
        molecules.extend(private)
        next_id += private_size

        n_bridge = int(rng.integers(0, bridges_per_ingredient + 1))
        chosen_bridge = (
            rng.choice(bridge_ids, size=n_bridge, replace=False)
            if n_bridge
            else np.array([], dtype=int)
        )
        profiles[ingredient.name] = frozenset(
            int(i) for i in chosen_core
        ) | frozenset(m.molecule_id for m in private) | frozenset(
            int(i) for i in chosen_bridge
        )

    # Pass 2: compounds inherit component unions (nested compounds resolve
    # through repeated sweeps; the seed data nests at most one level).
    pending = list(lexicon.compound_ingredients)
    for _sweep in range(3):
        still_pending = []
        for compound in pending:
            component_profiles = [
                profiles[name] for name in compound.components if name in profiles
            ]
            if len(component_profiles) < len(compound.components):
                still_pending.append(compound)
                continue
            union: frozenset[int] = frozenset()
            for p in component_profiles:
                union |= p
            profiles[compound.name] = union
        pending = still_pending
        if not pending:
            break
    for compound in pending:  # unresolvable nesting: give empty profile
        profiles[compound.name] = frozenset()

    return FlavorProfileSet(molecules=tuple(molecules), profiles=profiles)
