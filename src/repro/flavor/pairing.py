"""Food-pairing analysis (Ahn et al. [3]; Jain, Rakhi & Bagler [4], [5]).

The food-pairing hypothesis asks whether recipes prefer ingredient pairs
that share flavor compounds.  The standard statistic is the *mean number
of shared compounds per recipe* compared against a randomized null:

    N_s(R) = (2 / (n_R (n_R - 1))) * sum_{i<j in R} |C_i ∩ C_j|

with the cuisine-level score being the average over recipes, and the
food-pairing *bias* the difference between the observed average and the
average under ingredient randomization.  Positive bias = the cuisine
favours compound-sharing pairs; negative = it avoids them (the pattern
reported for Indian cuisine in refs [4], [5]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.flavor.profiles import FlavorProfileSet
from repro.rng import SeedLike, ensure_rng

__all__ = ["PairingResult", "mean_shared_compounds", "food_pairing_bias"]


@dataclass(frozen=True)
class PairingResult:
    """Food-pairing statistics for one recipe collection.

    Attributes:
        observed: Mean shared compounds per recipe, observed.
        randomized: Mean shared compounds per recipe under the null.
        bias: ``observed - randomized``.
        n_recipes: Recipes scored (recipes with < 2 ingredients skipped).
    """

    observed: float
    randomized: float
    bias: float
    n_recipes: int


def _recipe_score(
    ingredients: Sequence[str], profiles: FlavorProfileSet
) -> float | None:
    names = [name for name in ingredients if profiles.profile_of(name)]
    n = len(names)
    if n < 2:
        return None
    total = 0
    for i in range(n):
        profile_i = profiles.profile_of(names[i])
        for j in range(i + 1, n):
            total += len(profile_i & profiles.profile_of(names[j]))
    return 2.0 * total / (n * (n - 1))


def mean_shared_compounds(
    recipes: Iterable[Sequence[str]], profiles: FlavorProfileSet
) -> float:
    """Average N_s over recipes (ingredient-name form).

    Raises:
        AnalysisError: If no recipe has two or more profiled ingredients.
    """
    scores = [
        score
        for score in (_recipe_score(recipe, profiles) for recipe in recipes)
        if score is not None
    ]
    if not scores:
        raise AnalysisError("no recipe with >= 2 profiled ingredients")
    return float(np.mean(scores))


def food_pairing_bias(
    recipes: Sequence[Sequence[str]],
    profiles: FlavorProfileSet,
    vocabulary: Sequence[str] | None = None,
    n_shuffles: int = 20,
    seed: SeedLike = None,
) -> PairingResult:
    """Observed-vs-random food pairing for a recipe collection.

    The null preserves every recipe's size and draws ingredients uniformly
    from ``vocabulary`` (defaults to the union of ingredients used).

    Args:
        recipes: Recipes as sequences of canonical ingredient names.
        profiles: Flavor profile set to score against.
        vocabulary: Null-model ingredient universe.
        n_shuffles: Randomized replicates to average.
        seed: RNG seed.

    Returns:
        A :class:`PairingResult`.
    """
    rng = ensure_rng(seed)
    recipes = [list(r) for r in recipes]
    if vocabulary is None:
        vocabulary = sorted({name for recipe in recipes for name in recipe})
    vocab = list(vocabulary)
    if len(vocab) < 2:
        raise AnalysisError("vocabulary must contain at least two ingredients")

    observed_scores = [
        score
        for score in (_recipe_score(recipe, profiles) for recipe in recipes)
        if score is not None
    ]
    if not observed_scores:
        raise AnalysisError("no recipe with >= 2 profiled ingredients")
    observed = float(np.mean(observed_scores))

    random_means = []
    for _ in range(n_shuffles):
        shuffled_scores = []
        for recipe in recipes:
            size = min(len(recipe), len(vocab))
            if size < 2:
                continue
            random_recipe = [
                vocab[k] for k in rng.choice(len(vocab), size=size, replace=False)
            ]
            score = _recipe_score(random_recipe, profiles)
            if score is not None:
                shuffled_scores.append(score)
        if shuffled_scores:
            random_means.append(float(np.mean(shuffled_scores)))
    randomized = float(np.mean(random_means)) if random_means else 0.0

    return PairingResult(
        observed=observed,
        randomized=randomized,
        bias=observed - randomized,
        n_recipes=len(observed_scores),
    )
