"""Library-wide constants mirroring the paper's reported setup.

These values come directly from the published text (Secs. II and VI) and
are referenced throughout the corpus, synthesis, analysis and model
subsystems so that "the paper's numbers" live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperConstants",
    "PAPER",
    "MiningConfig",
    "DEFAULT_MINING",
]


@dataclass(frozen=True)
class PaperConstants:
    """Constants reported by the paper.

    Attributes:
        total_recipes: Total recipes compiled (Sec. II).
        n_regions: Number of geo-cultural regions ("cuisines").
        n_lexicon_entities: Entities in the standardized ingredient lexicon.
        n_compound_ingredients: Compound ingredients added to FlavorDB base.
        n_categories: Manually assigned ingredient categories.
        recipe_size_min: Lower bound of the recipe size distribution (Fig. 1).
        recipe_size_max: Upper bound of the recipe size distribution (Fig. 1).
        recipe_size_mean: Approximate mean recipe size (Fig. 1).
        combination_min_support: Support threshold for "frequent"
            combinations (Sec. IV): at least 5% of a cuisine's recipes.
        reported_avg_mae_ingredients: Paper's average pairwise MAE between
            cuisine rank-frequency curves of ingredient combinations.
        reported_avg_mae_categories: Same for category combinations.
        model_initial_pool_size: ``m`` in Algorithm 1 (Sec. VI).
        model_mutations_cm_r: ``M`` for the CM-R variant (Sec. VI).
        model_mutations_cm_c: ``M`` for the CM-C variant (Sec. VI).
        model_mutations_cm_m: ``M`` for the CM-M variant (Sec. VI).
        model_ensemble_runs: Number of independent model runs aggregated.
    """

    total_recipes: int = 158544
    n_regions: int = 25
    n_lexicon_entities: int = 721
    n_compound_ingredients: int = 96
    n_categories: int = 21

    recipe_size_min: int = 2
    recipe_size_max: int = 38
    recipe_size_mean: float = 9.0

    combination_min_support: float = 0.05
    reported_avg_mae_ingredients: float = 0.035
    reported_avg_mae_categories: float = 0.052

    model_initial_pool_size: int = 20
    model_mutations_cm_r: int = 4
    model_mutations_cm_c: int = 6
    model_mutations_cm_m: int = 6
    model_ensemble_runs: int = 100


#: The singleton constants object used across the library.
PAPER = PaperConstants()


@dataclass(frozen=True)
class MiningConfig:
    """Configuration for frequent-combination mining (Sec. IV).

    Attributes:
        min_support: Relative support threshold (fraction of recipes).
        max_size: Optional cap on itemset size; ``None`` mines all sizes.
            The paper mines "size 1 and greater" with no stated cap.
        algorithm: Mining algorithm name registered in
            :mod:`repro.analysis.itemsets`.
    """

    min_support: float = PAPER.combination_min_support
    max_size: int | None = None
    algorithm: str = "eclat"

    def __post_init__(self) -> None:
        if not 0.0 < self.min_support <= 1.0:
            raise ValueError(
                f"min_support must be in (0, 1], got {self.min_support}"
            )
        if self.max_size is not None and self.max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {self.max_size}")


DEFAULT_MINING = MiningConfig()
