"""ASCII rendering of tables and plots.

The offline environment has no matplotlib; experiments render their
figures as log-log ASCII scatter plots and aligned text tables, and
export the underlying series as CSV/JSON via :mod:`repro.viz.export`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["render_table", "render_curves", "render_histogram", "render_boxplots"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        if cells
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def _log_positions(values: np.ndarray, low: float, high: float, cells: int) -> np.ndarray:
    span = math.log10(high) - math.log10(low)
    if span <= 0:
        return np.zeros(values.size, dtype=int)
    positions = (np.log10(values) - math.log10(low)) / span * (cells - 1)
    return np.clip(np.rint(positions).astype(int), 0, cells - 1)


def render_curves(
    curves: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    log_log: bool = True,
) -> str:
    """Render rank-frequency curves as an ASCII scatter plot.

    Each curve gets a distinct marker; ranks on x, frequencies on y
    (log-log by default, matching the paper's figures).
    """
    markers = "*o+x#@%&$~^=-"
    grid = [[" "] * width for _ in range(height)]

    series = {
        label: np.asarray(values, dtype=float)
        for label, values in curves.items()
        if len(values) > 0
    }
    if not series:
        return f"{title}\n(no data)"

    all_y = np.concatenate([v[v > 0] for v in series.values()])
    all_x = np.concatenate(
        [np.arange(1, v.size + 1)[v > 0] for v in series.values()]
    )
    if all_y.size == 0:
        return f"{title}\n(no positive data)"
    y_low, y_high = float(all_y.min()), float(all_y.max())
    x_low, x_high = float(all_x.min()), float(all_x.max())
    if y_low == y_high:
        y_low *= 0.5
    if x_low == x_high:
        x_high = x_low + 1

    for index, (label, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        positive = values > 0
        ranks = np.arange(1, values.size + 1, dtype=float)[positive]
        freqs = values[positive]
        if log_log:
            cols = _log_positions(ranks, x_low, x_high, width)
            rows = _log_positions(freqs, y_low, y_high, height)
        else:
            cols = np.clip(
                np.rint((ranks - x_low) / (x_high - x_low) * (width - 1)).astype(int),
                0, width - 1,
            )
            rows = np.clip(
                np.rint((freqs - y_low) / (y_high - y_low) * (height - 1)).astype(int),
                0, height - 1,
            )
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"freq {y_high:.3g} ┐")
    for row in grid:
        lines.append("     │" + "".join(row))
    lines.append(f"freq {y_low:.3g} └" + "─" * width)
    lines.append(f"      rank {x_low:.0f} .. {x_high:.0f} (log-log)" if log_log
                 else f"      rank {x_low:.0f} .. {x_high:.0f}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={label}"
        for i, label in enumerate(series)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def render_histogram(
    values: Sequence[int],
    counts: Sequence[int],
    width: int = 50,
    title: str = "",
) -> str:
    """Render a histogram with one bar row per distinct value."""
    counts_arr = np.asarray(counts, dtype=float)
    if counts_arr.size == 0:
        return f"{title}\n(no data)"
    peak = counts_arr.max()
    lines = []
    if title:
        lines.append(title)
    for value, count in zip(values, counts_arr):
        bar = "█" * max(1, int(round(count / peak * width))) if count else ""
        lines.append(f"{value:>4} | {bar} {int(count)}")
    return "\n".join(lines)


def render_boxplots(
    stats: Mapping[str, tuple[float, float, float, float, float]],
    width: int = 56,
    title: str = "",
) -> str:
    """Render labelled boxplots.

    Args:
        stats: label -> (whisker_low, q1, median, q3, whisker_high).
        width: Plot width in cells.
        title: Optional heading.
    """
    if not stats:
        return f"{title}\n(no data)"
    low = min(values[0] for values in stats.values())
    high = max(values[4] for values in stats.values())
    if high <= low:
        high = low + 1
    label_width = max(len(label) for label in stats)

    def cell(value: float) -> int:
        return int(round((value - low) / (high - low) * (width - 1)))

    lines = []
    if title:
        lines.append(title)
    for label, (w_low, q1, median, q3, w_high) in stats.items():
        row = [" "] * width
        for col in range(cell(w_low), cell(q1)):
            row[col] = "─"
        for col in range(cell(q1), cell(q3) + 1):
            row[col] = "█"
        for col in range(cell(q3) + 1, cell(w_high) + 1):
            row[col] = "─"
        row[cell(median)] = "┃"
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}|")
    lines.append(f"{' ' * label_width}  {low:.2f}{' ' * (width - 12)}{high:.2f}")
    return "\n".join(lines)
