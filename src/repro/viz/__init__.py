"""Rendering and artifact export (no plotting backend required)."""

from repro.viz.ascii import (
    render_boxplots,
    render_curves,
    render_histogram,
    render_table,
)
from repro.viz.export import write_csv, write_curves_csv, write_json

__all__ = [
    "render_boxplots",
    "render_curves",
    "render_histogram",
    "render_table",
    "write_csv",
    "write_curves_csv",
    "write_json",
]
