"""CSV/JSON artifact export for experiment results."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["write_csv", "write_json", "write_curves_csv"]


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows to CSV, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return target


def write_json(path: str | Path, payload: object) -> Path:
    """Write a JSON document, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, default=str))
    return target


def write_curves_csv(
    path: str | Path,
    curves: Mapping[str, Sequence[float]],
) -> Path:
    """Write rank-frequency series in long form (label, rank, frequency)."""
    rows = [
        (label, rank, float(freq))
        for label, values in curves.items()
        for rank, freq in enumerate(values, start=1)
    ]
    return write_csv(path, ("label", "rank", "frequency"), rows)
