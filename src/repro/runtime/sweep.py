"""Sharded sweeps over the full (model × cuisine × seed) run grid.

:func:`~repro.runtime.runner.execute_runs` parallelizes *within* one
(model, cuisine) ensemble; experiment drivers that walk a grid of cells
serially therefore leave most cores idle between cells — a 25-cell wait
on the slowest ensemble, repeated 25 times.  The sweep planner removes
that barrier:

1. **plan** — expand an ordered grid of (model, cuisine) cells into
   per-cell seed streams, drawing every seed up front from one root
   generator (:func:`plan_cells` / :func:`plan_grid`);
2. **shard** — flatten all cells into one list of
   :class:`~repro.runtime.runner.RunRequest`s and push it through a
   *single* executor map, so workers drain the whole grid instead of one
   ensemble at a time (:func:`execute_sweep`);
3. **merge** — slice the order-preserved results back into per-cell run
   tuples (:class:`CellRuns` inside :class:`SweepResult`).

Determinism: the planner draws seeds cell by cell, in cell order, from
the root generator — exactly the draws a serial loop of per-cell
``run_ensemble``/``execute_runs`` calls makes.  Since each run is a pure
function of ``(model, spec, seed)`` and executors preserve order, a
sharded sweep is bit-identical to the per-cell path for a fixed master
seed, on every backend (see DESIGN.md §5).

The on-disk run cache is consulted per request, so a warm cell costs
zero worker time and a sweep interrupted halfway resumes where it
stopped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ExecutionError
from repro.rng import SeedLike, ensure_rng, spawn_seeds
from repro.runtime.cache import RunCache, fingerprint_many
from repro.runtime.config import RuntimeConfig
from repro.runtime.runner import RunRequest, dispatch_requests

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.models.base import CulinaryEvolutionModel, EvolutionRun
    from repro.models.params import CuisineSpec

__all__ = [
    "CellRuns",
    "SweepCell",
    "SweepPlan",
    "SweepResult",
    "execute_sweep",
    "plan_cells",
    "plan_grid",
    "select_regions",
]


def select_regions(
    available: Sequence[str], requested: Sequence[str] | None = None
) -> tuple[str, ...]:
    """Resolve a sweep's cuisine selection against a corpus.

    ``None`` selects every available cuisine, in corpus order; an
    explicit request keeps *its* order (it defines the seed-draw order
    of the plan) and is validated eagerly so typos fail before any
    corpus generation or model work.

    Raises:
        ExecutionError: If a requested code is not in ``available``, or
            appears more than once (a duplicate would plan two
            identical grid cells, making the merged result ambiguous).
    """
    if requested is None:
        return tuple(available)
    known = set(available)
    unknown = [code for code in requested if code not in known]
    if unknown:
        raise ExecutionError(
            f"unknown region codes {unknown} for this corpus; "
            f"available: {tuple(available)}"
        )
    if len(set(requested)) != len(tuple(requested)):
        duplicates = sorted(
            {code for code in requested if list(requested).count(code) > 1}
        )
        raise ExecutionError(f"duplicate region codes requested: {duplicates}")
    return tuple(requested)


@dataclass(frozen=True)
class SweepCell:
    """One (model, cuisine) cell of a planned sweep.

    Attributes:
        model: The configured evolution model for this cell.
        spec: Cuisine inputs.
        seeds: The cell's per-run integer seeds, already drawn by the
            planner (order defines run order within the cell).
    """

    model: "CulinaryEvolutionModel"
    spec: "CuisineSpec"
    seeds: tuple[int, ...]

    @property
    def model_name(self) -> str:
        return self.model.name

    @property
    def region_code(self) -> str:
        return self.spec.region_code

    @property
    def n_runs(self) -> int:
        return len(self.seeds)


@dataclass(frozen=True)
class SweepPlan:
    """An ordered grid of cells with all per-run seeds pre-drawn.

    Attributes:
        cells: Cells in plan order — the order their seeds were drawn
            from the root generator, and the order results come back.
        record_history: Forwarded to every run.
        engine: Per-run engine override forwarded to every run
            (``"reference"``, ``"vectorized"`` or ``"batched"``;
            ``None``: each cell's model decides via ``params.engine``).
            Carried on the plan so one grid can be re-executed on
            another engine without rebuilding the models, and so the
            cache keys of a sweep cover the engine its runs actually
            used.  Under ``"batched"`` the dispatcher stacks each
            cell's uncached runs into one pass (DESIGN.md §7); models
            without batched support (CM-V) degrade to vectorized.
        checkpoint_every: Snapshot each dispatched run's engine state
            every N steps (DESIGN.md §9).  ``None`` defers to the
            runtime config at execution time; carried on the plan so a
            long sweep's resumability policy travels with the grid.
            Like the engine override it never enters cache keys.
    """

    cells: tuple[SweepCell, ...]
    record_history: bool = False
    engine: str | None = None
    checkpoint_every: int | None = None

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def total_runs(self) -> int:
        return sum(cell.n_runs for cell in self.cells)

    def requests(self) -> list[RunRequest]:
        """The flat, cell-major work list this plan shards."""
        return [
            RunRequest(
                model=cell.model,
                spec=cell.spec,
                seed=seed,
                record_history=self.record_history,
                engine=self.engine,
            )
            for cell in self.cells
            for seed in cell.seeds
        ]


def plan_cells(
    cells: Iterable[tuple["CulinaryEvolutionModel", "CuisineSpec"]],
    n_runs: int,
    seed: SeedLike = None,
    record_history: bool = False,
    engine: str | None = None,
    checkpoint_every: int | None = None,
) -> SweepPlan:
    """Draw per-run seeds for an ordered sequence of (model, spec) cells.

    Seeds are drawn cell by cell, in the given order, from one root
    generator — the exact draws a serial loop of per-cell
    :func:`~repro.models.ensemble.run_ensemble` calls over the same
    order makes, which is what keeps a sharded sweep bit-identical to
    the per-cell path.

    Args:
        cells: (model, spec) pairs in seed-draw order.
        n_runs: Runs per cell (paper: 100).
        seed: Root seed or generator; a passed generator is advanced
            exactly as the per-cell path would advance it.
        record_history: Forwarded to every run.
        engine: Per-run engine override forwarded to every run
            (``"reference"``, ``"vectorized"`` or ``"batched"``; see
            :class:`SweepPlan`).
        checkpoint_every: Snapshot period in engine steps (see
            :class:`SweepPlan`); ``None`` defers to the runtime config.

    Raises:
        ExecutionError: If ``n_runs < 1``.
    """
    if n_runs < 1:
        raise ExecutionError(f"n_runs must be >= 1, got {n_runs}")
    root = ensure_rng(seed)
    return SweepPlan(
        cells=tuple(
            SweepCell(
                model=model, spec=spec,
                seeds=tuple(spawn_seeds(root, n_runs)),
            )
            for model, spec in cells
        ),
        record_history=record_history,
        engine=engine,
        checkpoint_every=checkpoint_every,
    )


def plan_grid(
    models: Sequence["CulinaryEvolutionModel"],
    specs: Sequence["CuisineSpec"],
    n_runs: int,
    seed: SeedLike = None,
    record_history: bool = False,
    engine: str | None = None,
    checkpoint_every: int | None = None,
) -> SweepPlan:
    """Plan the full cuisine-major (model × cuisine) grid.

    Cells are expanded cuisine-outer, model-inner — the nested-loop
    order of the experiment drivers (``for cuisine: for model:``) — so
    the plan's seed draws replay the drivers' serial draws exactly.

    Args:
        models: Model instances, one per grid column.
        specs: Cuisine specs, one per grid row.
        n_runs: Runs per (model, cuisine) cell.
        seed: Root seed or generator.
        record_history: Forwarded to every run.
        engine: Per-run engine override forwarded to every run
            (``"reference"``, ``"vectorized"`` or ``"batched"``; see
            :class:`SweepPlan`).
        checkpoint_every: Snapshot period in engine steps (see
            :class:`SweepPlan`); ``None`` defers to the runtime config.

    Raises:
        ExecutionError: On an empty model or cuisine axis.
    """
    if not models or not specs:
        raise ExecutionError(
            f"sweep grid needs at least one model and one cuisine, got "
            f"{len(models)} models x {len(specs)} cuisines"
        )
    return plan_cells(
        ((model, spec) for spec in specs for model in models),
        n_runs=n_runs,
        seed=seed,
        record_history=record_history,
        engine=engine,
        checkpoint_every=checkpoint_every,
    )


@dataclass(frozen=True)
class CellRuns:
    """One cell's merged results.

    Attributes:
        cell: The planned cell.
        runs: Completed runs aligned with ``cell.seeds``.
        cached: How many of the cell's runs were served from the cache.
    """

    cell: SweepCell
    runs: tuple["EvolutionRun", ...]
    cached: int = 0

    @property
    def model_name(self) -> str:
        return self.cell.model_name

    @property
    def region_code(self) -> str:
        return self.cell.region_code

    @property
    def executed(self) -> int:
        return len(self.runs) - self.cached


@dataclass(frozen=True)
class SweepResult:
    """Merged results and execution stats of one sharded sweep.

    Attributes:
        cells: Per-cell results, in plan order.
        executed: Runs dispatched to the backend.
        cached: Runs served from the on-disk cache.
        elapsed_seconds: Wall time of the whole sweep (lookups included).
        backend: Backend name the sweep ran on.
        jobs: Effective worker count.
    """

    cells: tuple[CellRuns, ...]
    executed: int
    cached: int
    elapsed_seconds: float
    backend: str
    jobs: int

    @property
    def total_runs(self) -> int:
        return self.executed + self.cached

    def runs_for(
        self, model_name: str, region_code: str
    ) -> tuple["EvolutionRun", ...]:
        """The runs of the unique cell matching (model name, cuisine).

        Raises:
            ExecutionError: If no cell matches, or several do (two cells
                may share a registry name — e.g. two ``NM`` configs in a
                sampling ablation; address those positionally via
                ``cells`` instead).
        """
        matches = [
            cell_runs
            for cell_runs in self.cells
            if cell_runs.model_name == model_name
            and cell_runs.region_code == region_code
        ]
        if not matches:
            raise ExecutionError(
                f"no sweep cell for model {model_name!r} on "
                f"region {region_code!r}"
            )
        if len(matches) > 1:
            raise ExecutionError(
                f"{len(matches)} sweep cells match model {model_name!r} on "
                f"region {region_code!r}; access result.cells positionally"
            )
        return matches[0].runs


def execute_sweep(
    plan: SweepPlan,
    runtime: RuntimeConfig | None = None,
    cache: RunCache | None = None,
) -> SweepResult:
    """Execute a planned sweep as one sharded pass over the backend.

    Every cell's requests are flattened into a single work list and
    dispatched through one executor map, so many small cells saturate
    the worker pool that a per-cell loop would repeatedly drain.  When a
    cache is configured (explicitly, or via ``runtime.cache_dir``),
    cached runs are served from disk and only the misses are dispatched;
    fresh results are written back so later sweeps — any backend, any
    grid slicing — reuse them.

    Args:
        plan: The planned grid (see :func:`plan_cells` / :func:`plan_grid`).
        runtime: Backend/jobs/cache selection; ``None`` = serial.
        cache: Explicit cache instance (overrides ``runtime.cache_dir``;
            useful for inspecting hit/miss stats).

    Returns:
        A :class:`SweepResult` with per-cell runs in plan order.
    """
    config = runtime if runtime is not None else RuntimeConfig()
    if cache is None and config.cache_dir is not None:
        cache = RunCache(config.cache_dir)

    start = time.perf_counter()
    requests = plan.requests()
    bounds: list[tuple[int, int]] = []
    offset = 0
    for cell in plan.cells:
        bounds.append((offset, offset + cell.n_runs))
        offset += cell.n_runs

    keys = None
    if cache is not None:
        # One canonicalization per cell, not per run — only the seed
        # varies within a cell.  The concatenation is request-aligned
        # because plan.requests() is cell-major in the same cell order.
        keys = [
            key
            for cell in plan.cells
            for key in fingerprint_many(
                cell.model, cell.spec, cell.seeds, plan.record_history,
                plan.engine,
            )
        ]
    results, dispatched = dispatch_requests(
        requests, keys, config, cache,
        checkpoint_every=plan.checkpoint_every,
    )

    dispatched_set = set(dispatched)
    cells = tuple(
        CellRuns(
            cell=cell,
            runs=tuple(results[lo:hi]),
            cached=sum(
                1 for index in range(lo, hi) if index not in dispatched_set
            ),
        )
        for cell, (lo, hi) in zip(plan.cells, bounds)
    )
    return SweepResult(
        cells=cells,
        executed=len(dispatched),
        cached=len(requests) - len(dispatched),
        elapsed_seconds=time.perf_counter() - start,
        backend=config.backend,
        jobs=config.resolve_jobs(),
    )
