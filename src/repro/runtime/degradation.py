"""Structured backend-degradation records shared by the runtime layers.

A degradation is the runtime choosing a weaker backend than the caller
asked for, because the requested one cannot serve the work: a
``process`` map over an unpicklable closure runs on threads
(:func:`~repro.runtime.runner.parallel_map`), a ``distributed`` map
that no worker attaches to within its deadline runs on the local
process pool (:class:`~repro.runtime.distributed.DistributedExecutor`).
Degrading is the right call — results still arrive, bit-identical — but
it must never be silent: throughput quietly collapses otherwise, and
the operator has no signal to fix the cause.

So every degradation is (a) warned once per callable via
:class:`BackendDegradationWarning`, and (b) recorded as a structured
:class:`BackendDegradation`, queryable after the run via
:func:`backend_degradations` — the pattern PR 5 introduced for the
process→thread case, extracted here so the distributed backend can
report through the same channel without importing the runner (which
would cycle: executor → distributed → runner → executor).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "BackendDegradation",
    "BackendDegradationWarning",
    "backend_degradations",
    "callable_name",
    "clear_backend_degradations",
    "record_degradation",
]


class BackendDegradationWarning(UserWarning):
    """Emitted when a map ran on a weaker backend than requested."""


@dataclass(frozen=True)
class BackendDegradation:
    """A recorded backend degradation event.

    Attributes:
        callable_name: Qualified name of the offending callable.
        requested: Backend the caller asked for.
        effective: Backend the map actually ran on.
        reason: Why the requested backend was unusable (the pickling
            error or attach-deadline report, verbatim).
    """

    callable_name: str
    requested: str
    effective: str
    reason: str


#: Degradations observed in this process, one entry per distinct
#: callable — the structured record behind the one-time warning.
_DEGRADATIONS: dict[str, BackendDegradation] = {}


def backend_degradations() -> tuple[BackendDegradation, ...]:
    """Every backend degradation recorded so far, in observation order."""
    return tuple(_DEGRADATIONS.values())


def clear_backend_degradations() -> None:
    """Reset the degradation record (tests; long-lived services)."""
    _DEGRADATIONS.clear()


def callable_name(fn: Callable) -> str:
    """Qualified name used to key degradation records."""
    return (
        f"{getattr(fn, '__module__', '?')}."
        f"{getattr(fn, '__qualname__', repr(fn))}"
    )


def record_degradation(
    fn: Callable,
    requested: str,
    effective: str,
    reason: str,
    hint: str,
) -> None:
    """Record a degradation and warn once per (callable, requested) pair.

    Args:
        fn: The mapped callable (keyed by qualified name).
        requested: Backend the caller asked for.
        effective: Backend the map actually ran on.
        reason: Why the requested backend was unusable, verbatim.
        hint: One actionable sentence appended to the warning telling
            the operator how to get the requested backend back.
    """
    key = f"{requested}:{callable_name(fn)}"
    if key in _DEGRADATIONS:
        return
    _DEGRADATIONS[key] = BackendDegradation(
        callable_name=callable_name(fn),
        requested=requested,
        effective=effective,
        reason=reason,
    )
    warnings.warn(
        f"backend={requested!r} degraded to {effective!r} for "
        f"{callable_name(fn)}: {reason}; {hint}",
        BackendDegradationWarning,
        stacklevel=4,
    )
