"""Run execution: deterministic fan-out of model runs over a backend.

This is the seam between the *what* (a model, a cuisine spec, a list of
per-run integer seeds from :func:`repro.rng.spawn_seeds`) and the *how*
(which executor backend, how many workers, whether a run cache sits in
front).  Determinism is structural rather than incidental:

1. the parent draws every per-run seed up front, in one place, from the
   master generator — so the master stream advances identically no
   matter the backend;
2. each worker rebuilds its generator from its integer seed alone via
   :func:`repro.rng.rng_from_seed` — so a run's result is a pure
   function of ``(model, spec, seed)``;
3. executors preserve input order — so the assembled ensemble is
   bit-identical across serial, thread and process execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from repro.errors import RunCacheError
from repro.rng import rng_from_seed
from repro.runtime.cache import RunCache, fingerprint_many, run_fingerprint
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import get_executor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.models.base import CulinaryEvolutionModel, EvolutionRun
    from repro.models.params import CuisineSpec

__all__ = ["RunRequest", "execute_request", "execute_runs", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class RunRequest:
    """One simulation to execute: a pure, picklable work item.

    Attributes:
        model: The configured evolution model (frozen params/fitness).
        spec: Cuisine inputs.
        seed: Integer child seed from :func:`repro.rng.spawn_seeds`.
        record_history: Forwarded to ``model.run``.
        engine: Per-run engine override forwarded to ``model.run``;
            ``None`` uses the model's ``params.engine``.  The cache key
            covers the resolved engine either way.
    """

    model: "CulinaryEvolutionModel"
    spec: "CuisineSpec"
    seed: int
    record_history: bool = False
    engine: str | None = None

    def fingerprint(self) -> str:
        """Cache key for this request's complete inputs."""
        return run_fingerprint(
            self.model, self.spec, self.seed, self.record_history,
            self.engine,
        )


def execute_request(request: RunRequest) -> "EvolutionRun":
    """Execute one run (module-level so the process backend can pickle it)."""
    return request.model.run(
        request.spec,
        seed=rng_from_seed(request.seed),
        record_history=request.record_history,
        engine=request.engine,
    )


def dispatch_requests(
    requests: Sequence[RunRequest],
    keys: Sequence[str] | None,
    config: RuntimeConfig,
    cache: RunCache | None,
) -> tuple[list["EvolutionRun"], list[int]]:
    """Serve requests from cache, dispatch the misses, write fresh runs back.

    The shared core of :func:`execute_runs` and
    :func:`~repro.runtime.sweep.execute_sweep` — one place owns the
    cache policy: lookups happen up front, only misses reach the
    backend (in request order, so order-preserving executors keep the
    result list aligned with ``requests``), and a cache *write* failure
    disables further writes rather than discarding computed results.

    Args:
        requests: The work items, in result order.
        keys: Cache key per request (aligned), or ``None`` to skip the
            cache entirely.
        config: Backend/jobs selection.
        cache: Cache instance; ``None`` disables lookups and writes.

    Returns:
        ``(results, dispatched)``: results aligned with ``requests``,
        plus the indices that were executed rather than served from
        cache.
    """
    results: list["EvolutionRun | None"] = [None] * len(requests)
    pending: list[int] = []
    if cache is not None and keys is not None:
        for index, key in enumerate(keys):
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
    else:
        pending = list(range(len(requests)))

    if pending:
        executor = get_executor(config)
        computed = executor.map(
            execute_request, [requests[index] for index in pending]
        )
        for index, run in zip(pending, computed):
            results[index] = run
            if cache is not None and keys is not None:
                # The cache is an optimization: a write failure
                # (disk full, permissions, unpicklable payload) must
                # never discard computed results.  Stop writing after
                # the first failure; lookups already succeeded.
                try:
                    cache.put(keys[index], run)
                except RunCacheError:
                    cache = None
    return results, pending  # type: ignore[return-value]


def execute_runs(
    model: "CulinaryEvolutionModel",
    spec: "CuisineSpec",
    seeds: Sequence[int],
    runtime: RuntimeConfig | None = None,
    record_history: bool = False,
    cache: RunCache | None = None,
    engine: str | None = None,
) -> list["EvolutionRun"]:
    """Execute one run per seed, in seed order, through the runtime.

    When a cache is configured (explicitly, or via
    ``runtime.cache_dir``), cached runs are served from disk and only
    the misses are dispatched to the backend; fresh results are written
    back so later invocations — any backend, any process — reuse them.

    Args:
        model: The configured model.
        spec: Cuisine inputs.
        seeds: Per-run integer seeds (order defines result order).
        runtime: Backend/jobs/cache selection; ``None`` = serial.
        record_history: Forwarded to every run.
        cache: Explicit cache instance (overrides ``runtime.cache_dir``;
            useful for inspecting hit/miss stats).
        engine: Per-run engine override forwarded to every run
            (default: the model's ``params.engine``).

    Returns:
        Runs aligned with ``seeds``.
    """
    config = runtime if runtime is not None else RuntimeConfig()
    if cache is None and config.cache_dir is not None:
        cache = RunCache(config.cache_dir)
    requests = [
        RunRequest(model=model, spec=spec, seed=int(seed),
                   record_history=record_history, engine=engine)
        for seed in seeds
    ]
    keys = None
    if cache is not None:
        # One canonicalization for the whole batch — only the seed
        # varies between requests.
        keys = fingerprint_many(
            model, spec, [request.seed for request in requests],
            record_history, engine,
        )
    results, _dispatched = dispatch_requests(requests, keys, config, cache)
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    runtime: RuntimeConfig | None = None,
) -> list[R]:
    """Order-preserving map for arbitrary (closure-friendly) callables.

    Experiment drivers use this for per-cuisine fan-out where the work
    is a closure over the experiment context.  Closures cannot cross
    process boundaries, so the ``process`` backend degrades to threads
    here; model runs — the actual hot path — go through
    :func:`execute_runs`, which is fully process-parallel.
    """
    config = runtime if runtime is not None else RuntimeConfig()
    if config.backend == "process":
        config = RuntimeConfig(
            backend="thread", jobs=config.jobs, cache_dir=config.cache_dir
        )
    return get_executor(config).map(fn, items)
