"""Run execution: deterministic fan-out of model runs over a backend.

This is the seam between the *what* (a model, a cuisine spec, a list of
per-run integer seeds from :func:`repro.rng.spawn_seeds`) and the *how*
(which executor backend, how many workers, whether a run cache sits in
front).  Determinism is structural rather than incidental:

1. the parent draws every per-run seed up front, in one place, from the
   master generator — so the master stream advances identically no
   matter the backend;
2. each worker rebuilds its generator from its integer seed alone via
   :func:`repro.rng.rng_from_seed` — so a run's result is a pure
   function of ``(model, spec, seed)``;
3. executors preserve input order — so the assembled ensemble is
   bit-identical across serial, thread and process execution.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from repro.errors import RunCacheError
from repro.rng import rng_from_seed
from repro.runtime.cache import RunCache, fingerprint_many, run_fingerprint
from repro.runtime.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    RunCheckpointer,
    consume_armed_kill,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.degradation import (
    BackendDegradation,
    BackendDegradationWarning,
    backend_degradations,
    clear_backend_degradations,
    record_degradation,
)
from repro.runtime.executor import get_executor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.models.base import CulinaryEvolutionModel, EvolutionRun
    from repro.models.params import CuisineSpec

__all__ = [
    "ArchipelagoRequest",
    "BackendDegradation",
    "BackendDegradationWarning",
    "BatchRequest",
    "RunRequest",
    "backend_degradations",
    "clear_backend_degradations",
    "execute_archipelago",
    "execute_batch",
    "execute_request",
    "execute_runs",
    "parallel_map",
]

T = TypeVar("T")
R = TypeVar("R")


# Degradation records live in repro.runtime.degradation (shared with the
# distributed backend, which cannot import this module without cycling);
# re-exported here because this is where PR 5 introduced them.


def _record_degradation(
    fn: Callable, reason: str, requested: str = "process"
) -> None:
    """Record a →thread degradation and warn once per callable."""
    record_degradation(
        fn,
        requested=requested,
        effective="thread",
        reason=reason,
        hint=(
            "pass a module-level function over picklable payloads to "
            f"keep {requested} parallelism"
        ),
    )


def _pickling_blocker(fn: Callable, probe_item: object) -> str | None:
    """Why this map cannot cross a process boundary, or ``None`` if it can.

    Probes the callable and the first work item (maps are near-always
    homogeneous), so both closure callables *and* module-level callables
    over unpicklable payloads degrade to threads instead of blowing up
    inside the pool — the pre-degradation behavior every caller of
    :func:`parallel_map` could rely on.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:  # pickle raises a zoo of types here
        return f"callable does not pickle ({type(exc).__name__}: {exc})"
    try:
        pickle.dumps(probe_item)
    except Exception as exc:
        return f"work item does not pickle ({type(exc).__name__}: {exc})"
    return None


@dataclass(frozen=True)
class RunRequest:
    """One simulation to execute: a pure, picklable work item.

    Attributes:
        model: The configured evolution model (frozen params/fitness).
        spec: Cuisine inputs.
        seed: Integer child seed from :func:`repro.rng.spawn_seeds`.
        record_history: Forwarded to ``model.run``.
        engine: Per-run engine override forwarded to ``model.run``
            (``"reference"``, ``"vectorized"`` or ``"batched"``;
            ``None`` uses the model's ``params.engine``).  The cache
            key covers the resolved engine either way.
        checkpoint: Optional crash-consistency policy (DESIGN.md §9).
            An execution concern, not part of the run's identity:
            :meth:`fingerprint` deliberately excludes it, so
            checkpointed and plain executions of the same run share a
            cache entry.
    """

    model: "CulinaryEvolutionModel"
    spec: "CuisineSpec"
    seed: int
    record_history: bool = False
    engine: str | None = None
    checkpoint: CheckpointPolicy | None = None

    def fingerprint(self) -> str:
        """Cache key for this request's complete inputs."""
        return run_fingerprint(
            self.model, self.spec, self.seed, self.record_history,
            self.engine,
        )


def _checkpoint_key(item: "RunRequest | BatchRequest") -> str:
    """Stable snapshot key for a work item.

    Single runs key on their cache fingerprint; a batch keys on the
    digest of its runs' fingerprints in seed order — any change to the
    batch's composition (or any member's inputs) keys differently, so
    a resumed batch can never load another batch's snapshot.
    """
    if isinstance(item, BatchRequest):
        parts = fingerprint_many(
            item.model, item.spec, list(item.seeds),
            item.record_history, item.engine,
        )
        return hashlib.sha256("\n".join(parts).encode("ascii")).hexdigest()
    return item.fingerprint()


def _checkpointer_for(
    item: "RunRequest | BatchRequest",
) -> RunCheckpointer | None:
    """Build the item's checkpointer, if snapshots (or a kill) are due.

    Consumes any armed ``kill_at_step`` fault (fault injection arms it
    before the task body runs; see :func:`repro.runtime.faults.inject_fault`)
    so even an unpoliced item honors an injected mid-run kill.
    """
    kill = consume_armed_kill()
    policy = item.checkpoint
    if policy is None and kill is None:
        return None
    store = CheckpointStore(policy.directory) if policy is not None else None
    return RunCheckpointer(
        store,
        _checkpoint_key(item),
        every=policy.every if policy is not None else 0,
        kill_at_step=kill,
    )


def _is_island_member(model: "CulinaryEvolutionModel") -> bool:
    """Duck-typed check for :class:`~repro.models.islands.IslandMemberModel`.

    Kept attribute-based (like :func:`_group_signature`) so the runtime
    never imports the models layer at module scope.
    """
    return (
        getattr(model, "simulation", None) is not None
        and getattr(model, "member_index", None) is not None
    )


def execute_request(request: RunRequest) -> "EvolutionRun":
    """Execute one run (module-level so the process backend can pickle it).

    Regular models receive their seed through the usual
    :func:`repro.rng.rng_from_seed` boundary.  Island members receive
    the raw integer instead: their request seed *is* the archipelago
    master seed (:func:`repro.models.islands.island_seed_streams`), so
    a dispatched member run stays bit-identical to a direct
    ``member.run(spec, seed=master)`` call with the same integer.
    """
    checkpointer = _checkpointer_for(request)
    seed = (
        request.seed
        if _is_island_member(request.model)
        else rng_from_seed(request.seed)
    )
    run = request.model.run(
        request.spec,
        seed=seed,
        record_history=request.record_history,
        engine=request.engine,
        checkpointer=checkpointer,
    )
    if checkpointer is not None:
        checkpointer.finished()
    return run


@dataclass(frozen=True)
class BatchRequest:
    """A same-cell group of runs executed as one batched pass.

    The batched engine's unit of work (DESIGN.md §7): every seed shares
    the same model, spec, history flag and engine override, so the whole
    group advances through :func:`repro.models.batched.run_batched` in
    one set of stacked arrays instead of ``len(seeds)`` per-run
    dispatches.  Like :class:`RunRequest` it is a pure, picklable
    payload — a batch can cross a process boundary whole.

    Attributes:
        model: The configured evolution model (shared by every run).
        spec: Cuisine inputs (shared).
        seeds: Integer child seeds, one per run; result order follows
            seed order.
        record_history: Forwarded to the batch.
        engine: The requests' engine override, carried for provenance
            (grouping already proved it resolves to ``"batched"``).
        checkpoint: Optional crash-consistency policy (DESIGN.md §9);
            excluded from every member run's cache key, like
            :attr:`RunRequest.checkpoint`.
    """

    model: "CulinaryEvolutionModel"
    spec: "CuisineSpec"
    seeds: tuple[int, ...]
    record_history: bool = False
    engine: str | None = None
    checkpoint: CheckpointPolicy | None = None


def execute_batch(batch: BatchRequest) -> list["EvolutionRun"]:
    """Execute a batch of runs in one stacked pass, in seed order.

    Module-level so the process backend can pickle it.  Each run of the
    result is bit-identical to what :func:`execute_request` would have
    produced for the same seed — batch composition never leaks into
    per-run results — which is what keeps batched runs individually
    cacheable.
    """
    from repro.models.batched import run_batched

    checkpointer = _checkpointer_for(batch)
    runs = run_batched(
        batch.model,
        batch.spec,
        [rng_from_seed(seed) for seed in batch.seeds],
        record_history=batch.record_history,
        checkpointer=checkpointer,
    )
    if checkpointer is not None:
        checkpointer.finished()
    return runs


@dataclass(frozen=True)
class ArchipelagoRequest:
    """A same-(simulation, seed) group of island members, run once.

    The island engine's unit of work (DESIGN.md §10): every member of
    an :class:`~repro.models.islands.IslandSimulation` is an
    independently cacheable run, but they are all produced by *one*
    archipelago execution for a given master seed.  The dispatcher
    folds consecutive same-simulation same-seed member requests into
    this item so the simulation runs once, not once per member.  Like
    the other work items it is a pure, picklable payload.

    Attributes:
        simulation: The archipelago to execute.
        members: Member indices to return, in request order.
        seed: The integer master seed shared by the group.
        record_history: Forwarded to the simulation.
        checkpoint: Accepted for dispatch-policy compatibility and
            ignored — the scalar archipelago loop does not snapshot.
    """

    simulation: "object"
    members: tuple[int, ...]
    seed: int
    record_history: bool = False
    checkpoint: CheckpointPolicy | None = None


def execute_archipelago(request: ArchipelagoRequest) -> list["EvolutionRun"]:
    """Execute one archipelago, returning the requested members' runs.

    Module-level so the process backend can pickle it.  The raw integer
    master seed passes straight through — the same seed a solo
    :func:`execute_request` hands an island member and a direct
    ``IslandSimulation.run(seed=master)`` uses — so grouped, solo and
    direct member runs are all bit-identical.
    """
    # Islands do not checkpoint; consume any armed kill_at_step fault
    # so it cannot leak into a later task on this worker.
    consume_armed_kill()
    return request.simulation.run_members(
        list(request.members),
        seed=request.seed,
        record_history=request.record_history,
    )


def _execute_work(
    item: "RunRequest | BatchRequest | ArchipelagoRequest",
) -> list["EvolutionRun"]:
    """Execute one work item — single run, batch or archipelago — as a
    run list.

    The uniform shape lets one order-preserving ``executor.map`` carry
    a mixed sequence of singles and groups; the caller flattens.
    """
    if isinstance(item, BatchRequest):
        return execute_batch(item)
    if isinstance(item, ArchipelagoRequest):
        return execute_archipelago(item)
    return [execute_request(item)]


def _group_signature(request: RunRequest) -> tuple | None:
    """The adjacency-grouping key for one pending request, if any.

    Two kinds of request fold into group work items:

    * island members (duck-typed on the ``simulation``/``member_index``
      attributes of :class:`~repro.models.islands.IslandMemberModel`)
      group by (simulation identity, master seed, history flag) — every
      member of one archipelago execution;
    * batched-resolving requests group by (model identity, spec
      identity, history flag, engine override) — one same-cell stacked
      pass (DESIGN.md §7).
    """
    if _is_island_member(request.model):
        return ("islands", id(request.model.simulation), request.seed,
                request.record_history)
    if request.model.resolve_engine(request.engine) == "batched":
        return ("batched", id(request.model), id(request.spec),
                request.record_history, request.engine)
    return None


def _plan_work(
    requests: Sequence[RunRequest], pending: Sequence[int]
) -> list["RunRequest | BatchRequest | ArchipelagoRequest"]:
    """Group adjacent groupable misses into batch/archipelago items.

    Walks the pending indices in dispatch order and folds consecutive
    requests sharing a :func:`_group_signature` into one work item:
    batched-resolving same-cell runs become a :class:`BatchRequest`
    (one stacked pass), island members of the same simulation and
    master seed become an :class:`ArchipelagoRequest` (one archipelago
    execution).  Everything else (other engines, singleton groups)
    stays a plain per-run request.  Identity-based grouping is
    deliberately conservative: :func:`execute_runs`, the sweep layer
    and :func:`~repro.models.islands.run_island_ensemble` build their
    requests from shared objects in grouping order, so groups always
    form there, while equal-but-distinct configurations never
    accidentally merge.
    """
    work: list["RunRequest | BatchRequest | ArchipelagoRequest"] = []
    group: list[RunRequest] = []
    group_signature: tuple | None = None

    def flush() -> None:
        if not group:
            return
        first = group[0]
        if len(group) == 1:
            work.append(first)
        elif group_signature is not None and group_signature[0] == "islands":
            work.append(
                ArchipelagoRequest(
                    simulation=first.model.simulation,
                    members=tuple(
                        request.model.member_index for request in group
                    ),
                    seed=first.seed,
                    record_history=first.record_history,
                )
            )
        else:
            work.append(
                BatchRequest(
                    model=first.model,
                    spec=first.spec,
                    seeds=tuple(request.seed for request in group),
                    record_history=first.record_history,
                    engine=first.engine,
                )
            )
        group.clear()

    for index in pending:
        request = requests[index]
        signature = _group_signature(request)
        if signature is None or signature != group_signature:
            flush()
            group_signature = signature
        if signature is None:
            work.append(request)
        else:
            group.append(request)
    flush()
    return work


@dataclass(frozen=True)
class _CacheThroughWork:
    """A work item bundled with its cache destination and keys.

    The distributed backend's unit of dispatch: the worker that computes
    the runs also writes them into the shared
    :class:`~repro.runtime.cache.RunCache` (keyed per run, aligned with
    the item's seed order), making the cache directory the result
    rendezvous — an interrupted sweep resumes from whatever any worker
    finished, even if the coordinator never saw it.
    """

    item: "RunRequest | BatchRequest | ArchipelagoRequest"
    cache_dir: str
    keys: tuple[str, ...]


def _execute_work_write_through(
    work: _CacheThroughWork,
) -> list["EvolutionRun"]:
    """Execute one work item and write its runs straight into the cache.

    Module-level so the distributed workers can pickle it.  A cache
    write failure on the worker is tolerated — results still travel
    back through the spool; the cache is the resumability layer, not
    the only channel.  Re-executed attempts (a reclaimed task) simply
    overwrite with bit-identical payloads: runs are pure functions of
    their request, and cache puts are atomic.
    """
    runs = _execute_work(work.item)
    try:
        cache = RunCache(work.cache_dir)
        for key, run in zip(work.keys, runs):
            cache.put(key, run)
    except RunCacheError:
        pass
    return runs


def _plan_write_through(
    work: Sequence["RunRequest | BatchRequest | ArchipelagoRequest"],
    keys: Sequence[str],
    pending: Sequence[int],
    cache_dir: str,
) -> list[_CacheThroughWork]:
    """Pair each planned work item with the cache keys of its runs."""
    wrapped: list[_CacheThroughWork] = []
    cursor = 0
    for item in work:
        if isinstance(item, BatchRequest):
            count = len(item.seeds)
        elif isinstance(item, ArchipelagoRequest):
            count = len(item.members)
        else:
            count = 1
        wrapped.append(
            _CacheThroughWork(
                item=item,
                cache_dir=cache_dir,
                keys=tuple(
                    keys[pending[cursor + offset]]
                    for offset in range(count)
                ),
            )
        )
        cursor += count
    return wrapped


def dispatch_requests(
    requests: Sequence[RunRequest],
    keys: Sequence[str] | None,
    config: RuntimeConfig,
    cache: RunCache | None,
    checkpoint_every: int | None = None,
) -> tuple[list["EvolutionRun"], list[int]]:
    """Serve requests from cache, dispatch the misses, write fresh runs back.

    The shared core of :func:`execute_runs` and
    :func:`~repro.runtime.sweep.execute_sweep` — one place owns the
    cache policy: lookups happen up front, only misses reach the
    backend (in request order, so order-preserving executors keep the
    result list aligned with ``requests``), and a cache *write* failure
    disables further writes rather than discarding computed results.

    Misses whose engine resolves to ``"batched"`` are additionally
    folded into same-cell :class:`BatchRequest` groups (see
    :func:`_plan_work`) and executed as single stacked passes; because
    batched runs are bit-identical regardless of batch composition,
    cache hits splitting a group never change any run's result.

    Args:
        requests: The work items, in result order.
        keys: Cache key per request (aligned), or ``None`` to skip the
            cache entirely.
        config: Backend/jobs selection.
        cache: Cache instance; ``None`` disables lookups and writes.
        checkpoint_every: Snapshot every N engine steps (DESIGN.md §9);
            ``None`` falls back to ``config.resolve_checkpoint_every()``
            and ``0`` disables.  Checkpoints need a durable home, so
            the policy only attaches when a cache is configured — the
            snapshots live beside the run cache in its directory.

    Returns:
        ``(results, dispatched)``: results aligned with ``requests``,
        plus the indices that were executed rather than served from
        cache.
    """
    results: list["EvolutionRun | None"] = [None] * len(requests)
    pending: list[int] = []
    if cache is not None and keys is not None:
        for index, key in enumerate(keys):
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
    else:
        pending = list(range(len(requests)))

    if pending:
        executor = get_executor(config)
        work = _plan_work(requests, pending)
        every = (
            checkpoint_every
            if checkpoint_every is not None
            else config.resolve_checkpoint_every()
        )
        if every and cache is not None:
            policy = CheckpointPolicy(
                directory=str(cache.directory), every=every
            )
            work = [replace(item, checkpoint=policy) for item in work]
        # Under the distributed backend the *workers* write fresh runs
        # into the shared cache directory (the result rendezvous,
        # DESIGN.md §8) and the coordinator skips its own puts; every
        # other backend writes back here, after the map.
        write_through = (
            config.backend == "distributed"
            and cache is not None
            and keys is not None
        )
        if write_through:
            computed_lists = executor.map(
                _execute_work_write_through,
                _plan_write_through(
                    work, keys, pending, str(cache.directory)
                ),
            )
        else:
            computed_lists = executor.map(_execute_work, work)
        computed = [run for runs in computed_lists for run in runs]
        for index, run in zip(pending, computed):
            results[index] = run
            if cache is not None and keys is not None and not write_through:
                # The cache is an optimization: a write failure
                # (disk full, permissions, unpicklable payload) must
                # never discard computed results.  Stop writing after
                # the first failure; lookups already succeeded.
                try:
                    cache.put(keys[index], run)
                except RunCacheError:
                    cache = None
    return results, pending  # type: ignore[return-value]


def execute_runs(
    model: "CulinaryEvolutionModel",
    spec: "CuisineSpec",
    seeds: Sequence[int],
    runtime: RuntimeConfig | None = None,
    record_history: bool = False,
    cache: RunCache | None = None,
    engine: str | None = None,
) -> list["EvolutionRun"]:
    """Execute one run per seed, in seed order, through the runtime.

    When a cache is configured (explicitly, or via
    ``runtime.cache_dir``), cached runs are served from disk and only
    the misses are dispatched to the backend; fresh results are written
    back so later invocations — any backend, any process — reuse them.

    Args:
        model: The configured model.
        spec: Cuisine inputs.
        seeds: Per-run integer seeds (order defines result order).
        runtime: Backend/jobs/cache selection; ``None`` = serial.
        record_history: Forwarded to every run.
        cache: Explicit cache instance (overrides ``runtime.cache_dir``;
            useful for inspecting hit/miss stats).
        engine: Per-run engine override forwarded to every run
            (``"reference"``, ``"vectorized"`` or ``"batched"``;
            default: the model's ``params.engine``).  An engine
            resolving to ``"batched"`` executes same-cell cache
            misses as stacked group passes — bit-identical to
            per-run vectorized execution (DESIGN.md §7); CM-V
            degrades to vectorized.

    Returns:
        Runs aligned with ``seeds``.
    """
    config = runtime if runtime is not None else RuntimeConfig()
    if cache is None and config.cache_dir is not None:
        cache = RunCache(config.cache_dir)
    requests = [
        RunRequest(model=model, spec=spec, seed=int(seed),
                   record_history=record_history, engine=engine)
        for seed in seeds
    ]
    keys = None
    if cache is not None:
        # One canonicalization for the whole batch — only the seed
        # varies between requests.
        keys = fingerprint_many(
            model, spec, [request.seed for request in requests],
            record_history, engine,
        )
    results, _dispatched = dispatch_requests(requests, keys, config, cache)
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    runtime: RuntimeConfig | None = None,
    prefer_thread: bool = False,
) -> list[R]:
    """Order-preserving map honoring ``process``/``distributed`` for
    picklable work.

    Module-level callables over picklable payloads — e.g. the per-run
    mining tasks of :func:`~repro.models.ensemble.ensemble_curve` — run
    truly process-parallel under ``backend="process"`` and through the
    work queue under ``backend="distributed"``.  Work that cannot
    cross a process boundary (closure/lambda callables — probed up
    front together with the first item — or a later item/result that
    fails to pickle mid-map) degrades to the thread backend; the
    degradation is no longer silent: a one-time
    :class:`BackendDegradationWarning` names the callable and the
    pickling error, and the event is recorded
    (:func:`backend_degradations`).  Map work must therefore be
    effect-free: the mid-map fallback re-runs the whole batch on
    threads (exactly what every call did before process support).

    Args:
        fn: The mapped callable.  Must be module-level (and its items
            picklable) for the process backend to apply.
        items: Work items, order defines result order on every backend.
        runtime: Backend/jobs selection; ``None`` = serial.
        prefer_thread: Caller declares ``fn`` closure-bound up front —
            ``process`` requests run on threads without the warning.
            For fan-outs whose work is cheap shared-memory analysis
            (per-cuisine table rows), where threads are the intended
            backend and a warning would be noise.
    """
    config = runtime if runtime is not None else RuntimeConfig()
    needs_pickling = config.backend == "distributed" or (
        config.backend == "process" and config.resolve_jobs() > 1
    )
    if needs_pickling:
        items = list(items)
        thread_config = RuntimeConfig(
            backend="thread", jobs=config.jobs, cache_dir=config.cache_dir
        )
        if prefer_thread:
            return get_executor(thread_config).map(fn, items)
        reason = _pickling_blocker(fn, items[0]) if items else None
        if reason is not None:
            _record_degradation(fn, reason, requested=config.backend)
            return get_executor(thread_config).map(fn, items)
        try:
            return get_executor(config).map(fn, items)
        except (pickle.PicklingError, AttributeError) as exc:
            # Safety net for what the first-item probe cannot see:
            # heterogeneous item lists or unpicklable *results*.  Map
            # work is effect-free by contract (it always ran whole on
            # threads before process support), so re-running the full
            # batch on threads is safe.
            _record_degradation(
                fn,
                f"map failed to cross the process boundary "
                f"({type(exc).__name__}: {exc})",
                requested=config.backend,
            )
            return get_executor(thread_config).map(fn, items)
    return get_executor(config).map(fn, items)
