"""Parallel ensemble execution runtime.

The paper's headline statistics are ensemble averages ("we create 100
such sets of random copy-mutate recipes and study the aggregated
statistics"), and every experiment driver bottlenecks on executing those
independent runs.  This subsystem makes that fan-out a first-class,
swappable concern:

* :class:`RuntimeConfig` — backend ("serial" / "thread" / "process" /
  "distributed"), worker count, optional cache directory, and the
  distributed backend's :class:`DistributedConfig` policy;
* :mod:`~repro.runtime.executor` — order-preserving map backends;
* :mod:`~repro.runtime.distributed` — the file-based work-queue
  backend: a spool directory, lease-based fault tolerance (bounded
  retries, heartbeats, per-task timeouts), ``repro worker`` processes,
  and structured :class:`TaskAttempt` records (DESIGN.md §8);
* :mod:`~repro.runtime.faults` — fault injection (kill / hang / delay /
  kill_at_step) for proving the sweep survives worker failure
  bit-identically;
* :mod:`~repro.runtime.checkpoint` — crash-consistent mid-run
  snapshots (:class:`CheckpointStore` / :class:`RunCheckpointer`) so
  an interrupted run resumes bit-identically from its latest valid
  snapshot instead of replaying from step 0 (DESIGN.md §9);
* :mod:`~repro.runtime.integrity` — structured, queryable
  :class:`CacheCorruption` records for every corrupt entry a store
  evicts or quarantines;
* :mod:`~repro.runtime.spool_tools` — spool telemetry and debris
  compaction behind ``repro spool stats|compact``;
* :mod:`~repro.runtime.runner` — deterministic run execution
  (:func:`execute_runs`) built on per-run integer seed streams,
  same-cell grouping of ``engine="batched"`` work into single stacked
  passes (DESIGN.md §7), plus :func:`parallel_map` for per-cuisine
  fan-out inside experiments;
* :mod:`~repro.runtime.cache` — an on-disk run cache keyed by
  ``(model, params, cuisine, seed)`` shared across backends and
  invocations;
* :mod:`~repro.runtime.curve_cache` — a content-addressed cache of
  mined rank-frequency curves layered beside the run cache (same
  directory, distinct entry suffix), so warm sweeps and experiments
  skip re-mining entirely (DESIGN.md §6);
* :mod:`~repro.runtime.sweep` — the grid sweep planner: expand a full
  (model × cuisine × seed) grid into one flat request list, shard it
  across the backend in a single pass, and merge results back into
  per-cell ensembles (:func:`plan_grid` / :func:`execute_sweep`).

The determinism contract: for a fixed master seed, every backend
produces **bit-identical** :class:`~repro.models.base.EvolutionRun`
results, because per-run seeds are drawn once in the parent and each
worker reconstructs its generator from the integer seed alone.
"""

from repro.runtime.cache import (
    CACHE_FORMAT_VERSION,
    CacheDiskStats,
    CacheStats,
    PickleStore,
    RunCache,
    fingerprint_many,
    run_fingerprint,
)
from repro.runtime.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointPolicy,
    CheckpointStore,
    ResumeEvent,
    RunCheckpointer,
    clear_resume_events,
    resume_events,
)
from repro.runtime.config import BACKENDS, DistributedConfig, RuntimeConfig
from repro.runtime.curve_cache import (
    fingerprint_planes,
    CURVE_FORMAT_VERSION,
    CurveCache,
    curve_key,
    transactions_fingerprint,
)
from repro.runtime.distributed import (
    DistributedExecutor,
    LeaseLedger,
    Spool,
    TaskAttempt,
    WorkerSummary,
    clear_task_attempts,
    run_worker,
    signal_stop,
    task_attempts,
)
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.integrity import (
    CacheCorruption,
    CacheCorruptionWarning,
    cache_corruptions,
    clear_cache_corruptions,
)
from repro.runtime.runner import (
    ArchipelagoRequest,
    BackendDegradation,
    BackendDegradationWarning,
    BatchRequest,
    RunRequest,
    backend_degradations,
    clear_backend_degradations,
    execute_archipelago,
    execute_batch,
    execute_request,
    execute_runs,
    parallel_map,
)
from repro.runtime.sweep import (
    CellRuns,
    SweepCell,
    SweepPlan,
    SweepResult,
    execute_sweep,
    plan_cells,
    plan_grid,
    select_regions,
)
from repro.runtime.spool_tools import (
    SpoolCompaction,
    SpoolStats,
    compact_spool,
    spool_stats,
)

__all__ = [
    "ArchipelagoRequest",
    "BACKENDS",
    "BackendDegradation",
    "BackendDegradationWarning",
    "BatchRequest",
    "CACHE_FORMAT_VERSION",
    "CHECKPOINT_FORMAT_VERSION",
    "CURVE_FORMAT_VERSION",
    "CacheCorruption",
    "CacheCorruptionWarning",
    "CacheDiskStats",
    "CacheStats",
    "CellRuns",
    "CheckpointPolicy",
    "CheckpointStore",
    "CurveCache",
    "DistributedConfig",
    "DistributedExecutor",
    "Executor",
    "FaultPlan",
    "FaultSpec",
    "LeaseLedger",
    "PickleStore",
    "ProcessExecutor",
    "ResumeEvent",
    "RunCache",
    "RunCheckpointer",
    "RunRequest",
    "RuntimeConfig",
    "SerialExecutor",
    "Spool",
    "SpoolCompaction",
    "SpoolStats",
    "SweepCell",
    "SweepPlan",
    "SweepResult",
    "TaskAttempt",
    "ThreadExecutor",
    "WorkerSummary",
    "backend_degradations",
    "cache_corruptions",
    "clear_backend_degradations",
    "clear_cache_corruptions",
    "clear_resume_events",
    "clear_task_attempts",
    "compact_spool",
    "curve_key",
    "execute_archipelago",
    "execute_batch",
    "execute_request",
    "execute_runs",
    "execute_sweep",
    "fingerprint_many",
    "fingerprint_planes",
    "get_executor",
    "parallel_map",
    "plan_cells",
    "plan_grid",
    "resume_events",
    "run_fingerprint",
    "run_worker",
    "select_regions",
    "signal_stop",
    "spool_stats",
    "task_attempts",
    "transactions_fingerprint",
]
