"""Spool telemetry and compaction (``repro spool stats|compact``).

A long-lived spool directory (DESIGN.md §8) accumulates debris that the
happy path never cleans: claims and heartbeats of workers that died
mid-task (the coordinator requeues the *task*, but a vanished
coordinator leaves the files), ``*.alive`` markers of long-gone
workers, temp files stranded by writers killed inside the
temp-write/rename window, and result payloads nobody collected.  None
of it breaks correctness — claims are leased, temps are never read,
results are nonce-scoped — but debris makes a shared spool unreadable
to operators and grows without bound.

This module gives the debris a name and a broom:

* :func:`spool_stats` — one read-only snapshot of queue depth, worker
  liveness, per-outcome attempt counts and every debris category;
* :func:`compact_spool` — remove exactly the debris, never live state:
  staleness is judged by heartbeat/mtime age against ``stale_after``,
  so an in-flight claim, a beating worker or a just-written temp file
  is left alone.

Both are pure directory scans — they take no locks and can run beside
an active map (entries vanishing mid-scan are skipped).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExecutionError
from repro.runtime.distributed import (
    ALIVE_SUFFIX,
    CLAIM_SUFFIX,
    HEARTBEAT_SUFFIX,
    RESULT_SUFFIX,
    TASK_SUFFIX,
    Spool,
)

__all__ = [
    "SpoolCompaction",
    "SpoolStats",
    "compact_spool",
    "spool_stats",
]


@dataclass(frozen=True)
class SpoolStats:
    """One snapshot of a spool directory's state and debris.

    Attributes:
        pending_tasks: Task files waiting in ``tasks/``.
        claimed: Leased task files in ``claimed/``.
        stale_claims: Claims whose heartbeat is missing or older than
            ``stale_after`` — dead-worker debris awaiting compaction.
        results: Uncollected result payloads in ``results/``.
        live_workers: ``*.alive`` markers touched within
            ``stale_after``.
        dead_workers: ``*.alive`` markers older than that — workers
            that exited without cleanup (or were killed).
        orphan_tmp: Stranded ``*.tmp.<pid>`` files anywhere in the
            layout, from writers killed between temp write and rename.
        attempts: Per-outcome counts parsed from ``attempts.jsonl``
            (empty when the coordinator never ran here).
        stop_signaled: Whether the drain-and-exit sentinel is present.
    """

    pending_tasks: int
    claimed: int
    stale_claims: int
    results: int
    live_workers: int
    dead_workers: int
    orphan_tmp: int
    attempts: dict[str, int]
    stop_signaled: bool


@dataclass(frozen=True)
class SpoolCompaction:
    """What one :func:`compact_spool` pass removed, by category."""

    stale_claims: int
    orphan_heartbeats: int
    dead_workers: int
    stale_results: int
    orphan_tmp: int

    @property
    def total(self) -> int:
        return (
            self.stale_claims
            + self.orphan_heartbeats
            + self.dead_workers
            + self.stale_results
            + self.orphan_tmp
        )


def _require_spool(spool_dir: str | Path) -> Spool:
    root = Path(spool_dir)
    if not root.is_dir():
        raise ExecutionError(f"no spool directory at {root}")
    return Spool(root=root)


def _mtime(path: Path) -> float | None:
    try:
        return path.stat().st_mtime
    except OSError:
        return None  # vanished mid-scan


def _heartbeat_for(claim: Path) -> Path:
    return claim.with_name(
        claim.name[: -len(CLAIM_SUFFIX)] + HEARTBEAT_SUFFIX
    )


def _stale_claims(
    spool: Spool, cutoff: float
) -> list[tuple[Path, Path | None]]:
    """(claim, heartbeat-or-None) pairs whose lease looks dead."""
    found: list[tuple[Path, Path | None]] = []
    for claim in spool.claimed.glob(f"*{CLAIM_SUFFIX}"):
        heartbeat = _heartbeat_for(claim)
        beat = _mtime(heartbeat)
        if beat is None:
            # No heartbeat at all: judge by the claim file itself, so a
            # claim renamed moments ago (heartbeat not yet touched) is
            # not condemned.
            claimed_at = _mtime(claim)
            if claimed_at is not None and claimed_at < cutoff:
                found.append((claim, None))
        elif beat < cutoff:
            found.append((claim, heartbeat))
    return found


def _orphan_heartbeats(spool: Spool) -> list[Path]:
    """Heartbeat files whose claim is gone (worker died in cleanup)."""
    return [
        heartbeat
        for heartbeat in spool.claimed.glob(f"*{HEARTBEAT_SUFFIX}")
        if not heartbeat.with_name(
            heartbeat.name[: -len(HEARTBEAT_SUFFIX)] + CLAIM_SUFFIX
        ).exists()
    ]


def _orphan_tmps(spool: Spool) -> list[Path]:
    """Stranded atomic-write temps across the whole layout."""
    orphans: list[Path] = []
    for directory in (
        spool.root, spool.tasks, spool.claimed, spool.results, spool.workers,
    ):
        orphans.extend(directory.glob("*.tmp.*"))
    return orphans


def _attempt_counts(spool: Spool) -> dict[str, int]:
    counts: dict[str, int] = {}
    try:
        lines = spool.attempts_path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return counts
    for line in lines:
        try:
            outcome = json.loads(line).get("outcome", "unknown")
        except json.JSONDecodeError:
            outcome = "unparseable"
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


def spool_stats(
    spool_dir: str | Path,
    stale_after: float = 60.0,
    now: float | None = None,
) -> SpoolStats:
    """Read-only snapshot of a spool's queue depth, workers and debris.

    Args:
        spool_dir: The spool root (``Spool`` layout).
        stale_after: Seconds without a heartbeat/mtime touch before a
            claim or worker marker counts as dead.  Should comfortably
            exceed the fleet's ``heartbeat_interval``.
        now: Reference epoch time (injectable for tests).

    Raises:
        ExecutionError: If ``spool_dir`` is not a directory or
            ``stale_after`` is not positive.
    """
    if stale_after <= 0:
        raise ExecutionError(
            f"stale_after must be > 0, got {stale_after}"
        )
    spool = _require_spool(spool_dir)
    if now is None:
        now = time.time()
    cutoff = now - stale_after

    live = dead = 0
    for marker in spool.workers.glob(f"*{ALIVE_SUFFIX}"):
        touched = _mtime(marker)
        if touched is None:
            continue
        if touched < cutoff:
            dead += 1
        else:
            live += 1
    return SpoolStats(
        pending_tasks=sum(
            1 for _ in spool.tasks.glob(f"*{TASK_SUFFIX}")
        ),
        claimed=sum(
            1 for _ in spool.claimed.glob(f"*{CLAIM_SUFFIX}")
        ),
        stale_claims=len(_stale_claims(spool, cutoff)),
        results=sum(
            1 for _ in spool.results.glob(f"*{RESULT_SUFFIX}")
        ),
        live_workers=live,
        dead_workers=dead,
        orphan_tmp=len(_orphan_tmps(spool)),
        attempts=_attempt_counts(spool),
        stop_signaled=spool.stop_path.exists(),
    )


def compact_spool(
    spool_dir: str | Path,
    stale_after: float = 60.0,
    now: float | None = None,
) -> SpoolCompaction:
    """Remove a spool's dead debris; live state is never touched.

    Removal policy, category by category — everything is age-gated on
    ``stale_after`` except orphan heartbeats, whose claim is already
    gone:

    * stale claims and their heartbeats (lease long dead; the
      coordinator that would requeue them has already done so or is
      gone itself);
    * heartbeats without a claim (worker died inside its cleanup);
    * ``*.alive`` markers older than the cutoff;
    * result payloads older than the cutoff (their coordinator
      collects within a poll interval; old ones are orphaned);
    * stranded atomic-write temps older than the cutoff (a *fresh*
      temp may be a concurrent writer mid-:func:`os.replace`).

    Pending task files are never removed — they are the queue.

    Args:
        spool_dir: The spool root.
        stale_after: Dead-after threshold, seconds.
        now: Reference epoch time (injectable for tests).

    Returns:
        Per-category removal counts.

    Raises:
        ExecutionError: If ``spool_dir`` is not a directory or
            ``stale_after`` is not positive.
    """
    if stale_after <= 0:
        raise ExecutionError(
            f"stale_after must be > 0, got {stale_after}"
        )
    spool = _require_spool(spool_dir)
    if now is None:
        now = time.time()
    cutoff = now - stale_after

    def unlink(path: Path) -> int:
        try:
            path.unlink()
            return 1
        except OSError:
            return 0

    stale_claims = 0
    for claim, heartbeat in _stale_claims(spool, cutoff):
        stale_claims += unlink(claim)
        if heartbeat is not None:
            unlink(heartbeat)

    orphan_heartbeats = sum(
        unlink(heartbeat) for heartbeat in _orphan_heartbeats(spool)
    )

    dead_workers = sum(
        unlink(marker)
        for marker in spool.workers.glob(f"*{ALIVE_SUFFIX}")
        if (touched := _mtime(marker)) is not None and touched < cutoff
    )

    stale_results = sum(
        unlink(result)
        for result in spool.results.glob(f"*{RESULT_SUFFIX}")
        if (written := _mtime(result)) is not None and written < cutoff
    )

    orphan_tmp = sum(
        unlink(tmp)
        for tmp in _orphan_tmps(spool)
        if (written := _mtime(tmp)) is not None and written < cutoff
    )

    return SpoolCompaction(
        stale_claims=stale_claims,
        orphan_heartbeats=orphan_heartbeats,
        dead_workers=dead_workers,
        stale_results=stale_results,
        orphan_tmp=orphan_tmp,
    )
