"""Structured cache-corruption records shared by the on-disk stores.

A shared cache directory (DESIGN.md §5) or checkpoint directory
(DESIGN.md §9) lives on disks the runtime does not control: NFS mounts,
crash-prone workers, operators running ``rm`` in the wrong shell.  The
stores already *survive* corruption — an unreadable cache entry is
treated as a miss and evicted, a torn checkpoint snapshot is quarantined
and an older one used — but survival used to be silent, which made a
poisoned shared cache look exactly like a cold one: sweeps quietly
recompute everything and nobody learns the disk is eating data.

So every corruption observation is (a) warned once per (store, kind)
via :class:`CacheCorruptionWarning`, and (b) recorded as a structured
:class:`CacheCorruption`, queryable after the run via
:func:`cache_corruptions` — the same visible-degradation contract as
:mod:`repro.runtime.degradation`, in its own module because the cache
layer cannot import the runner-adjacent degradation module's consumers
without cycling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "CacheCorruption",
    "CacheCorruptionWarning",
    "cache_corruptions",
    "clear_cache_corruptions",
    "record_corruption",
]


class CacheCorruptionWarning(UserWarning):
    """Emitted when a store evicts or quarantines a corrupt entry."""


@dataclass(frozen=True)
class CacheCorruption:
    """One corrupt on-disk entry, as observed and handled by a store.

    Attributes:
        store: Class name of the observing store (``RunCache``,
            ``CurveCache``, ``CheckpointStore``, ...).
        path: The corrupt file, as observed.
        kind: Short machine-readable cause (``"unreadable-entry"``,
            ``"checksum-mismatch"``, ``"torn-snapshot"``,
            ``"format-version"``).
        detail: The underlying error, verbatim.
        action: What the store did about it — ``"removed"`` (cache
            entries: evicted, will recompute) or ``"quarantined"``
            (checkpoint snapshots: renamed aside for post-mortem, an
            older snapshot used instead).
    """

    store: str
    path: str
    kind: str
    detail: str
    action: str


#: Every corruption observed in this process, in observation order.
_CORRUPTIONS: list[CacheCorruption] = []

#: (store, kind) pairs already warned about — the once-per-cause gate.
_WARNED: set[tuple[str, str]] = set()


def cache_corruptions() -> tuple[CacheCorruption, ...]:
    """Every cache corruption recorded so far, in observation order."""
    return tuple(_CORRUPTIONS)


def clear_cache_corruptions() -> None:
    """Reset the corruption record (tests; long-lived services)."""
    _CORRUPTIONS.clear()
    _WARNED.clear()


def record_corruption(
    store: str,
    path: str | Path,
    kind: str,
    detail: str,
    action: str,
) -> CacheCorruption:
    """Record one corrupt entry and warn once per (store, kind) pair.

    Every event is recorded (a flaky disk shows up as a *count*, not a
    boolean), but the warning fires only on the first occurrence of a
    cause per store — a sweep over a poisoned 10k-entry cache must not
    print 10k warnings.

    Args:
        store: Observing store's class name.
        path: The corrupt file.
        kind: Short machine-readable cause.
        detail: Underlying error, verbatim.
        action: ``"removed"`` or ``"quarantined"``.
    """
    record = CacheCorruption(
        store=store, path=str(path), kind=kind, detail=detail, action=action
    )
    _CORRUPTIONS.append(record)
    key = (store, kind)
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(
            f"{store} found a corrupt entry ({kind}: {detail}) at {path} "
            f"and {action} it; further occurrences are recorded silently "
            "— query repro.runtime.cache_corruptions() and check the "
            "backing disk if the count grows",
            CacheCorruptionWarning,
            stacklevel=3,
        )
    return record
