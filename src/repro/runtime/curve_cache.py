"""On-disk cache of mined rank-frequency curves (the mining fast path).

Mining is a pure function of ``(transactions, mining config)``: the same
recipe pool mined at the same support always yields the same frequent
itemsets, whatever produced the pool and whichever registered miner ran.
That makes mined curves content-addressable — the key is a SHA-256 over

* a fingerprint of the exact transactions mined
  (:func:`transactions_fingerprint`; order-sensitive across
  transactions, order-insensitive within one),
* the output-relevant mining configuration (support threshold, size
  cap — *not* the algorithm, which by contract cannot change the
  result),
* the payload kind (aggregated frequencies vs a full
  :class:`~repro.analysis.itemsets.MiningResult`), and
* :data:`CURVE_FORMAT_VERSION`.

A :class:`CurveCache` shares its directory with the
:class:`~repro.runtime.cache.RunCache` (entries are namespaced by
suffix), so one ``--cache-dir`` warms both layers: the run cache skips
simulation, the curve cache skips re-mining — a warm
``repro experiment fig4`` performs zero mining calls.

Content addressing means invalidation is automatic: a different seed,
engine, model parameter or corpus produces different transactions and
therefore a different key; a changed mining config changes the key
directly.  Because every run is bit-identical across backends
(DESIGN.md §5), a curve cache warmed by a process-parallel sweep is
reused verbatim by a serial rerun.
"""

from __future__ import annotations

import hashlib
import json
from itertools import chain
from typing import Iterable

import numpy as np

from repro.config import MiningConfig
from repro.runtime.cache import PickleStore

__all__ = [
    "CURVE_FORMAT_VERSION",
    "CurveCache",
    "curve_key",
    "fingerprint_planes",
    "transactions_fingerprint",
]

#: Bump when the key layout or the pickled payload layout changes; old
#: entries then miss instead of deserializing garbage.
CURVE_FORMAT_VERSION = 1


def _mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer — a bijective 64-bit scramble."""
    x = values + np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def transactions_fingerprint(
    transactions: Iterable[Iterable[int]],
) -> str:
    """SHA-256 over the exact transaction content to be mined.

    Transactions are hashed in order (run results are ordered); within
    a transaction the combination is order-insensitive (they are sets,
    and set iteration order is not content-deterministic).  Two pools
    with equal content — whatever model, seed or backend produced them
    — share a fingerprint, which is exactly when their mined curves
    coincide.

    Hot path: one flat pass collects every item, a vectorized
    splitmix64 scramble is summed per transaction (commutative, so
    iteration order cannot leak in), and SHA-256 runs over the length
    and digest arrays — two ``tobytes`` calls for a paper-scale pool
    instead of per-transaction Python encoding.  An accidental
    collision needs two *different* transactions at the same position
    whose scrambled-item sums agree, a ~2^-64 event; items beyond
    int64 range (or non-int items) fall back to a JSON encoding of the
    sorted transactions.
    """
    data = (
        transactions
        if isinstance(transactions, (list, tuple))
        else list(transactions)
    )
    hasher = hashlib.sha256()
    try:
        lengths = np.fromiter(
            (len(transaction) for transaction in data),
            dtype="<i8",
            count=len(data),
        )
        flat = np.fromiter(
            chain.from_iterable(data),
            dtype="<i8",
            count=int(lengths.sum()),
        )
    except (OverflowError, ValueError):  # items beyond int64 / non-int
        encoded = [sorted(transaction) for transaction in data]
        hasher.update(json.dumps(encoded, separators=(",", ":")).encode())
        return hasher.hexdigest()
    return fingerprint_planes(lengths, flat)


def fingerprint_planes(lengths: np.ndarray, flat: np.ndarray) -> str:
    """:func:`transactions_fingerprint` computed from CSR-shaped planes.

    The digest core shared by the object path above and the columnar
    store: ``lengths`` holds each transaction's item count, ``flat``
    the concatenated items in transaction order.  Because the
    per-transaction digest is a *sum* of scrambled items, within-
    transaction ordering cannot leak in — so a columnar corpus's
    (sorted) CSR planes fingerprint identically to the frozensets the
    object path iterates, and one warm
    :class:`CurveCache` serves both paths.

    Args:
        lengths: ``(n,)`` per-transaction item counts, int64-compatible.
        flat: Concatenated items (each transaction duplicate-free),
            int64-compatible, ``flat.size == lengths.sum()``.
    """
    lengths = np.ascontiguousarray(lengths, dtype="<i8")
    flat = np.ascontiguousarray(flat, dtype="<i8")
    hasher = hashlib.sha256()
    with np.errstate(over="ignore"):
        mixed = _mix64(flat.view("<u8"))
        sums = np.zeros(lengths.size, dtype="<u8")
        nonzero = lengths > 0
        if flat.size:
            # Consecutive nonzero segment starts delimit exactly the
            # per-transaction slices (empty segments have zero width).
            starts = (np.cumsum(lengths) - lengths)[nonzero]
            sums[nonzero] = np.add.reduceat(mixed, starts.astype(np.intp))
        digests = _mix64(sums ^ _mix64(lengths.view("<u8")))
    hasher.update(lengths.tobytes())
    hasher.update(digests.tobytes())
    return hasher.hexdigest()


def curve_key(
    transactions_fp: str,
    mining: MiningConfig,
    level: str = "ingredient",
    kind: str = "frequencies",
) -> str:
    """Cache key for one mined curve.

    The key covers every input that changes the *output* of mining:
    the transaction content, the support threshold and the size cap.
    ``mining.algorithm`` is deliberately excluded — every registered
    miner returns identical results (the equality contract of
    DESIGN.md §6, pinned in ``tests/analysis/test_itemsets_bitset.py``)
    — so a cache warmed with one miner serves every other, e.g. a CLI
    ``bitset`` sweep warms a library caller on the ``eclat`` default.

    Args:
        transactions_fp: :func:`transactions_fingerprint` of the mined
            transactions.
        mining: Mining configuration; a change to ``min_support`` or
            ``max_size`` keys a different entry.
        level: ``"ingredient"`` or ``"category"`` — recorded for
            observability even though the level conversion is already
            baked into the transaction content.
        kind: Payload kind: ``"frequencies"`` (a float ndarray, the
            ensemble path) or ``"mining"`` (a pickled
            :class:`~repro.analysis.itemsets.MiningResult`, the
            empirical path).  Distinct kinds must never alias.
    """
    payload = {
        "version": CURVE_FORMAT_VERSION,
        "kind": kind,
        "transactions": transactions_fp,
        "level": level,
        "mining": {
            "min_support": mining.min_support,
            "max_size": mining.max_size,
        },
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class CurveCache(PickleStore):
    """A directory of mined-curve payloads keyed by :func:`curve_key`.

    Payloads are either 1-D float arrays of descending normalized
    frequencies (ensemble per-run curves; labels are reattached by the
    caller, so one entry serves every labeling) or full
    :class:`~repro.analysis.itemsets.MiningResult` objects (empirical
    curves, whose callers also need the itemsets).  Shares its directory
    with :class:`~repro.runtime.cache.RunCache` — entries are
    namespaced by the ``.curve.pkl`` suffix.
    """

    suffix = ".curve.pkl"
