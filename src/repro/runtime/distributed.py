"""File-based distributed work-queue executor backend (DESIGN.md §8).

The in-process backends (§5) top out at one machine.  This module adds
``backend="distributed"``: the coordinator spools pickled tasks into a
shared *spool directory*, worker processes — spawned locally by the
coordinator and/or attached from anywhere that mounts the spool via
``repro worker --spool DIR`` — claim tasks by **atomic rename**, prove
liveness with **heartbeat files**, and return results through the spool;
for simulation runs the shared :class:`~repro.runtime.cache.RunCache`
directory additionally acts as the result rendezvous (workers write
completed runs straight into it), so an interrupted sweep resumes from
whatever finished.

Robustness is structural, not bolted on:

* a claim whose heartbeat goes stale (`lease_timeout`) is reclaimed —
  the crashed-worker path;
* a claim that outlives ``task_timeout`` despite fresh heartbeats is
  reclaimed — the hung-worker path;
* every reclaim or task error requeues the task with **bounded retries**
  and **exponential backoff + jitter** (:func:`backoff_delay`), failing
  the map with :class:`~repro.errors.TaskRetryExhaustedError` once
  ``max_attempts`` is spent;
* every attempt is recorded as a structured :class:`TaskAttempt`,
  queryable after the run via :func:`task_attempts`;
* a map that no worker attaches to within ``attach_deadline`` degrades
  to the process backend with a
  :class:`~repro.runtime.degradation.BackendDegradationWarning`.

Determinism: tasks are pure functions of their payload (per-run integer
seeds, §5), the coordinator assembles results strictly by task index,
and duplicate executions — possible when a hung worker finishes after
its task was reclaimed — produce byte-identical payloads, of which the
ledger accepts exactly the first.  A distributed sweep is therefore
bit-identical to ``backend="serial"`` for a fixed master seed, faults
included (``tests/runtime/test_fault_injection.py``).

The claim/heartbeat/requeue bookkeeping is factored into the pure,
filesystem-free :class:`LeaseLedger` so its state machine can be
property-tested over arbitrary event interleavings
(``tests/runtime/test_lease_properties.py``).
"""

from __future__ import annotations

import json
import os
import pickle
import random
import shutil
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ExecutionError, TaskRetryExhaustedError
from repro.runtime.config import DistributedConfig, RuntimeConfig
from repro.runtime.degradation import record_degradation
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
)
from repro.runtime.checkpoint import disarm_kill, resume_events
from repro.runtime.faults import FaultPlan, inject_fault

__all__ = [
    "DistributedExecutor",
    "LeaseLedger",
    "Spool",
    "SpoolTask",
    "TaskAttempt",
    "TaskLease",
    "WorkerSummary",
    "backoff_delay",
    "clear_task_attempts",
    "run_worker",
    "signal_stop",
    "task_attempts",
]

T = TypeVar("T")
R = TypeVar("R")

#: Entry suffixes namespacing the spool (mirrors the cache-store idiom).
TASK_SUFFIX = ".task.pkl"
CLAIM_SUFFIX = ".claim.pkl"
HEARTBEAT_SUFFIX = ".hb"
RESULT_SUFFIX = ".result.pkl"
ALIVE_SUFFIX = ".alive"

# ---------------------------------------------------------------------------
# Spool layout
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Spool:
    """The on-disk layout of one work-queue directory.

    ::

        <root>/
          tasks/     pending task files   <task>.aNN.task.pkl
          claimed/   leased task files    <task>.aNN.<worker>.claim.pkl
                     heartbeat files      <task>.aNN.<worker>.hb
          results/   result payloads      <task>.result.pkl
          workers/   worker liveness      <worker>.alive
          faults.json    optional fault-injection plan
          attempts.jsonl appended TaskAttempt records (coordinator)
          stop           sentinel telling idle workers to exit

    Task names embed a per-map nonce (``<nonce>-<index>``), so several
    maps — concurrent or sequential — can share one spool and one
    standing worker fleet without colliding.
    """

    root: Path

    @property
    def tasks(self) -> Path:
        return self.root / "tasks"

    @property
    def claimed(self) -> Path:
        return self.root / "claimed"

    @property
    def results(self) -> Path:
        return self.root / "results"

    @property
    def workers(self) -> Path:
        return self.root / "workers"

    @property
    def fault_path(self) -> Path:
        return self.root / "faults.json"

    @property
    def attempts_path(self) -> Path:
        return self.root / "attempts.jsonl"

    @property
    def stop_path(self) -> Path:
        return self.root / "stop"

    def ensure(self) -> "Spool":
        """Create the layout (idempotent; safe for concurrent callers)."""
        for directory in (
            self.root, self.tasks, self.claimed, self.results, self.workers
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self


def signal_stop(spool_dir: str | Path) -> Path:
    """Tell workers polling ``spool_dir`` to exit once the queue drains.

    Equivalent to ``touch <spool>/stop`` — provided as a function so
    operators and tests share one spelling.  The coordinator never
    writes this itself: externally attached workers belong to whoever
    started them and may be serving other maps.
    """
    spool = Spool(Path(spool_dir)).ensure()
    spool.stop_path.touch()
    return spool.stop_path


@dataclass(frozen=True)
class SpoolTask:
    """One spooled unit of work: the map callable applied to one item.

    Attributes:
        index: Position in the coordinator's item list (defines result
            order — the order-preservation half of the §5 contract).
        fn: The mapped callable (module-level, pickled by reference).
        item: The work item (pickled by value).
    """

    index: int
    fn: Callable
    item: object


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-then-rename so readers never observe a partial file."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _task_index(task_id: str) -> int:
    """Task index from a ``<nonce>-<index>`` task id."""
    return int(task_id.rsplit("-", 1)[1])


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


def backoff_delay(
    retry: int, base: float, cap: float, rng: random.Random
) -> float:
    """Exponential backoff with jitter for the ``retry``-th retry.

    The ``retry``-th retry (1-based) waits ``base * 2**(retry-1)``
    seconds, capped at ``cap``, scaled by a uniform jitter in
    ``[0.5, 1.5)`` so a fleet of workers whose tasks failed together
    does not thunder back in lockstep.  Jitter randomness never touches
    simulation results — tasks are pure functions of their payload —
    so the generator needs no seed discipline (tests inject one).

    Raises:
        ExecutionError: If ``retry < 1``.
    """
    if retry < 1:
        raise ExecutionError(f"retry is a 1-based ordinal, got {retry}")
    return min(cap, base * (2.0 ** (retry - 1))) * (0.5 + rng.random())


# ---------------------------------------------------------------------------
# Lease state machine (pure; property-tested)
# ---------------------------------------------------------------------------

#: Lease lifecycle states.  ``done`` and ``failed`` are absorbing.
LEASE_PENDING = "pending"
LEASE_CLAIMED = "claimed"
LEASE_DONE = "done"
LEASE_FAILED = "failed"


@dataclass
class TaskLease:
    """Bookkeeping for one task's current attempt.

    Attributes:
        index: Task index.
        attempt: 1-based attempt number (monotone, capped by the
            ledger's ``max_attempts``).
        status: One of the four lease states.
        worker: Claiming worker id while ``claimed``.
        claimed_at: Claim timestamp of the current attempt.
        last_heartbeat: Latest observed liveness of the current claim.
        not_before: Earliest time the next attempt may be (re)spooled —
            the backoff gate.
        last_error: Most recent failure reason, kept for the
            retry-exhaustion report.
    """

    index: int
    attempt: int = 1
    status: str = LEASE_PENDING
    worker: str | None = None
    claimed_at: float | None = None
    last_heartbeat: float | None = None
    not_before: float = 0.0
    last_error: str | None = None


class LeaseLedger:
    """The task-lease state machine, free of any filesystem concern.

    The coordinator feeds it observations (claims seen, heartbeats,
    results, staleness) and reads back what to do (which attempts to
    respool, which tasks are finished or exhausted).  Keeping it pure
    makes the protocol's safety properties — a task is never lost, and
    never *completes* twice — directly checkable by hypothesis over
    arbitrary claim/heartbeat/expire/complete interleavings.

    Args:
        n_tasks: Number of tasks tracked (indices ``0..n_tasks-1``).
        max_attempts: Total attempts allowed per task (>= 1).
        backoff_base: First-retry delay in seconds.
        backoff_cap: Upper bound on any retry delay.
        rng: Jitter source (injectable for deterministic tests).
    """

    def __init__(
        self,
        n_tasks: int,
        max_attempts: int = 3,
        backoff_base: float = 0.25,
        backoff_cap: float = 30.0,
        rng: random.Random | None = None,
    ):
        if n_tasks < 0:
            raise ExecutionError(f"n_tasks must be >= 0, got {n_tasks}")
        if max_attempts < 1:
            raise ExecutionError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self._max_attempts = max_attempts
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._rng = rng if rng is not None else random.Random()
        self._leases = [TaskLease(index=i) for i in range(n_tasks)]

    def __len__(self) -> int:
        return len(self._leases)

    @property
    def max_attempts(self) -> int:
        return self._max_attempts

    def lease(self, index: int) -> TaskLease:
        """The live lease record for one task (treat as read-only)."""
        return self._leases[index]

    def leases(self) -> tuple[TaskLease, ...]:
        return tuple(self._leases)

    # -- transitions --------------------------------------------------

    def claim(self, index: int, worker: str, now: float) -> bool:
        """A worker claimed this task; accept only from ``pending``.

        Refusing claims before ``not_before`` keeps the backoff gate
        authoritative even if a stale spool file gets picked up early.
        """
        lease = self._leases[index]
        if lease.status != LEASE_PENDING or now < lease.not_before:
            return False
        lease.status = LEASE_CLAIMED
        lease.worker = worker
        lease.claimed_at = now
        lease.last_heartbeat = now
        return True

    def heartbeat(self, index: int, now: float) -> bool:
        """Record claim liveness; no-op outside ``claimed``."""
        lease = self._leases[index]
        if lease.status != LEASE_CLAIMED:
            return False
        lease.last_heartbeat = max(lease.last_heartbeat or now, now)
        return True

    def complete(self, index: int, now: float) -> bool:
        """A result arrived; the **first** completion wins.

        Returns ``False`` for duplicates (a reclaimed-then-finished
        straggler) and for tasks already failed — the caller discards
        the payload in both cases.  Completion is accepted from
        ``pending`` too: a worker whose lease expired may still deliver
        a perfectly good (and, tasks being pure, bit-identical) result
        before the replacement attempt runs.
        """
        lease = self._leases[index]
        if lease.status in (LEASE_DONE, LEASE_FAILED):
            return False
        lease.status = LEASE_DONE
        lease.last_heartbeat = now
        return True

    def expire(self, index: int, now: float, lease_timeout: float) -> bool:
        """Reclaim a claim whose heartbeat went stale (worker death)."""
        lease = self._leases[index]
        if lease.status != LEASE_CLAIMED:
            return False
        reference = lease.last_heartbeat or lease.claimed_at or now
        if now - reference <= lease_timeout:
            return False
        self._requeue(lease, now, "lease expired (worker presumed dead)")
        return True

    def time_out(self, index: int, now: float, task_timeout: float) -> bool:
        """Reclaim a claim that outlived the per-task timeout (hang)."""
        lease = self._leases[index]
        if lease.status != LEASE_CLAIMED:
            return False
        if now - (lease.claimed_at or now) <= task_timeout:
            return False
        self._requeue(lease, now, "task timeout exceeded")
        return True

    def fail(self, index: int, error: str, now: float) -> bool:
        """The task's callable raised; requeue or exhaust."""
        lease = self._leases[index]
        if lease.status in (LEASE_DONE, LEASE_FAILED):
            return False
        self._requeue(lease, now, error)
        return True

    def _requeue(self, lease: TaskLease, now: float, error: str) -> None:
        lease.last_error = error
        lease.worker = None
        lease.claimed_at = None
        lease.last_heartbeat = None
        if lease.attempt >= self._max_attempts:
            lease.status = LEASE_FAILED
            return
        lease.attempt += 1
        lease.status = LEASE_PENDING
        lease.not_before = now + backoff_delay(
            lease.attempt - 1, self._backoff_base, self._backoff_cap,
            self._rng,
        )

    # -- queries ------------------------------------------------------

    def ready(self, now: float) -> list[TaskLease]:
        """Pending leases whose backoff gate has passed."""
        return [
            lease
            for lease in self._leases
            if lease.status == LEASE_PENDING and now >= lease.not_before
        ]

    def claimed(self) -> list[TaskLease]:
        return [
            lease for lease in self._leases
            if lease.status == LEASE_CLAIMED
        ]

    def failed(self) -> list[TaskLease]:
        return [
            lease for lease in self._leases if lease.status == LEASE_FAILED
        ]

    def unfinished(self) -> list[TaskLease]:
        """Leases not yet absorbed by ``done`` (includes ``failed``)."""
        return [
            lease for lease in self._leases if lease.status != LEASE_DONE
        ]

    def all_done(self) -> bool:
        return all(lease.status == LEASE_DONE for lease in self._leases)


# ---------------------------------------------------------------------------
# Task-attempt records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskAttempt:
    """One attempt of one task, as observed by the coordinator.

    Attributes:
        task_index: The task's position in the map's item list.
        attempt: 1-based attempt number.
        outcome: ``"completed"``, ``"failed"`` (the callable raised),
            ``"lease_expired"`` (worker presumed dead) or
            ``"timed_out"`` (ran past ``task_timeout``).
        worker: Worker id involved, when known.
        error: Failure reason for non-completed outcomes.
        elapsed_seconds: Worker-measured execution time for completed
            attempts.
        resumed_from_step: Engine step of the checkpoint snapshot this
            attempt resumed from (DESIGN.md §9); ``None`` when the
            attempt started from scratch (or checkpointing was off).
    """

    task_index: int
    attempt: int
    outcome: str
    worker: str | None = None
    error: str | None = None
    elapsed_seconds: float | None = None
    resumed_from_step: int | None = None


#: Attempts observed in this process, in observation order — the
#: structured record the ISSUE's "queryable after the run" asks for
#: (mirrors :func:`~repro.runtime.degradation.backend_degradations`).
_TASK_ATTEMPTS: list[TaskAttempt] = []


def task_attempts() -> tuple[TaskAttempt, ...]:
    """Every distributed task attempt recorded so far, in order."""
    return tuple(_TASK_ATTEMPTS)


def clear_task_attempts() -> None:
    """Reset the attempt record (tests; long-lived services)."""
    _TASK_ATTEMPTS.clear()


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


@dataclass
class WorkerSummary:
    """What one :func:`run_worker` loop did before exiting.

    Attributes:
        worker_id: The id the worker claimed tasks under.
        claimed: Tasks claimed (faulted attempts included).
        completed: Results written with ``ok=True``.
        failed: Results written with ``ok=False`` (the callable raised).
    """

    worker_id: str
    claimed: int = 0
    completed: int = 0
    failed: int = 0


def _heartbeat_thread(
    hb_path: Path, interval: float
) -> tuple[threading.Event, threading.Thread]:
    """Touch ``hb_path`` every ``interval`` seconds until told to stop."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            try:
                os.utime(hb_path)
            except OSError:
                return

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    return stop, thread


def run_worker(
    spool_dir: str | Path,
    worker_id: str | None = None,
    poll_interval: float = 0.05,
    heartbeat_interval: float = 1.0,
    idle_timeout: float | None = None,
    max_tasks: int | None = None,
    fault_plan: FaultPlan | None = None,
    parent_pid: int | None = None,
) -> WorkerSummary:
    """Serve a spool directory until stopped; the ``repro worker`` loop.

    The worker repeatedly scans ``<spool>/tasks``, claims one file at a
    time by atomically renaming it into ``<spool>/claimed`` (rename
    either succeeds exactly once across all racing workers or raises —
    the mutual exclusion primitive of the whole protocol), heartbeats
    while executing, writes the result into ``<spool>/results``, and
    cleans its claim.  Task payloads it cannot even deserialize are
    reported as failed results rather than crashing the loop.

    Exit conditions: the spool's ``stop`` sentinel exists and the queue
    is empty (:func:`signal_stop`); ``idle_timeout`` seconds pass
    without claiming anything; ``max_tasks`` tasks were claimed; or —
    for coordinator-spawned workers — the ``parent_pid`` process died.

    Args:
        spool_dir: The work-queue directory (created if missing).
        worker_id: Stable id for claims/heartbeats (default
            ``w<pid>``); dots are reserved as filename separators and
            are replaced with dashes.
        poll_interval: Seconds between queue scans when idle.
        heartbeat_interval: Seconds between heartbeat touches; must be
            well under the coordinator's ``lease_timeout``.
        idle_timeout: Exit after this much idle time (``None`` = wait
            for the stop sentinel indefinitely).
        max_tasks: Exit after claiming this many tasks.
        fault_plan: Explicit fault plan (testing); defaults to the
            spool's ``faults.json`` when present.
        parent_pid: Exit if this process stops being the parent
            (coordinator-spawned workers must not outlive a crashed
            coordinator).

    Returns:
        A :class:`WorkerSummary` of the loop's activity.
    """
    spool = Spool(Path(spool_dir)).ensure()
    if worker_id is None:
        worker_id = f"w{os.getpid()}"
    worker_id = worker_id.replace(".", "-")
    if fault_plan is None and spool.fault_path.exists():
        fault_plan = FaultPlan.load(spool.fault_path)
    summary = WorkerSummary(worker_id=worker_id)
    alive_path = spool.workers / f"{worker_id}{ALIVE_SUFFIX}"
    last_claim = time.time()

    while True:
        if parent_pid is not None and os.getppid() != parent_pid:
            break
        try:
            alive_path.touch()
        except OSError:
            break  # spool removed under us — the session is over
        task_paths = sorted(spool.tasks.glob(f"*{TASK_SUFFIX}"))
        if not task_paths:
            if spool.stop_path.exists():
                break
            if (
                idle_timeout is not None
                and time.time() - last_claim > idle_timeout
            ):
                break
            time.sleep(poll_interval)
            continue

        claimed_any = False
        for task_path in task_paths:
            base = task_path.name[: -len(TASK_SUFFIX)]  # <task>.aNN
            claim_path = (
                spool.claimed / f"{base}.{worker_id}{CLAIM_SUFFIX}"
            )
            try:
                os.rename(task_path, claim_path)
            except OSError:
                continue  # another worker won the rename
            claimed_any = True
            last_claim = time.time()
            summary.claimed += 1
            task_id, attempt_tag = base.rsplit(".", 1)
            hb_path = spool.claimed / f"{base}.{worker_id}{HEARTBEAT_SUFFIX}"
            hb_path.touch()
            hb_stop, hb = _heartbeat_thread(hb_path, heartbeat_interval)
            try:
                # The fault seam sits after claim + first heartbeat and
                # before deserialization, so an injected kill leaves
                # exactly a real crash's on-disk state (faults.py).
                if fault_plan is not None:
                    spec = fault_plan.for_task(worker_id, summary.claimed)
                    if spec is not None:
                        inject_fault(spec)
                started = time.perf_counter()
                events_before = len(resume_events())
                try:
                    task: SpoolTask = pickle.loads(claim_path.read_bytes())
                    value = task.fn(task.item)
                    payload = {
                        "ok": True,
                        "value": value,
                        "error": None,
                    }
                    summary.completed += 1
                except Exception as exc:
                    payload = {
                        "ok": False,
                        "value": None,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                    summary.failed += 1
                # A task that loaded a checkpoint snapshot records a
                # ResumeEvent; surface the (latest) resumed step on the
                # result payload so the coordinator's TaskAttempt ledger
                # shows mid-run recovery, not just re-execution.
                resumed = resume_events()[events_before:]
                payload.update(
                    worker=worker_id,
                    attempt=int(attempt_tag[1:]),
                    elapsed=time.perf_counter() - started,
                    resumed_from_step=(
                        max(event.step for event in resumed)
                        if resumed
                        else None
                    ),
                )
                try:
                    _atomic_write_bytes(
                        spool.results / f"{task_id}{RESULT_SUFFIX}",
                        pickle.dumps(
                            payload, protocol=pickle.HIGHEST_PROTOCOL
                        ),
                    )
                except (OSError, pickle.PicklingError):
                    # Result undeliverable (spool vanished, unpicklable
                    # value).  Losing the lease is the correct signal:
                    # the coordinator reclaims and retries elsewhere.
                    pass
            finally:
                # An armed kill_at_step that never tripped (the task's
                # engine ignored checkpointers, or the run was shorter
                # than at_step) must not leak into a later claim.
                disarm_kill()
                hb_stop.set()
                hb.join(timeout=1.0)
                for leftover in (claim_path, hb_path):
                    try:
                        leftover.unlink()
                    except OSError:
                        pass
            if max_tasks is not None and summary.claimed >= max_tasks:
                try:
                    alive_path.unlink()
                except OSError:
                    pass
                return summary
        if not claimed_any:
            time.sleep(poll_interval)
    try:
        alive_path.unlink()
    except OSError:
        pass
    return summary


def _local_worker_main(
    spool_dir: str,
    worker_id: str,
    poll_interval: float,
    heartbeat_interval: float,
    parent_pid: int,
) -> None:
    """Entry point of coordinator-spawned local worker processes."""
    run_worker(
        spool_dir,
        worker_id=worker_id,
        poll_interval=poll_interval,
        heartbeat_interval=heartbeat_interval,
        parent_pid=parent_pid,
    )


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class _LocalFleet:
    """The coordinator's handle on the workers it spawned itself."""

    spool: Spool
    settings: DistributedConfig
    target: int
    procs: list = field(default_factory=list)
    spawned: int = 0
    restarts_used: int = 0

    def spawn_one(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context()
        worker_id = f"local-{self.spawned}"
        proc = ctx.Process(
            target=_local_worker_main,
            args=(
                str(self.spool.root),
                worker_id,
                self.settings.poll_interval,
                self.settings.heartbeat_interval,
                os.getpid(),
            ),
            daemon=True,
            name=f"repro-worker-{worker_id}",
        )
        proc.start()
        self.spawned += 1
        self.procs.append(proc)

    def start(self) -> None:
        for _ in range(self.target):
            self.spawn_one()

    def respawn_dead(self) -> None:
        """Replace crashed workers within the restart budget."""
        alive = [proc for proc in self.procs if proc.is_alive()]
        dead = len(self.procs) - len(alive)
        self.procs = alive
        for _ in range(dead):
            if self.restarts_used >= self.settings.max_worker_restarts:
                return
            self.restarts_used += 1
            self.spawn_one()

    def any_alive(self) -> bool:
        return any(proc.is_alive() for proc in self.procs)

    def terminate(self) -> None:
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=2.0)
        self.procs.clear()


class DistributedExecutor(Executor):
    """Work-queue execution over a spool directory (DESIGN.md §8).

    Constructed by :func:`~repro.runtime.executor.get_executor` for
    ``backend="distributed"``.  Each :meth:`map` call runs one spool
    session: spool every item, serve/monitor the queue until every task
    completes (or retries exhaust), and return results in item order.
    """

    name = "distributed"
    requires_pickling = True

    def __init__(self, config: RuntimeConfig):
        self._config = config
        self._settings = config.resolve_distributed()
        self._jobs = config.resolve_jobs()

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def settings(self) -> DistributedConfig:
        return self._settings

    def local_worker_target(self) -> int:
        """Local workers this executor will spawn per map."""
        if self._settings.local_workers is not None:
            return self._settings.local_workers
        return self._jobs

    def map(
        self, fn: Callable[[T], R], items: Sequence[T] | Iterable[T]
    ) -> list[R]:
        items = list(items)
        if not items:
            return []
        return _MapSession(fn, items, self).run()


class _MapSession:
    """One map's worth of spool protocol, from spooling to cleanup."""

    def __init__(
        self, fn: Callable, items: list, executor: DistributedExecutor
    ):
        self._fn = fn
        self._items = items
        self._executor = executor
        self._settings = executor.settings
        self._owns_spool = self._settings.spool_dir is None
        root = (
            Path(tempfile.mkdtemp(prefix="repro-spool-"))
            if self._owns_spool
            else self._settings.spool_dir
        )
        self._spool = Spool(root).ensure()
        self._nonce = uuid.uuid4().hex[:8]
        self._ledger = LeaseLedger(
            len(items),
            max_attempts=self._settings.max_attempts,
            backoff_base=self._settings.backoff_base,
            backoff_cap=self._settings.backoff_cap,
        )
        self._payloads: list[bytes] = []
        self._results: list = [None] * len(items)
        self._spooled: dict[int, int] = {}  # index -> attempt on disk
        self._any_claim_seen = False
        self._fleet = _LocalFleet(
            spool=self._spool,
            settings=self._settings,
            target=executor.local_worker_target(),
        )

    # -- naming -------------------------------------------------------

    def _task_id(self, index: int) -> str:
        return f"{self._nonce}-{index:05d}"

    def _record(self, attempt: TaskAttempt) -> None:
        _TASK_ATTEMPTS.append(attempt)
        try:
            with self._spool.attempts_path.open("a", encoding="utf-8") as f:
                f.write(json.dumps(attempt.__dict__, sort_keys=True) + "\n")
        except OSError:
            pass  # the registry is authoritative; the file is advisory

    # -- protocol steps ----------------------------------------------

    def _serialize(self) -> None:
        try:
            self._payloads = [
                pickle.dumps(
                    SpoolTask(index=i, fn=self._fn, item=item),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                for i, item in enumerate(self._items)
            ]
        except Exception as exc:
            raise ExecutionError(
                f"distributed backend requires picklable work "
                f"({type(exc).__name__}: {exc}); pass a module-level "
                "function over picklable payloads"
            ) from exc

    def _respool_ready(self, now: float) -> None:
        for lease in self._ledger.ready(now):
            if self._spooled.get(lease.index) == lease.attempt:
                continue
            name = (
                f"{self._task_id(lease.index)}.a{lease.attempt:02d}"
                f"{TASK_SUFFIX}"
            )
            _atomic_write_bytes(
                self._spool.tasks / name, self._payloads[lease.index]
            )
            self._spooled[lease.index] = lease.attempt

    def _collect_results(self, now: float) -> None:
        for path in self._spool.results.glob(
            f"{self._nonce}-*{RESULT_SUFFIX}"
        ):
            task_id = path.name[: -len(RESULT_SUFFIX)]
            try:
                index = _task_index(task_id)
            except ValueError:
                continue
            if index >= len(self._items):
                continue
            try:
                payload = pickle.loads(path.read_bytes())
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError) as exc:
                # A result written by a contemporary worker is atomic,
                # so this is payload corruption, not a torn read: fail
                # the attempt and let the retry policy decide.
                payload = {
                    "ok": False, "value": None,
                    "error": f"unreadable result ({exc})",
                    "worker": None, "attempt": None, "elapsed": None,
                }
            # Unlink before judging: each on-disk result is observed
            # exactly once; whether it *counts* is the ledger's call
            # (absorbing states make duplicate completions no-ops, and
            # retried attempts write fresh files under the same name).
            try:
                path.unlink()
            except OSError:
                pass
            self._any_claim_seen = True
            attempt = payload.get("attempt") or self._ledger.lease(
                index
            ).attempt
            if payload.get("ok"):
                if self._ledger.complete(index, now):
                    self._results[index] = payload["value"]
                    self._record(TaskAttempt(
                        task_index=index,
                        attempt=attempt,
                        outcome="completed",
                        worker=payload.get("worker"),
                        elapsed_seconds=payload.get("elapsed"),
                        resumed_from_step=payload.get("resumed_from_step"),
                    ))
            else:
                error = payload.get("error") or "task failed"
                if self._ledger.fail(index, error, now):
                    self._record(TaskAttempt(
                        task_index=index,
                        attempt=attempt,
                        outcome="failed",
                        worker=payload.get("worker"),
                        error=error,
                    ))

    def _scan_claims(self, now: float) -> None:
        for path in self._spool.claimed.glob(f"{self._nonce}-*"):
            parts = path.name.split(".")
            # <task_id>.<aNN>.<worker>.claim.pkl / .hb
            if len(parts) < 4:
                continue
            task_id, attempt_tag, worker = parts[0], parts[1], parts[2]
            if not path.name.endswith(CLAIM_SUFFIX):
                continue  # heartbeats are read via their claim below
            try:
                index = _task_index(task_id)
                attempt = int(attempt_tag[1:])
            except ValueError:
                continue
            if index >= len(self._items):
                continue
            self._any_claim_seen = True
            lease = self._ledger.lease(index)
            if attempt != lease.attempt or lease.status == LEASE_DONE:
                # A dead attempt's leftovers (the worker that held it
                # was reclaimed or the task completed elsewhere).
                hb = path.with_name(
                    path.name[: -len(CLAIM_SUFFIX)] + HEARTBEAT_SUFFIX
                )
                for stale in (path, hb):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
                continue
            hb = path.with_name(
                path.name[: -len(CLAIM_SUFFIX)] + HEARTBEAT_SUFFIX
            )
            freshness = None
            for probe in (hb, path):
                try:
                    stat = probe.stat()
                except OSError:
                    continue
                freshness = max(freshness or 0.0, stat.st_mtime)
            if freshness is None:
                continue  # claim finished between glob and stat
            if lease.status == LEASE_PENDING:
                self._ledger.claim(index, worker, freshness)
            self._ledger.heartbeat(index, freshness)

    def _reclaim(self, now: float) -> None:
        for lease in self._ledger.claimed():
            worker = lease.worker
            attempt = lease.attempt
            if self._ledger.expire(
                lease.index, now, self._settings.lease_timeout
            ):
                outcome = "lease_expired"
            elif self._ledger.time_out(
                lease.index, now, self._settings.task_timeout
            ):
                outcome = "timed_out"
            else:
                continue
            self._record(TaskAttempt(
                task_index=lease.index,
                attempt=attempt,
                outcome=outcome,
                worker=worker,
                error=lease.last_error,
            ))

    def _check_exhausted(self) -> None:
        failed = self._ledger.failed()
        if not failed:
            return
        detail = "; ".join(
            f"task {lease.index}: {lease.last_error or 'unknown failure'}"
            for lease in failed[:5]
        )
        raise TaskRetryExhaustedError(
            f"{len(failed)} distributed task(s) failed after "
            f"{self._ledger.max_attempts} attempts each ({detail}); "
            "see repro.runtime.task_attempts() for the attempt log"
        )

    def _external_signs_of_life(self, since: float) -> bool:
        for path in self._spool.workers.glob(f"*{ALIVE_SUFFIX}"):
            try:
                if path.stat().st_mtime >= since:
                    return True
            except OSError:
                continue
        return False

    def _degrade_to_process(self) -> None:
        """No workers attached: run the remainder on the process pool."""
        jobs = self._executor.jobs
        fallback: Executor
        if jobs >= 2:
            fallback = ProcessExecutor(jobs)
        else:
            fallback = SerialExecutor()
        record_degradation(
            self._fn,
            requested="distributed",
            effective=fallback.name,
            reason=(
                f"no workers attached to spool {self._spool.root} within "
                f"{self._settings.attach_deadline:g}s"
            ),
            hint=(
                "start workers with `repro worker --spool DIR`, raise "
                "attach_deadline, or configure local_workers > 0"
            ),
        )
        now = time.time()
        remaining = [
            lease.index for lease in self._ledger.unfinished()
        ]
        computed = fallback.map(
            self._fn, [self._items[index] for index in remaining]
        )
        for index, value in zip(remaining, computed):
            self._results[index] = value
            self._ledger.complete(index, now)
            self._record(TaskAttempt(
                task_index=index,
                attempt=self._ledger.lease(index).attempt,
                outcome="completed",
                worker=f"degraded-{fallback.name}",
            ))

    def _cleanup(self) -> None:
        self._fleet.terminate()
        if self._owns_spool:
            shutil.rmtree(self._spool.root, ignore_errors=True)
            return
        # Shared spool: remove only this session's files, and leave
        # other sessions' (and the fault plan, which the caller wrote
        # via settings and may want to inspect) untouched.
        for directory in (
            self._spool.tasks, self._spool.claimed, self._spool.results
        ):
            for path in directory.glob(f"{self._nonce}-*"):
                try:
                    path.unlink()
                except OSError:
                    pass
        if self._settings.fault_plan is not None:
            try:
                self._spool.fault_path.unlink()
            except OSError:
                pass

    def run(self) -> list:
        self._serialize()
        if self._settings.fault_plan is not None:
            self._settings.fault_plan.save(self._spool.fault_path)
        started = time.time()
        try:
            self._fleet.start()
            while True:
                now = time.time()
                self._respool_ready(now)
                self._collect_results(now)
                self._scan_claims(now)
                self._reclaim(now)
                self._check_exhausted()
                if self._ledger.all_done():
                    return self._results
                if self._fleet.target > 0:
                    self._fleet.respawn_dead()
                elif (
                    not self._any_claim_seen
                    and not self._external_signs_of_life(started)
                    and now - started > self._settings.attach_deadline
                ):
                    self._degrade_to_process()
                    return self._results
                time.sleep(self._settings.poll_interval)
        finally:
            self._cleanup()
