"""On-disk cache of completed :class:`~repro.models.base.EvolutionRun`s.

Runs are pure functions of ``(model configuration, cuisine spec, seed,
record_history)``, so they cache perfectly: the key is a SHA-256 over a
canonical JSON encoding of exactly those inputs (plus a format version),
and the value is the pickled run.  Because every backend derives the
same per-run integer seeds (:func:`repro.rng.spawn_seeds`), a cache
populated by a process-parallel sweep is byte-for-byte reusable by a
serial rerun — and vice versa — which is what lets experiments resume
and share runs across invocations.

Writes are atomic (temp file + :func:`os.replace`), so a cache directory
can be shared by concurrent workers; unreadable entries are treated as
misses and cleaned up rather than raised.

The storage mechanics live in :class:`PickleStore` so sibling stores can
share one directory, distinguished by entry suffix: :class:`RunCache`
(``*.run.pkl``, this module) holds simulation outputs, and
:class:`~repro.runtime.curve_cache.CurveCache` (``*.curve.pkl``) holds
mined rank-frequency curves layered on top of them.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Mapping, Sequence

import numpy as np

from repro.errors import RunCacheError
from repro.runtime.integrity import record_corruption

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.models.base import CulinaryEvolutionModel, EvolutionRun
    from repro.models.params import CuisineSpec

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheDiskStats",
    "CacheStats",
    "PickleStore",
    "RunCache",
    "fingerprint_many",
    "run_fingerprint",
]

#: Bump when the canonical encoding or the pickled payload layout
#: changes; old entries then miss instead of deserializing garbage.
#: v2: the payload gained the resolved engine + RNG-stream contract
#: version (``ModelParams`` also grew the ``engine`` field), so
#: reference and vectorized runs can never share an entry.
#: v3: the ``"batched"`` engine landed (its own key space under
#: ``BATCHED_STREAM_VERSION``), ``ENGINES`` grew a third member, and
#: CM-V gained a vectorized step — keys that previously resolved to
#: its reference engine now resolve to vectorized (DESIGN.md §7).
#: v4: the island engine landed (DESIGN.md §10) — the pickled payload
#: layout changed (``EvolutionTraceCounters`` gained
#: ``recipes_borrowed``), so pre-v4 entries would unpickle traces
#: missing the attribute; they miss and re-run instead.
CACHE_FORMAT_VERSION = 4


def _canonical(value: object) -> object:
    """Reduce ``value`` to a JSON-stable structure for fingerprinting.

    Dataclasses and plain objects carry their class name plus their
    attribute state (two models with equal params must not collide, and
    user-supplied strategies — a plain class implementing the
    ``FitnessStrategy`` protocol — must key on *what they are*, never
    on ``repr``, whose default form embeds the instance's memory
    address and is different every run).  Mappings are sorted, enums
    use their value, callables their qualified name.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__qualname__,
            **{
                field.name: _canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {
            "__mapping__": [
                [_canonical(k), _canonical(v)]
                for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
            ]
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    if callable(value) and hasattr(value, "__qualname__"):
        return {
            "__callable__": f"{getattr(value, '__module__', '?')}."
                            f"{value.__qualname__}"
        }
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "__class__": type(value).__qualname__,
            "state": _canonical(state),
        }
    return repr(value)


def fingerprint_many(
    model: "CulinaryEvolutionModel",
    spec: "CuisineSpec",
    seeds: "Sequence[int]",
    record_history: bool = False,
    engine: str | None = None,
) -> list[str]:
    """SHA-256 keys for many runs sharing one (model, spec).

    The model/spec half of the payload — by far the expensive part to
    canonicalize (a real cuisine spec holds hundreds of ingredient ids)
    — is encoded once and reused for every seed, so keying a 100-run
    ensemble costs one canonicalization, not a hundred.

    Args:
        model: The configured model.
        spec: Cuisine inputs.
        seeds: Per-run integer seeds.
        record_history: Whether the runs record trajectories.
        engine: Per-run engine override (as carried by
            :class:`~repro.runtime.runner.RunRequest`); ``None`` uses
            the model's own ``params.engine``.  The key always covers
            the *resolved* engine plus its RNG-stream contract version,
            so runs produced by different engines — or by an engine
            whose stream contract changed — never collide (DESIGN.md
            §5).
    """
    base = {
        "version": CACHE_FORMAT_VERSION,
        "model": {
            "class": type(model).__qualname__,
            "name": model.name,
            # Full instance state, not just params/fitness: models may
            # carry extra behavioral knobs as plain attributes (e.g.
            # NullModel.sample_from, CM-V's insert/delete rates), and
            # two configurations that run differently must never share
            # a cache key.
            "state": _canonical(vars(model)),
        },
        "engine": _canonical(model.engine_contract(engine)),
        "spec": _canonical(spec),
        "record_history": bool(record_history),
    }
    encoded_base = json.dumps(base, sort_keys=True, separators=(",", ":"))
    return [
        hashlib.sha256(
            f'{{"base":{encoded_base},"seed":{int(seed)}}}'.encode("utf-8")
        ).hexdigest()
        for seed in seeds
    ]


def run_fingerprint(
    model: "CulinaryEvolutionModel",
    spec: "CuisineSpec",
    seed: int,
    record_history: bool = False,
    engine: str | None = None,
) -> str:
    """SHA-256 key identifying one run's complete inputs."""
    return fingerprint_many(model, spec, [seed], record_history, engine)[0]


@dataclass(frozen=True)
class CacheDiskStats:
    """What one cache directory holds on disk right now.

    Attributes:
        entries: Number of cached runs.
        total_bytes: Their combined size.
        oldest_mtime: Epoch mtime of the oldest entry (``None`` when
            empty).
        newest_mtime: Epoch mtime of the newest entry.
    """

    entries: int
    total_bytes: int
    oldest_mtime: float | None = None
    newest_mtime: float | None = None


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0


class PickleStore:
    """A directory of pickled payloads keyed by SHA-256 hex strings.

    The shared mechanics of every on-disk store in the runtime: atomic
    writes, corrupt-entry eviction, hit/miss accounting, disk stats,
    clearing and age-based pruning.  Subclasses pick the entry suffix
    (so several stores can share one directory without colliding) and
    document what their payloads are.

    Args:
        directory: Store root; created (with parents) if missing.

    Raises:
        RunCacheError: If the path exists but is not a directory, or
            the class declares no entry suffix (the base class is not
            directly usable — a generic ``*.pkl`` glob would match and
            clear *every* sibling store's entries).
    """

    #: Entry filename suffix — namespaces this store within a shared
    #: cache directory.  Subclasses must override with a unique value.
    suffix: ClassVar[str] = ""

    def __init__(self, directory: str | Path):
        if not self.suffix:
            raise RunCacheError(
                f"{type(self).__name__} declares no entry suffix; "
                "subclass PickleStore and set a unique `suffix`"
            )
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise RunCacheError(
                f"cache path {self.directory} exists and is not a directory"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """On-disk location of one cache entry."""
        return self.directory / f"{key}{self.suffix}"

    def get(self, key: str) -> object | None:
        """Load a cached payload, or ``None`` on miss.

        Corrupt or unreadable entries count as misses and are removed so
        they do not poison every future lookup.  The eviction is not
        silent: it is recorded as a structured
        :class:`~repro.runtime.integrity.CacheCorruption` (queryable via
        :func:`~repro.runtime.integrity.cache_corruptions`) with a
        one-time warning per store — a flaky shared disk must look
        different from a cold cache.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError) as exc:
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            record_corruption(
                store=type(self).__name__,
                path=path,
                kind="unreadable-entry",
                detail=f"{type(exc).__name__}: {exc}",
                action="removed",
            )
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: object) -> None:
        """Store a payload atomically (safe under concurrent writers)."""
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError) as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise RunCacheError(f"failed to write cache entry: {exc}") from exc
        self.stats.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob(f"*{self.suffix}"))

    def disk_stats(self) -> CacheDiskStats:
        """Entry count, byte total and age bounds of the directory.

        Entries that vanish mid-scan (a concurrent ``clear``) are
        skipped rather than raised — stats are advisory.
        """
        entries = 0
        total_bytes = 0
        oldest: float | None = None
        newest: float | None = None
        for path in self.directory.glob(f"*{self.suffix}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries += 1
            total_bytes += stat.st_size
            if oldest is None or stat.st_mtime < oldest:
                oldest = stat.st_mtime
            if newest is None or stat.st_mtime > newest:
                newest = stat.st_mtime
        return CacheDiskStats(
            entries=entries,
            total_bytes=total_bytes,
            oldest_mtime=oldest,
            newest_mtime=newest,
        )

    def _tmp_glob(self) -> str:
        """Glob matching this store's in-flight temp files.

        :meth:`put` writes through ``path.with_suffix(".tmp.<pid>")``,
        which drops the entry name's final ``.pkl`` — e.g. a
        ``<key>.run.pkl`` entry's temp is ``<key>.run.tmp.<pid>`` — so
        the pattern is suffix-specific and never matches a sibling
        store's temps.
        """
        return f"*{self.suffix[: -len('.pkl')]}.tmp.*"

    def orphan_tmp_paths(self) -> list[Path]:
        """Leftover temp files from writers killed mid-:meth:`put`.

        A crash in the window between the temp write and the atomic
        rename strands a ``*.tmp.<pid>`` file that no later operation
        would otherwise touch; :meth:`clear` removes them all and
        :meth:`prune_older_than` removes the stale ones.
        """
        return sorted(self.directory.glob(self._tmp_glob()))

    def clear(self) -> int:
        """Delete every entry and orphan temp; returns the number removed."""
        removed = 0
        for pattern in (f"*{self.suffix}", self._tmp_glob()):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def prune_older_than(
        self, max_age_seconds: float, now: float | None = None
    ) -> int:
        """Delete entries whose mtime is older than ``max_age_seconds``.

        The age-based GC policy for long-lived cache directories: a
        periodic ``repro cache prune --max-age-days N`` keeps a shared
        cache bounded.  Age is measured from the entry's *write* mtime
        — :meth:`get` never refreshes it — so an entry older than the
        cutoff is removed even if it was read recently.  Entries that
        vanish mid-scan (a concurrent clear or prune) are skipped.
        Orphaned temp files past the cutoff are removed too (age-gated,
        not unconditionally: a fresh temp may be a concurrent writer's
        in-flight :meth:`put`).

        Args:
            max_age_seconds: Age threshold; entries strictly older are
                removed.
            now: Reference epoch time (defaults to the current time;
                injectable for tests).

        Returns:
            The number of entries removed.

        Raises:
            RunCacheError: If the threshold is negative.
        """
        if max_age_seconds < 0:
            raise RunCacheError(
                f"max_age_seconds must be >= 0, got {max_age_seconds}"
            )
        if now is None:
            import time

            now = time.time()
        cutoff = now - max_age_seconds
        removed = 0
        for pattern in (f"*{self.suffix}", self._tmp_glob()):
            for path in self.directory.glob(pattern):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue
        return removed


class RunCache(PickleStore):
    """A directory of pickled runs keyed by :func:`run_fingerprint`.

    Payloads are complete :class:`~repro.models.base.EvolutionRun`
    objects — a run is a pure function of ``(model, spec, seed,
    record_history, engine)``, so its key covers exactly those inputs.
    """

    suffix = ".run.pkl"

    def get(self, key: str) -> "EvolutionRun | None":
        """Load a cached run, or ``None`` on miss."""
        return super().get(key)  # type: ignore[return-value]

    def put(self, key: str, run: "EvolutionRun") -> None:
        """Store a run atomically (safe under concurrent writers)."""
        super().put(key, run)
