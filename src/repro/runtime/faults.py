"""Fault injection for the distributed work-queue backend (DESIGN.md §8).

Lease-based work queues earn their keep only under failure: a worker
that dies mid-task must lose its lease, a worker that hangs must be
timed out, and neither event may change the sweep's results.  Those
paths cannot be exercised by unit-testing happy-path code, so the worker
loop carries a deliberate fault seam: before executing a claimed task it
consults a :class:`FaultPlan` and, when a :class:`FaultSpec` matches,
*injects* the fault — killing the process, hanging past the coordinator
timeout, or delaying benignly.

The plan travels through the spool directory itself (``faults.json``),
so it reaches every worker process the same way real work does — local
workers spawned by the coordinator, and external ``repro worker``
processes alike (``repro worker --fault-plan`` also accepts one
directly).  Production spools simply never contain the file.

The injection point is fixed by contract: *after* the claim rename and
the first heartbeat, *before* the task payload is deserialized.  A
``kill`` therefore leaves exactly the on-disk state a real worker crash
leaves — a claim file whose heartbeat goes stale — which is what the
lease-expiry tests in ``tests/runtime/test_fault_injection.py`` rely on.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExecutionError

__all__ = [
    "FAULT_KINDS",
    "FAULT_KILL_EXIT_CODE",
    "FaultPlan",
    "FaultSpec",
    "inject_fault",
]

#: Recognized fault actions, in decreasing severity.
#:
#: * ``kill`` — the worker process exits immediately (``os._exit``), as
#:   an OOM kill or node loss would; its heartbeat stops and the
#:   coordinator reclaims the lease after ``lease_timeout``.
#: * ``hang`` — the worker sleeps for ``seconds`` while its heartbeat
#:   thread keeps beating, as a livelocked worker would; the coordinator
#:   reclaims via the per-task ``task_timeout`` instead.
#: * ``delay`` — the worker sleeps briefly and then completes normally;
#:   exercises slow workers without triggering any retry.
#: * ``kill_at_step`` — the worker starts the task normally and exits
#:   (``os._exit``, like ``kill``) when the run's engine loop reaches
#:   step ``at_step`` — a crash *mid-run*, after snapshots may have
#:   been written, which is what the checkpoint/resume contract
#:   (DESIGN.md §9) must survive.  The kill is armed here (before the
#:   task payload is deserialized, preserving the injection-point
#:   contract) and tripped by the run's
#:   :class:`~repro.runtime.checkpoint.RunCheckpointer`.
FAULT_KINDS: tuple[str, ...] = ("kill", "hang", "delay", "kill_at_step")

#: Exit code used by ``kill`` injections, distinguishable from real
#: crashes in worker logs and test assertions.
FAULT_KILL_EXIT_CODE = 47


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what happens, to whom, on which task.

    Attributes:
        action: One of :data:`FAULT_KINDS`.
        nth_task: 1-based ordinal of the claim that triggers the fault,
            counted per worker (``nth_task=1`` fires on a worker's first
            claimed task).
        worker: Worker id the fault targets (coordinator-spawned local
            workers are named ``local-0``, ``local-1``, ...); ``None``
            targets every worker, which is how "kill each worker's
            first task" retry-exhaustion plans are written.
        seconds: Sleep duration for ``hang``/``delay`` (ignored by
            ``kill``/``kill_at_step``).
        at_step: 1-based engine step at which ``kill_at_step`` fires
            (ignored by the other actions).
    """

    action: str
    nth_task: int = 1
    worker: str | None = None
    seconds: float = 0.0
    at_step: int = 1

    def __post_init__(self) -> None:
        if self.action not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault action {self.action!r}; "
                f"available: {FAULT_KINDS}"
            )
        if self.nth_task < 1:
            raise ExecutionError(
                f"nth_task is a 1-based claim ordinal, got {self.nth_task}"
            )
        if self.seconds < 0:
            raise ExecutionError(
                f"fault seconds must be >= 0, got {self.seconds}"
            )
        if self.at_step < 1:
            raise ExecutionError(
                f"at_step is a 1-based engine step, got {self.at_step}"
            )

    def matches(self, worker_id: str, claim_ordinal: int) -> bool:
        """Whether this fault fires for ``worker_id``'s Nth claim."""
        return (
            self.worker is None or self.worker == worker_id
        ) and self.nth_task == claim_ordinal


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of planned faults, serializable through the spool.

    Attributes:
        faults: The planned :class:`FaultSpec`s.  The first matching
            spec wins when several target the same (worker, ordinal).
    """

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def for_task(
        self, worker_id: str, claim_ordinal: int
    ) -> FaultSpec | None:
        """The fault to inject for this claim, or ``None``."""
        for spec in self.faults:
            if spec.matches(worker_id, claim_ordinal):
                return spec
        return None

    def to_payload(self) -> dict:
        """JSON-stable encoding (inverse of :meth:`from_payload`)."""
        return {
            "faults": [
                {
                    "action": spec.action,
                    "nth_task": spec.nth_task,
                    "worker": spec.worker,
                    "seconds": spec.seconds,
                    "at_step": spec.at_step,
                }
                for spec in self.faults
            ]
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_payload` output.

        Raises:
            ExecutionError: If the payload shape or any field is invalid
                (validation happens in :class:`FaultSpec`).
        """
        entries = payload.get("faults")
        if not isinstance(entries, list):
            raise ExecutionError(
                "fault plan payload must carry a 'faults' list"
            )
        return cls(
            faults=tuple(
                FaultSpec(
                    action=entry["action"],
                    nth_task=int(entry.get("nth_task", 1)),
                    worker=entry.get("worker"),
                    seconds=float(entry.get("seconds", 0.0)),
                    at_step=int(entry.get("at_step", 1)),
                )
                for entry in entries
            )
        )

    def save(self, path: str | Path) -> Path:
        """Write the plan as JSON (atomically — workers may be polling)."""
        path = Path(path)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan written by :meth:`save`.

        Raises:
            ExecutionError: If the file is missing or malformed — a
                fault plan that silently fails to load would turn a
                fault-injection test into a vacuous happy-path test.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ExecutionError(f"no fault plan at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ExecutionError(
                f"unreadable fault plan at {path}: {exc}"
            ) from exc
        return cls.from_payload(payload)


def inject_fault(spec: FaultSpec) -> None:
    """Perform one planned fault inside a worker process.

    ``kill`` never returns (the process exits with
    :data:`FAULT_KILL_EXIT_CODE`, heartbeats and all); ``hang`` and
    ``delay`` sleep for ``spec.seconds`` and return — the difference
    between them is purely whether the caller sized the sleep past the
    coordinator's ``task_timeout``.  ``kill_at_step`` returns after
    *arming* the kill: this seam runs before the task payload is
    deserialized, so the actual exit is performed by the run's
    checkpointer when the engine loop reaches ``spec.at_step``.
    """
    if spec.action == "kill":
        # os._exit, not sys.exit: a real crash does not unwind the
        # stack, flush buffers, or run atexit hooks — neither may the
        # injected one, or the test would exercise a gentler failure
        # than the one it claims to.
        os._exit(FAULT_KILL_EXIT_CODE)
    if spec.action == "kill_at_step":
        from repro.runtime.checkpoint import arm_kill_at_step

        arm_kill_at_step(spec.at_step)
        return
    time.sleep(spec.seconds)
