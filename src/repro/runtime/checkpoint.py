"""Crash-consistent mid-run checkpointing (DESIGN.md §9).

The distributed backend (§8) retries killed or hung workers, but a
retry replays its run from step 0 — at paper scale one late crash
throws away minutes of work.  This module bounds that cost: engines
periodically snapshot their complete mid-run state into a
:class:`CheckpointStore` beside the shared run cache, and a re-executed
attempt resumes from the latest valid snapshot instead of from scratch.
Because a snapshot captures *everything* the remaining steps read — the
engine state planes, the buffered RNG stream cursor, the generator
state itself, the loop counters and the recorded history — a resumed
run is **bit-identical** to an uninterrupted one; the §5 determinism
contract survives mid-run death.

Crash consistency is the same discipline the spool uses, applied twice:

* snapshots are written to a temp name and atomically renamed, so a
  worker killed mid-write leaves an orphan temp file, never a readable
  half-snapshot;
* each snapshot embeds a SHA-256 over its pickled payload plus
  :data:`CHECKPOINT_FORMAT_VERSION`; a snapshot that fails either check
  on read is **quarantined** (renamed aside, recorded via
  :func:`repro.runtime.integrity.record_corruption`) and the store
  falls back to the next older snapshot — worst case the run restarts
  from step 0, exactly as if checkpointing were off.

The fault side of the contract lives here too: the ``kill_at_step``
fault kind (:mod:`repro.runtime.faults`) *arms* a mid-run kill in the
worker process via :func:`arm_kill_at_step`; the run's
:class:`RunCheckpointer` trips it after completing that step, dying
through :func:`_hard_exit` with the standard fault exit code.  Tests
monkeypatch :func:`_hard_exit` to raise instead, which is what lets the
resume property tests simulate hundreds of crashes in-process.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import RunCacheError
from repro.runtime.faults import FAULT_KILL_EXIT_CODE
from repro.runtime.integrity import record_corruption

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointPolicy",
    "CheckpointStore",
    "ResumeEvent",
    "RunCheckpointer",
    "arm_kill_at_step",
    "clear_resume_events",
    "consume_armed_kill",
    "disarm_kill",
    "resume_events",
]

#: Bump when the snapshot wrapper layout or any engine's snapshot
#: payload changes; old snapshots are then discarded as
#: ``format-version`` mismatches instead of restoring garbage state.
CHECKPOINT_FORMAT_VERSION = 1

#: Entry suffix namespacing snapshots within a shared cache directory
#: (beside ``*.run.pkl`` / ``*.curve.pkl`` — the store idiom of §5).
CHECKPOINT_SUFFIX = ".ckpt.pkl"

#: Suffix quarantined (corrupt) snapshots are renamed to.  They are
#: kept, not unlinked: a torn snapshot is evidence about the disk.
QUARANTINE_SUFFIX = ".ckpt.bad"

#: Snapshots retained per run key.  Two, not one: if a worker dies
#: while *writing* snapshot k (leaving only a temp file) the previous
#: snapshot must still exist, and if snapshot k lands but is later
#: found corrupt, k-1 is the fall-back.
KEEP_SNAPSHOTS = 2


@dataclass(frozen=True)
class CheckpointPolicy:
    """Where and how often a dispatched run should checkpoint.

    Attached to :class:`~repro.runtime.runner.RunRequest` /
    :class:`~repro.runtime.runner.BatchRequest` work items by the
    dispatcher when ``checkpoint_every`` is configured; deliberately
    **excluded from cache fingerprints** — checkpointing is an execution
    concern and must never change what a run *is*.

    Attributes:
        directory: Snapshot directory, as a plain string so the policy
            pickles compactly across the spool (in practice the shared
            run-cache directory).
        every: Snapshot period in engine steps (> 0).
    """

    directory: str
    every: int

    def __post_init__(self) -> None:
        if self.every < 1:
            raise RunCacheError(
                f"checkpoint_every must be >= 1, got {self.every}"
            )


@dataclass(frozen=True)
class ResumeEvent:
    """One observed resume: a run continued from a snapshot.

    Attributes:
        key: The run's checkpoint key.
        step: Engine step the snapshot was taken at.
    """

    key: str
    step: int


#: Resumes observed in this process, in observation order — queryable
#: like :func:`~repro.runtime.distributed.task_attempts`, and read by
#: the distributed worker to stamp ``resumed_from_step`` onto result
#: payloads.
_RESUME_EVENTS: list[ResumeEvent] = []

#: Step at which the next checkpointer built in this process must kill
#: it (the ``kill_at_step`` fault seam); ``None`` = disarmed.
_ARMED_KILL_STEP: int | None = None


def resume_events() -> tuple[ResumeEvent, ...]:
    """Every snapshot resume recorded so far, in observation order."""
    return tuple(_RESUME_EVENTS)


def clear_resume_events() -> None:
    """Reset the resume record (tests; long-lived services)."""
    _RESUME_EVENTS.clear()


def arm_kill_at_step(step: int) -> None:
    """Arm a mid-run kill for the next checkpointed run in this process.

    Called by :func:`repro.runtime.faults.inject_fault` for the
    ``kill_at_step`` fault kind — the injection seam runs before the
    task payload even deserializes, so the fault cannot reach into the
    run directly; it arms this latch and the run's checkpointer trips
    it after completing step ``step``.

    Raises:
        RunCacheError: If ``step < 1`` (step 0 is "before the run").
    """
    global _ARMED_KILL_STEP
    if step < 1:
        raise RunCacheError(f"kill step must be >= 1, got {step}")
    _ARMED_KILL_STEP = step


def disarm_kill() -> None:
    """Clear any armed kill (worker task boundary; tests)."""
    global _ARMED_KILL_STEP
    _ARMED_KILL_STEP = None


def consume_armed_kill() -> int | None:
    """The armed kill step, disarming it; ``None`` when disarmed."""
    global _ARMED_KILL_STEP
    step = _ARMED_KILL_STEP
    _ARMED_KILL_STEP = None
    return step


def _hard_exit(code: int) -> None:  # pragma: no cover - kills the process
    """Die like a crash (no unwind, no flush) — the kill primitive.

    Isolated so the resume property tests can monkeypatch it to raise a
    sentinel exception instead: the *store* still sees exactly what a
    real ``os._exit`` leaves on disk (snapshots written, nothing else),
    while the test process survives to perform the resume.
    """
    os._exit(code)


class CheckpointStore:
    """A directory of checksummed, versioned engine-state snapshots.

    Snapshots are keyed by the run's cache fingerprint (so a retried
    attempt of the same work finds them) plus the engine step they were
    taken at: ``<key>.s<step>.ckpt.pkl``.  The on-disk wrapper is a
    pickled dict ``{version, step, sha256, payload}`` where ``payload``
    is the engine's pickled snapshot and ``sha256`` its digest — the
    checksum covers exactly the bytes that will be unpickled into
    engine state.

    Write path: temp file + atomic rename, then prune to the newest
    :data:`KEEP_SNAPSHOTS` per key.  Read path
    (:meth:`latest`): newest step first; any snapshot that is torn,
    unreadable, checksum-mismatched or version-mismatched is quarantined
    (renamed to ``*.ckpt.bad``) with a recorded
    :class:`~repro.runtime.integrity.CacheCorruption`, and the scan
    falls back to the next older snapshot.

    Args:
        directory: Snapshot root; created (with parents) if missing.

    Raises:
        RunCacheError: If the path exists but is not a directory.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise RunCacheError(
                f"checkpoint path {self.directory} exists and is not a "
                "directory"
            )
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str, step: int) -> Path:
        """On-disk location of one snapshot."""
        return self.directory / f"{key}.s{step:08d}{CHECKPOINT_SUFFIX}"

    def _snapshots(self, key: str) -> list[tuple[int, Path]]:
        """(step, path) pairs for one key, newest step first."""
        found: list[tuple[int, Path]] = []
        for path in self.directory.glob(f"{key}.s*{CHECKPOINT_SUFFIX}"):
            stem = path.name[len(key) + 2 : -len(CHECKPOINT_SUFFIX)]
            try:
                found.append((int(stem), path))
            except ValueError:
                continue
        found.sort(reverse=True)
        return found

    def steps(self, key: str) -> tuple[int, ...]:
        """Steps with a snapshot on disk for this key, newest first."""
        return tuple(step for step, _path in self._snapshots(key))

    def put(self, key: str, step: int, payload: object) -> Path:
        """Write one snapshot atomically and prune old ones for the key.

        Raises:
            RunCacheError: On a write failure, or ``step < 1`` — the
                caller (the engine's checkpoint hook) treats a failed
                snapshot as fatal for *checkpointing*, not for the run.
        """
        if step < 1:
            raise RunCacheError(f"snapshot step must be >= 1, got {step}")
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        wrapper = {
            "version": CHECKPOINT_FORMAT_VERSION,
            "step": int(step),
            "sha256": hashlib.sha256(blob).hexdigest(),
            "payload": blob,
        }
        path = self.path_for(key, step)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_bytes(
                pickle.dumps(wrapper, protocol=pickle.HIGHEST_PROTOCOL)
            )
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError) as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise RunCacheError(
                f"failed to write checkpoint snapshot: {exc}"
            ) from exc
        for old_step, old_path in self._snapshots(key)[KEEP_SNAPSHOTS:]:
            try:
                old_path.unlink()
            except OSError:
                pass
        return path

    def _quarantine(self, path: Path, kind: str, detail: str) -> None:
        target = path.with_name(
            path.name[: -len(CHECKPOINT_SUFFIX)] + QUARANTINE_SUFFIX
        )
        try:
            os.replace(path, target)
            action = "quarantined"
        except OSError:
            action = "removed"  # rename failed; it is gone either way
            try:
                path.unlink()
            except OSError:
                pass
        record_corruption(
            store=type(self).__name__,
            path=path,
            kind=kind,
            detail=detail,
            action=action,
        )

    def latest(self, key: str) -> tuple[int, object] | None:
        """The newest *valid* snapshot as ``(step, payload)``, or ``None``.

        Scans newest first; snapshots failing any integrity check are
        quarantined and the scan falls through to older ones — a run
        with every snapshot corrupt simply restarts from step 0.
        """
        for step, path in self._snapshots(key):
            try:
                wrapper = pickle.loads(path.read_bytes())
            except FileNotFoundError:
                continue  # pruned/discarded under us
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError) as exc:
                self._quarantine(
                    path, "torn-snapshot",
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            if (
                not isinstance(wrapper, dict)
                or wrapper.get("version") != CHECKPOINT_FORMAT_VERSION
            ):
                self._quarantine(
                    path, "format-version",
                    f"version {wrapper.get('version') if isinstance(wrapper, dict) else '?'}"
                    f" != {CHECKPOINT_FORMAT_VERSION}",
                )
                continue
            blob = wrapper.get("payload")
            if (
                not isinstance(blob, bytes)
                or hashlib.sha256(blob).hexdigest() != wrapper.get("sha256")
            ):
                self._quarantine(
                    path, "checksum-mismatch",
                    "payload digest does not match recorded sha256",
                )
                continue
            try:
                payload = pickle.loads(blob)
            except Exception as exc:  # checksum passed but payload rots
                self._quarantine(
                    path, "torn-snapshot",
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            return step, payload
        return None

    def discard(self, key: str) -> int:
        """Remove every snapshot for a finished run; returns the count."""
        removed = 0
        for _step, path in self._snapshots(key):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(
            1 for _ in self.directory.glob(f"*{CHECKPOINT_SUFFIX}")
        )

    def orphan_tmp_paths(self) -> list[Path]:
        """Leftover ``*.ckpt.pkl.tmp.<pid>`` files from killed writers."""
        return sorted(
            self.directory.glob(f"*{CHECKPOINT_SUFFIX}.tmp.*")
        )

    def clear(self) -> int:
        """Remove all snapshots, quarantined snapshots and orphan temps."""
        removed = 0
        for pattern in (
            f"*{CHECKPOINT_SUFFIX}",
            f"*{QUARANTINE_SUFFIX}",
            f"*{CHECKPOINT_SUFFIX}.tmp.*",
        ):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def prune_older_than(
        self, max_age_seconds: float, now: float | None = None
    ) -> int:
        """Age-based GC over snapshots, quarantine files and orphan temps.

        Same policy as :meth:`PickleStore.prune_older_than
        <repro.runtime.cache.PickleStore.prune_older_than>`: strictly
        older than the cutoff is removed; the caller runs it
        periodically on long-lived shared directories.

        Raises:
            RunCacheError: If the threshold is negative.
        """
        if max_age_seconds < 0:
            raise RunCacheError(
                f"max_age_seconds must be >= 0, got {max_age_seconds}"
            )
        if now is None:
            now = time.time()
        cutoff = now - max_age_seconds
        removed = 0
        for pattern in (
            f"*{CHECKPOINT_SUFFIX}",
            f"*{QUARANTINE_SUFFIX}",
            f"*{CHECKPOINT_SUFFIX}.tmp.*",
        ):
            for path in self.directory.glob(pattern):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue
        return removed


class RunCheckpointer:
    """One run's checkpoint hook: load-on-start, snapshot-every-K, kill.

    Built by the runner for each dispatched work item that carries a
    :class:`CheckpointPolicy` (or when a ``kill_at_step`` fault is
    armed — a kill needs the step counter even with snapshots off) and
    threaded into the engine, which calls :meth:`load` once before its
    loop and :meth:`after_step` at the end of every step.

    Args:
        store: Snapshot store; ``None`` disables persistence (the
            kill-only case).
        key: The run's checkpoint key (its cache fingerprint, or the
            batch digest for a :class:`~repro.runtime.runner.
            BatchRequest`).
        every: Snapshot period in steps; ``0`` disables snapshots.
        kill_at_step: Die (via :func:`_hard_exit`) after completing
            this step — the armed ``kill_at_step`` fault.
    """

    def __init__(
        self,
        store: CheckpointStore | None,
        key: str,
        every: int = 0,
        kill_at_step: int | None = None,
    ):
        self._store = store
        self._key = key
        self._every = max(int(every), 0)
        self._kill_at_step = kill_at_step
        #: Step of the snapshot this run resumed from; ``None`` for a
        #: fresh start.  Read back into ``TaskAttempt.resumed_from_step``.
        self.resumed_from_step: int | None = None
        self._loaded_step = 0

    @property
    def key(self) -> str:
        return self._key

    def load(self) -> object | None:
        """The latest valid snapshot payload, or ``None`` (fresh start).

        Recording the resume (:class:`ResumeEvent`) here keeps the
        "did we actually resume" signal at the only place that knows.
        """
        if self._store is None:
            return None
        found = self._store.latest(self._key)
        if found is None:
            return None
        step, payload = found
        self._loaded_step = step
        self.resumed_from_step = step
        _RESUME_EVENTS.append(ResumeEvent(key=self._key, step=step))
        return payload

    def after_step(self, step: int, capture: Callable[[], object]) -> None:
        """Engine hook: maybe snapshot, then maybe trip the armed kill.

        ``capture`` is called only when a snapshot is actually due, so
        the per-step cost of an off-period step is two comparisons.
        The snapshot-then-kill order is the point of ``kill_at_step``:
        when the kill step is snapshot-aligned, the snapshot it resumes
        from is the one written moments before death.

        Args:
            step: 1-based count of completed engine steps.
            capture: Zero-argument callable returning the engine's
                picklable snapshot payload; must not consume RNG state
                (bit-identity would break).
        """
        if (
            self._store is not None
            and self._every
            and step > self._loaded_step
            and step % self._every == 0
        ):
            self._store.put(self._key, step, capture())
        if self._kill_at_step is not None and step == self._kill_at_step:
            _hard_exit(FAULT_KILL_EXIT_CODE)

    def finished(self) -> None:
        """Discard this run's snapshots (it completed; nothing to resume)."""
        if self._store is not None:
            self._store.discard(self._key)
