"""Runtime configuration: which backend runs the work, and how wide.

:class:`RuntimeConfig` is the one value that travels from the CLI (or
any programmatic caller) down through :class:`~repro.experiments.base.
ExperimentContext` and :func:`~repro.models.ensemble.run_ensemble` into
the executor layer.  It is deliberately tiny and immutable so it can sit
inside frozen dataclasses and be compared/hashed freely.

The distributed backend carries more knobs than a flag and a worker
count (spool location, lease/timeout/backoff policy), so those live in
their own frozen :class:`DistributedConfig` hanging off the runtime
config — absent (``None``) for the three in-process backends, and
defaultable for ``backend="distributed"`` (a private temp spool served
by local workers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ExecutionError
from repro.runtime.faults import FaultPlan

__all__ = ["BACKENDS", "DistributedConfig", "RuntimeConfig"]

#: Recognized executor backends, in increasing isolation order.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process", "distributed")


@dataclass(frozen=True)
class DistributedConfig:
    """Policy knobs for the distributed work-queue backend (DESIGN.md §8).

    Attributes:
        spool_dir: Work-queue directory shared by the coordinator and
            every worker (a shared filesystem path for multi-host use).
            ``None`` means a private temporary spool created per map and
            removed afterwards — useful only with ``local_workers``.
        local_workers: Worker processes the coordinator spawns itself.
            ``None`` resolves to :meth:`RuntimeConfig.resolve_jobs`;
            ``0`` means rely entirely on externally attached
            ``repro worker`` processes.
        task_timeout: Seconds a single claimed task may run (heartbeats
            notwithstanding) before the coordinator reclaims it — the
            hung-worker bound.
        lease_timeout: Seconds without a heartbeat before a claim is
            declared dead and the task requeued — the crashed-worker
            bound.  Must comfortably exceed the workers'
            ``heartbeat_interval``.
        heartbeat_interval: Seconds between heartbeat touches by
            coordinator-spawned local workers (external workers choose
            their own via ``repro worker --heartbeat-interval``).
        max_attempts: Total attempts per task (first try included)
            before the map fails with
            :class:`~repro.errors.TaskRetryExhaustedError`.
        backoff_base: First retry delay, seconds; attempt ``k`` waits
            ``backoff_base * 2**(k-1)`` scaled by jitter, capped at
            ``backoff_cap``.
        backoff_cap: Upper bound on any single retry delay.
        attach_deadline: Seconds the coordinator waits for a first
            worker sign-of-life before degrading to the process backend
            (only reachable with ``local_workers=0``).
        poll_interval: Coordinator/local-worker spool polling period.
        max_worker_restarts: Local workers the coordinator will respawn
            after crashes, across the whole map, before running with
            whatever is left.
        fault_plan: Optional :class:`~repro.runtime.faults.FaultPlan`
            written into the spool for workers to obey (testing).
        checkpoint_every: Snapshot a task's engine state every N steps
            (DESIGN.md §9) so a reclaimed task resumes mid-run instead
            of replaying from scratch.  ``None`` defers to
            :attr:`RuntimeConfig.checkpoint_every`; requires a
            ``cache_dir`` (snapshots live beside the run cache).
    """

    spool_dir: Path | None = None
    local_workers: int | None = None
    task_timeout: float = 300.0
    lease_timeout: float = 15.0
    heartbeat_interval: float = 1.0
    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_cap: float = 30.0
    attach_deadline: float = 10.0
    poll_interval: float = 0.05
    max_worker_restarts: int = 4
    fault_plan: FaultPlan | None = None
    checkpoint_every: int | None = None

    def __post_init__(self) -> None:
        if self.spool_dir is not None and not isinstance(
            self.spool_dir, Path
        ):
            object.__setattr__(self, "spool_dir", Path(self.spool_dir))
        if self.local_workers is not None and self.local_workers < 0:
            raise ExecutionError(
                f"local_workers must be >= 0 (0 = external workers only), "
                f"got {self.local_workers}"
            )
        for name in (
            "task_timeout", "lease_timeout", "heartbeat_interval",
            "backoff_base", "backoff_cap", "attach_deadline",
            "poll_interval",
        ):
            if getattr(self, name) <= 0:
                raise ExecutionError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if self.lease_timeout <= self.heartbeat_interval:
            raise ExecutionError(
                f"lease_timeout ({self.lease_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval}), or every "
                "healthy worker would look dead between heartbeats"
            )
        if self.max_attempts < 1:
            raise ExecutionError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_worker_restarts < 0:
            raise ExecutionError(
                f"max_worker_restarts must be >= 0, "
                f"got {self.max_worker_restarts}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ExecutionError(
                f"checkpoint_every must be >= 1 (None = disabled), "
                f"got {self.checkpoint_every}"
            )


@dataclass(frozen=True)
class RuntimeConfig:
    """How ensemble runs (and other fan-out work) should execute.

    Attributes:
        backend: ``"serial"`` (in-line, the default), ``"thread"``
            (shared-memory pool; wins when workers release the GIL),
            ``"process"`` (one interpreter per worker; wins for the
            pure-Python Algorithm 1 loop), or ``"distributed"`` (a
            file-based work queue served by local and/or remote
            ``repro worker`` processes — DESIGN.md §8).
        jobs: Worker count.  ``1`` degrades the in-process parallel
            backends to serial; ``0`` means "all available cores",
            resolved lazily at executor creation so a config built on
            one machine stays meaningful on another.  For the
            distributed backend this is the default local-worker count
            (see :attr:`DistributedConfig.local_workers`).
        cache_dir: Optional on-disk run-cache directory.  When set,
            completed :class:`~repro.models.base.EvolutionRun` results
            are stored keyed by ``(model, params, cuisine, seed)`` and
            reused across invocations and backends.  Under the
            distributed backend the directory doubles as the result
            rendezvous: workers write fresh runs into it directly, so
            an interrupted sweep resumes from whatever completed.
        distributed: Distributed-backend policy; ``None`` uses
            :class:`DistributedConfig` defaults when the backend is
            ``"distributed"`` and is meaningless otherwise.
        checkpoint_every: Snapshot each dispatched run's engine state
            every N steps into the cache directory (DESIGN.md §9), so
            an interrupted run resumes bit-identically from its latest
            valid snapshot.  ``None`` disables (unless a
            :attr:`DistributedConfig.checkpoint_every` overrides);
            honored on every backend, but only when ``cache_dir`` is
            set — snapshots need the same durable home as results.
    """

    backend: str = "serial"
    jobs: int = 1
    cache_dir: Path | None = None
    distributed: DistributedConfig | None = None
    checkpoint_every: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {self.backend!r}; available: {BACKENDS}"
            )
        if self.jobs < 0:
            raise ExecutionError(
                f"jobs must be >= 0 (0 = all cores), got {self.jobs}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ExecutionError(
                f"checkpoint_every must be >= 1 (None = disabled), "
                f"got {self.checkpoint_every}"
            )
        if self.cache_dir is not None and not isinstance(self.cache_dir, Path):
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))

    def resolve_jobs(self) -> int:
        """The effective worker count (``0`` -> CPU count)."""
        if self.jobs == 0:
            import os

            return max(os.cpu_count() or 1, 1)
        return self.jobs

    def resolve_distributed(self) -> DistributedConfig:
        """The distributed policy in effect (defaults when unset)."""
        return (
            self.distributed
            if self.distributed is not None
            else DistributedConfig()
        )

    def resolve_checkpoint_every(self) -> int:
        """The effective snapshot period in steps (``0`` = disabled).

        The distributed policy's value wins when set — the work-queue
        path is where mid-run resume pays off most — otherwise the
        runtime-level value applies to every backend.
        """
        if (
            self.distributed is not None
            and self.distributed.checkpoint_every is not None
        ):
            return self.distributed.checkpoint_every
        return self.checkpoint_every or 0

    def with_cache(self, cache_dir: str | Path | None) -> "RuntimeConfig":
        """Copy of this config writing runs to ``cache_dir``."""
        return replace(
            self, cache_dir=Path(cache_dir) if cache_dir else None
        )
