"""Runtime configuration: which backend runs the work, and how wide.

:class:`RuntimeConfig` is the one value that travels from the CLI (or
any programmatic caller) down through :class:`~repro.experiments.base.
ExperimentContext` and :func:`~repro.models.ensemble.run_ensemble` into
the executor layer.  It is deliberately tiny and immutable so it can sit
inside frozen dataclasses and be compared/hashed freely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ExecutionError

__all__ = ["BACKENDS", "RuntimeConfig"]

#: Recognized executor backends, in increasing isolation order.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")


@dataclass(frozen=True)
class RuntimeConfig:
    """How ensemble runs (and other fan-out work) should execute.

    Attributes:
        backend: ``"serial"`` (in-line, the default), ``"thread"``
            (shared-memory pool; wins when workers release the GIL), or
            ``"process"`` (one interpreter per worker; wins for the
            pure-Python Algorithm 1 loop).
        jobs: Worker count.  ``1`` always degrades to the serial
            backend; ``0`` means "all available cores", resolved lazily
            at executor creation so a config built on one machine stays
            meaningful on another.
        cache_dir: Optional on-disk run-cache directory.  When set,
            completed :class:`~repro.models.base.EvolutionRun` results
            are stored keyed by ``(model, params, cuisine, seed)`` and
            reused across invocations and backends.
    """

    backend: str = "serial"
    jobs: int = 1
    cache_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {self.backend!r}; available: {BACKENDS}"
            )
        if self.jobs < 0:
            raise ExecutionError(
                f"jobs must be >= 0 (0 = all cores), got {self.jobs}"
            )
        if self.cache_dir is not None and not isinstance(self.cache_dir, Path):
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))

    def resolve_jobs(self) -> int:
        """The effective worker count (``0`` -> CPU count)."""
        if self.jobs == 0:
            import os

            return max(os.cpu_count() or 1, 1)
        return self.jobs

    def with_cache(self, cache_dir: str | Path | None) -> "RuntimeConfig":
        """Copy of this config writing runs to ``cache_dir``."""
        return replace(
            self, cache_dir=Path(cache_dir) if cache_dir else None
        )
