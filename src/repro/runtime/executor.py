"""Executor backends: serial, thread and process order-preserving maps.

The contract is intentionally minimal — :meth:`Executor.map` applies a
function over items and returns results *in input order* — because that
is the only primitive the ensemble runtime needs, and order preservation
is what keeps parallel execution bit-identical to serial execution
(every run already owns an independent seed, so scheduling order cannot
leak into results; output order must not either).

Backend selection notes:

* ``serial`` — no pools, no overhead; also what every other backend
  degrades to at ``jobs=1``.
* ``thread`` — one shared interpreter.  Algorithm 1 is mostly pure
  Python, so threads buy little on CPython today, but the backend is
  free to use (no pickling constraints) and becomes the right choice
  for I/O-bound work and free-threaded interpreters.
* ``process`` — true parallelism for the simulation loop.  Both the
  callable and the items must be picklable; the run-execution layer
  (:mod:`repro.runtime.runner`) only submits module-level functions and
  dataclass payloads, which satisfies that.
* ``distributed`` — a file-based work queue served by local and/or
  externally attached ``repro worker`` processes, with lease-based
  fault tolerance (:mod:`repro.runtime.distributed`, DESIGN.md §8).
  Same pickling constraints as ``process``; constructed lazily here so
  the executor layer stays import-cycle-free.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, ClassVar, Iterable, Sequence, TypeVar

from repro.errors import ExecutionError
from repro.runtime.config import RuntimeConfig

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
]

T = TypeVar("T")
R = TypeVar("R")


class Executor(abc.ABC):
    """An order-preserving ``map`` over a (possibly parallel) backend."""

    #: Backend name, matching :data:`repro.runtime.config.BACKENDS`.
    name: ClassVar[str] = ""

    #: Whether ``map`` requires ``fn`` and items to be picklable.
    requires_pickling: ClassVar[bool] = False

    @abc.abstractmethod
    def map(
        self, fn: Callable[[T], R], items: Sequence[T] | Iterable[T]
    ) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order."""

    @property
    def jobs(self) -> int:
        """Effective worker count (1 for the serial backend)."""
        return 1


class SerialExecutor(Executor):
    """In-line execution — the reference backend."""

    name = "serial"

    def map(
        self, fn: Callable[[T], R], items: Sequence[T] | Iterable[T]
    ) -> list[R]:
        return [fn(item) for item in items]


class _PoolExecutor(Executor):
    """Shared implementation for the pooled backends."""

    _pool_factory: ClassVar[type]

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ExecutionError(
                f"{self.name} backend needs jobs >= 2, got {jobs}; "
                "use get_executor() for the automatic serial fallback"
            )
        self._jobs = jobs

    @property
    def jobs(self) -> int:
        return self._jobs

    def map(
        self, fn: Callable[[T], R], items: Sequence[T] | Iterable[T]
    ) -> list[R]:
        items = list(items)
        if not items:
            return []
        workers = min(self._jobs, len(items))
        if workers < 2:
            return [fn(item) for item in items]
        with self._pool_factory(max_workers=workers) as pool:
            return list(pool.map(fn, items))


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution (shared memory, no pickling)."""

    name = "thread"
    _pool_factory = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution (true parallelism; picklable work only)."""

    name = "process"
    requires_pickling = True
    _pool_factory = ProcessPoolExecutor


_EXECUTORS: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def get_executor(config: RuntimeConfig | None = None) -> Executor:
    """Build the executor for a runtime config.

    ``jobs=1`` (the default) degrades the *in-process* parallel
    backends to :class:`SerialExecutor` — pools with one worker would
    pay pool overhead for serial semantics, so the fallback is both the
    safe and the fast choice.  The distributed backend is exempt: even
    a one-worker queue changes *where* work runs (external workers, a
    shared spool), so it is built whenever requested.

    Args:
        config: Runtime configuration; ``None`` means serial.

    Raises:
        ExecutionError: For unknown backend names (raised at
            :class:`~repro.runtime.config.RuntimeConfig` construction).
    """
    config = config if config is not None else RuntimeConfig()
    if config.backend == "distributed":
        # Imported lazily: distributed builds *on* this module's
        # Executor ABC and fallback pools, so a top-level import would
        # cycle.
        from repro.runtime.distributed import DistributedExecutor

        return DistributedExecutor(config)
    jobs = config.resolve_jobs()
    if config.backend == "serial" or jobs <= 1:
        return SerialExecutor()
    factory = _EXECUTORS.get(config.backend)
    if factory is None:  # pragma: no cover - RuntimeConfig validates first
        raise ExecutionError(f"unknown backend {config.backend!r}")
    return factory(jobs)
