"""Nutrition substrate for the paper's dietary-intervention motivation."""

from repro.nutrition.profiles import (
    NutrientProfile,
    NutritionTable,
    build_nutrition_table,
)
from repro.nutrition.scoring import (
    health_score,
    ingredient_health_scores,
    nutrition_fitness,
)

__all__ = [
    "NutrientProfile",
    "NutritionTable",
    "build_nutrition_table",
    "health_score",
    "ingredient_health_scores",
    "nutrition_fitness",
]
