"""Health scoring and nutrition-derived model fitness.

Converts :class:`~repro.nutrition.profiles.NutrientProfile` values into
a scalar health score in [0, 1] (a nutrient-density heuristic: reward
protein and fiber, penalize sugar, sodium and energy density) and wraps
per-ingredient scores as a :class:`~repro.models.fitness.ScoredFitness`
so the Sec. V machinery can run dietary interventions directly.
"""

from __future__ import annotations

import numpy as np

from repro.lexicon.lexicon import Lexicon
from repro.models.fitness import ScoredFitness
from repro.nutrition.profiles import NutrientProfile, NutritionTable

__all__ = ["health_score", "ingredient_health_scores", "nutrition_fitness"]

#: Normalization scales: roughly the 95th percentile of each nutrient
#: across the synthetic table, so components land in [0, 1].
_SCALES = {
    "kcal": 700.0,
    "protein_g": 30.0,
    "fiber_g": 12.0,
    "sugar_g": 60.0,
    "sodium_mg": 900.0,
}

#: Component weights of the density heuristic (sum of |weights| = 1).
_WEIGHTS = {
    "protein": 0.25,
    "fiber": 0.25,
    "energy": -0.20,
    "sugar": -0.15,
    "sodium": -0.15,
}


def health_score(profile: NutrientProfile) -> float:
    """Scalar health score in [0, 1]; higher = healthier.

    A transparent nutrient-density heuristic, not a clinical index:
    ``0.5 + protein + fiber - energy - sugar - sodium`` with each
    component normalized to [0, 1] and weighted per ``_WEIGHTS``.
    """
    protein = min(profile.protein_g / _SCALES["protein_g"], 1.0)
    fiber = min(profile.fiber_g / _SCALES["fiber_g"], 1.0)
    energy = min(profile.kcal / _SCALES["kcal"], 1.0)
    sugar = min(profile.sugar_g / _SCALES["sugar_g"], 1.0)
    sodium = min(profile.sodium_mg / _SCALES["sodium_mg"], 1.0)
    raw = (
        0.5
        + _WEIGHTS["protein"] * protein
        + _WEIGHTS["fiber"] * fiber
        + _WEIGHTS["energy"] * energy
        + _WEIGHTS["sugar"] * sugar
        + _WEIGHTS["sodium"] * sodium
    )
    return float(np.clip(raw, 0.0, 1.0))


def ingredient_health_scores(
    lexicon: Lexicon, table: NutritionTable
) -> dict[int, float]:
    """Health score for every lexicon entity present in the table."""
    return {
        ingredient.ingredient_id: health_score(
            table.profile_of(ingredient.ingredient_id)
        )
        for ingredient in lexicon
        if ingredient.ingredient_id in table
    }


def nutrition_fitness(
    lexicon: Lexicon,
    table: NutritionTable,
    jitter: float = 0.05,
) -> ScoredFitness:
    """A :class:`ScoredFitness` driven by nutrition (dietary intervention).

    Args:
        lexicon: Lexicon whose ingredients are scored.
        table: Nutrition table to score from.
        jitter: Tie-breaking noise (fitness comparisons are strict).
    """
    return ScoredFitness(
        scores=ingredient_health_scores(lexicon, table), jitter=jitter
    )
