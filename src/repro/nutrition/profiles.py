"""Synthetic nutrient profiles per ingredient.

The paper's closing motivation is "dietary interventions for better
nutrition and health"; exercising that requires per-ingredient nutrition
data, which (like FlavorDB) is an external database we substitute.  Each
category gets a realistic macro-nutrient prototype (per 100 g) and each
ingredient a deterministic perturbation of its category prototype, so
analyses are stable for a fixed seed and category-level contrasts are
physiologically sensible (legumes are high-fiber, bakery is high-carb,
oils are pure fat, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lexicon.categories import Category
from repro.lexicon.lexicon import Lexicon
from repro.rng import SeedLike, ensure_rng

__all__ = ["NutrientProfile", "NutritionTable", "build_nutrition_table"]


@dataclass(frozen=True)
class NutrientProfile:
    """Macro-nutrients per 100 g of an ingredient.

    Attributes:
        kcal: Energy.
        protein_g: Protein grams.
        fat_g: Fat grams.
        carb_g: Carbohydrate grams.
        fiber_g: Fiber grams.
        sugar_g: Sugar grams.
        sodium_mg: Sodium milligrams.
    """

    kcal: float
    protein_g: float
    fat_g: float
    carb_g: float
    fiber_g: float
    sugar_g: float
    sodium_mg: float

    def __post_init__(self) -> None:
        for field_name in (
            "kcal", "protein_g", "fat_g", "carb_g", "fiber_g", "sugar_g",
            "sodium_mg",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    def combined(self, other: "NutrientProfile") -> "NutrientProfile":
        """Element-wise sum (aggregation across recipe ingredients)."""
        return NutrientProfile(
            kcal=self.kcal + other.kcal,
            protein_g=self.protein_g + other.protein_g,
            fat_g=self.fat_g + other.fat_g,
            carb_g=self.carb_g + other.carb_g,
            fiber_g=self.fiber_g + other.fiber_g,
            sugar_g=self.sugar_g + other.sugar_g,
            sodium_mg=self.sodium_mg + other.sodium_mg,
        )

    def scaled(self, factor: float) -> "NutrientProfile":
        """Element-wise scaling (e.g. per-ingredient averaging)."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return NutrientProfile(
            kcal=self.kcal * factor,
            protein_g=self.protein_g * factor,
            fat_g=self.fat_g * factor,
            carb_g=self.carb_g * factor,
            fiber_g=self.fiber_g * factor,
            sugar_g=self.sugar_g * factor,
            sodium_mg=self.sodium_mg * factor,
        )


#: Category prototypes per 100 g: (kcal, protein, fat, carb, fiber,
#: sugar, sodium_mg).  Magnitudes follow standard food-composition
#: tables at category granularity.
_CATEGORY_PROTOTYPES: dict[Category, tuple[float, ...]] = {
    Category.VEGETABLE: (35, 2.0, 0.3, 7.0, 2.8, 3.0, 30),
    Category.DAIRY: (150, 8.0, 11.0, 5.0, 0.0, 5.0, 120),
    Category.LEGUME: (120, 8.5, 0.8, 20.0, 7.5, 1.5, 10),
    Category.MAIZE: (110, 3.2, 1.5, 22.0, 2.5, 3.5, 15),
    Category.CEREAL: (340, 11.0, 2.5, 70.0, 8.0, 1.0, 5),
    Category.MEAT: (220, 24.0, 14.0, 0.5, 0.0, 0.0, 80),
    Category.NUTS_AND_SEEDS: (580, 18.0, 50.0, 18.0, 8.0, 4.0, 10),
    Category.PLANT: (45, 3.0, 0.5, 8.0, 3.5, 2.0, 40),
    Category.FISH: (150, 22.0, 7.0, 0.0, 0.0, 0.0, 90),
    Category.SEAFOOD: (100, 19.0, 2.0, 2.0, 0.0, 0.0, 300),
    Category.SPICE: (280, 11.0, 7.0, 50.0, 25.0, 3.0, 60),
    Category.BAKERY: (290, 9.0, 5.0, 52.0, 3.0, 6.0, 450),
    Category.BEVERAGE_ALCOHOLIC: (220, 0.2, 0.0, 8.0, 0.0, 6.0, 10),
    Category.BEVERAGE: (40, 0.5, 0.2, 9.5, 0.2, 8.5, 15),
    Category.ESSENTIAL_OIL: (880, 0.0, 100.0, 0.0, 0.0, 0.0, 2),
    Category.FLOWER: (30, 1.5, 0.3, 6.0, 2.0, 2.5, 10),
    Category.FRUIT: (60, 0.8, 0.3, 15.0, 2.5, 11.0, 2),
    Category.FUNGUS: (28, 3.1, 0.3, 4.3, 1.5, 1.7, 5),
    Category.HERB: (40, 3.0, 0.8, 7.0, 3.5, 1.0, 25),
    Category.ADDITIVE: (330, 1.0, 3.0, 75.0, 0.5, 55.0, 800),
    Category.DISH: (180, 7.0, 8.0, 20.0, 2.0, 4.0, 500),
}

#: Relative per-ingredient variation around the prototype.
_VARIATION = 0.25


class NutritionTable:
    """Per-ingredient nutrient profiles for one lexicon."""

    def __init__(self, profiles: dict[int, NutrientProfile]):
        self._profiles = dict(profiles)

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, ingredient_id: int) -> bool:
        return ingredient_id in self._profiles

    def profile_of(self, ingredient_id: int) -> NutrientProfile:
        """Profile of an ingredient.

        Raises:
            KeyError: For ids missing from the table.
        """
        return self._profiles[ingredient_id]

    def recipe_profile(self, ingredient_ids) -> NutrientProfile:
        """Mean per-ingredient profile of a recipe.

        Treats each ingredient as contributing an equal 100 g basis —
        the right granularity for corpus-level contrasts (real serving
        weights are unavailable, as in the source data).
        """
        ids = list(ingredient_ids)
        if not ids:
            raise ValueError("recipe has no ingredients")
        total = self._profiles[ids[0]]
        for ingredient_id in ids[1:]:
            total = total.combined(self._profiles[ingredient_id])
        return total.scaled(1.0 / len(ids))


def build_nutrition_table(
    lexicon: Lexicon, seed: SeedLike = 13
) -> NutritionTable:
    """Deterministic synthetic nutrition table for a lexicon.

    Compound ingredients average their components' profiles (nested
    compounds resolve recursively); simple ingredients perturb their
    category prototype by ±25% per nutrient.
    """
    rng = ensure_rng(seed)
    profiles: dict[int, NutrientProfile] = {}

    for ingredient in sorted(
        lexicon.simple_ingredients, key=lambda i: i.ingredient_id
    ):
        base = np.array(_CATEGORY_PROTOTYPES[ingredient.category])
        noise = rng.uniform(1 - _VARIATION, 1 + _VARIATION, size=base.size)
        values = base * noise
        profiles[ingredient.ingredient_id] = NutrientProfile(*values)

    def resolve_compound(name: str, depth: int = 0) -> NutrientProfile:
        ingredient = lexicon.by_name(name)
        existing = profiles.get(ingredient.ingredient_id)
        if existing is not None:
            return existing
        if depth > 5:  # defensive: seed data nests at most one level
            prototype = _CATEGORY_PROTOTYPES[ingredient.category]
            return NutrientProfile(*prototype)
        component_profiles = [
            resolve_compound(component, depth + 1)
            for component in ingredient.components
        ]
        total = component_profiles[0]
        for profile in component_profiles[1:]:
            total = total.combined(profile)
        result = total.scaled(1.0 / len(component_profiles))
        profiles[ingredient.ingredient_id] = result
        return result

    for compound in lexicon.compound_ingredients:
        resolve_compound(compound.name)

    return NutritionTable(profiles)
