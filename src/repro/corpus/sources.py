"""The nine recipe aggregator websites the paper compiled from (Sec. II).

Used by the synthetic corpus generator to attribute each generated raw
record to a source (proportionally to the published per-source counts),
so the ETL pipeline exercises the same provenance bookkeeping the paper's
compilation required.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecipeSource", "SOURCES", "total_source_recipes", "source_weights"]


@dataclass(frozen=True)
class RecipeSource:
    """One recipe aggregator website.

    Attributes:
        key: Short machine key.
        name: Site name as printed in the paper.
        url: Site URL as printed in the paper.
        n_recipes: Recipes the paper attributes to this source.
    """

    key: str
    name: str
    url: str
    n_recipes: int


#: Sec. II, verbatim.  Counts sum to the paper's headline 158,544.
SOURCES: tuple[RecipeSource, ...] = (
    RecipeSource("geniuskitchen", "Genius Kitchen",
                 "http://www.geniuskitchen.com", 101226),
    RecipeSource("allrecipes", "Allrecipes", "http://allrecipes.com", 16131),
    RecipeSource("foodnetwork", "Food Network",
                 "https://www.foodnetwork.com", 15771),
    RecipeSource("epicurious", "Epicurious",
                 "https://www.epicurious.com", 11022),
    RecipeSource("tasteau", "Taste AU", "https://www.taste.com.au", 7633),
    RecipeSource("thespruce", "The Spruce", "https://www.thespruce.com", 3830),
    RecipeSource("tarladalal", "TarlaDalal", "http://www.tarladalal.com", 2538),
    RecipeSource("mykoreankitchen", "My Korean Kitchen",
                 "https://mykoreankitchen.com", 198),
    RecipeSource("kraftrecipes", "Kraft Recipes",
                 "http://www.kraftrecipes.com", 195),
)


def total_source_recipes() -> int:
    """Sum of per-source recipe counts (the paper's 158,544)."""
    return sum(source.n_recipes for source in SOURCES)


def source_weights() -> dict[str, float]:
    """Source key -> fraction of the total corpus."""
    total = total_source_recipes()
    return {source.key: source.n_recipes / total for source in SOURCES}
