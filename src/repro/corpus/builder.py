"""The data compilation (ETL) pipeline of Sec. II.

Turns raw website records into a standardized :class:`RecipeDataset`:

1. resolve each free-text ingredient mention through the aliasing
   protocol against the lexicon;
2. drop mentions that resolve to nothing (the paper's lexicon filtering);
3. deduplicate resolved entities within a recipe (recipes are sets);
4. enforce the paper's validity bounds on recipe size (2-38 after
   standardization; Fig. 1 reports the distribution is bounded there);
5. attach the region-level annotation as the recipe's cuisine.

The pipeline reports per-stage counts so data-quality loss is visible,
mirroring the care a real compilation requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.config import PAPER
from repro.corpus.dataset import RecipeDataset
from repro.corpus.recipe import RawRecipe, Recipe
from repro.corpus.regions import get_region
from repro.errors import UnknownRegionError
from repro.lexicon.lexicon import Lexicon

__all__ = [
    "CompilationReport",
    "CompilationResult",
    "compile_corpus",
    "compile_corpus_columnar",
]


@dataclass
class CompilationReport:
    """Per-stage bookkeeping for one compilation run.

    Attributes:
        n_raw: Raw records received.
        n_compiled: Standardized recipes produced.
        n_dropped_unknown_region: Records with unresolvable region labels.
        n_dropped_too_small: Records below the minimum size after
            standardization.
        n_dropped_too_large: Records above the maximum size.
        n_mentions_total: Ingredient mentions seen.
        n_mentions_resolved: Mentions the aliasing protocol resolved.
        unresolved_samples: Up to 50 distinct unresolved mention strings,
            useful for extending the alias table.
    """

    n_raw: int = 0
    n_compiled: int = 0
    n_dropped_unknown_region: int = 0
    n_dropped_too_small: int = 0
    n_dropped_too_large: int = 0
    n_mentions_total: int = 0
    n_mentions_resolved: int = 0
    unresolved_samples: list[str] = field(default_factory=list)

    @property
    def resolution_rate(self) -> float:
        """Fraction of mentions the protocol resolved."""
        if self.n_mentions_total == 0:
            return 0.0
        return self.n_mentions_resolved / self.n_mentions_total

    def record_unresolved(self, mention: str, limit: int = 50) -> None:
        if len(self.unresolved_samples) < limit and mention not in self.unresolved_samples:
            self.unresolved_samples.append(mention)


@dataclass(frozen=True)
class CompilationResult:
    """Output of :func:`compile_corpus`."""

    dataset: RecipeDataset
    report: CompilationReport


def compile_corpus(
    raw_recipes: Iterable[RawRecipe],
    lexicon: Lexicon,
    min_size: int = PAPER.recipe_size_min,
    max_size: int = PAPER.recipe_size_max,
    start_recipe_id: int = 0,
) -> CompilationResult:
    """Standardize raw records into a :class:`RecipeDataset`.

    Args:
        raw_recipes: Raw website records.
        lexicon: Standardized ingredient dictionary to resolve against.
        min_size: Minimum distinct-ingredient count to keep a recipe.
        max_size: Maximum distinct-ingredient count to keep a recipe.
        start_recipe_id: First recipe id to assign.

    Returns:
        The standardized dataset plus a :class:`CompilationReport`.
    """
    report = CompilationReport()
    recipes = list(
        _standardize(
            raw_recipes, lexicon, min_size, max_size, start_recipe_id, report
        )
    )
    report.n_compiled = len(recipes)
    return CompilationResult(dataset=RecipeDataset(recipes), report=report)


def _standardize(
    raw_recipes: Iterable[RawRecipe],
    lexicon: Lexicon,
    min_size: int,
    max_size: int,
    start_recipe_id: int,
    report: CompilationReport,
) -> Iterator[Recipe]:
    """The per-record ETL core, yielding standardized recipes lazily.

    Shared by the eager :func:`compile_corpus` and the streaming
    :func:`compile_corpus_columnar`; mutates ``report`` as it goes.
    """
    next_id = start_recipe_id
    for raw in raw_recipes:
        report.n_raw += 1
        try:
            region = get_region(raw.region)
        except UnknownRegionError:
            report.n_dropped_unknown_region += 1
            continue

        resolved_ids: set[int] = set()
        for mention in raw.mentions:
            report.n_mentions_total += 1
            resolution = lexicon.resolve(mention)
            if resolution.ingredient is None:
                report.record_unresolved(mention)
                continue
            report.n_mentions_resolved += 1
            resolved_ids.add(resolution.ingredient.ingredient_id)

        if len(resolved_ids) < min_size:
            report.n_dropped_too_small += 1
            continue
        if len(resolved_ids) > max_size:
            report.n_dropped_too_large += 1
            continue

        yield Recipe(
            recipe_id=next_id,
            region_code=region.code,
            ingredient_ids=tuple(sorted(resolved_ids)),
            title=raw.title,
            source=raw.source,
        )
        next_id += 1


def compile_corpus_columnar(
    raw_recipes: Iterable[RawRecipe],
    lexicon: Lexicon,
    path: str | Path,
    min_size: int = PAPER.recipe_size_min,
    max_size: int = PAPER.recipe_size_max,
    start_recipe_id: int = 0,
    chunk_size: int = 8192,
    store_text: bool = True,
    bitplanes: bool = True,
):
    """Standardize raw records straight into a columnar container.

    The streaming counterpart of :func:`compile_corpus`: recipes flow
    from the ETL generator into a
    :class:`~repro.storage.columnar.ColumnarWriter` ``chunk_size`` at a
    time, so arbitrarily large raw feeds compile in bounded memory —
    no :class:`RecipeDataset` (or recipe list) is ever built.

    Args:
        raw_recipes: Raw website records (any iterable, consumed once).
        lexicon: Standardized ingredient dictionary to resolve against.
        path: Target columnar file.
        min_size: Minimum distinct-ingredient count to keep a recipe.
        max_size: Maximum distinct-ingredient count to keep a recipe.
        start_recipe_id: First recipe id to assign.
        chunk_size: Recipes buffered per columnar flush.
        store_text: Keep titles/sources in the container.
        bitplanes: Build per-cuisine packed-bit mining planes.

    Returns:
        ``(corpus, report)`` — the opened
        :class:`~repro.storage.columnar.ColumnarCorpus` and the same
        :class:`CompilationReport` :func:`compile_corpus` produces.
    """
    from repro.storage.columnar import ColumnarCorpus, ColumnarWriter

    report = CompilationReport()
    with ColumnarWriter(
        path, store_text=store_text, bitplanes=bitplanes
    ) as writer:
        writer.add_recipes(
            _standardize(
                raw_recipes, lexicon, min_size, max_size, start_recipe_id,
                report,
            ),
            chunk_size=chunk_size,
        )
    corpus = ColumnarCorpus.open(path)
    report.n_compiled = corpus.n_recipes
    return corpus, report
