"""Dataset combination utilities.

The paper's compilation merges nine website extractions into one corpus;
these helpers support the same workflow over our datasets: concatenation
with id reassignment, and deterministic subsampling for scale studies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.corpus.dataset import RecipeDataset
from repro.corpus.recipe import Recipe
from repro.errors import CorpusError
from repro.rng import SeedLike, ensure_rng

__all__ = ["merge_datasets", "subsample_dataset", "reassign_ids"]


def reassign_ids(
    recipes: Iterable[Recipe], start_id: int = 0
) -> list[Recipe]:
    """Copy recipes with fresh sequential ids, preserving order."""
    return [
        Recipe(
            recipe_id=start_id + offset,
            region_code=recipe.region_code,
            ingredient_ids=recipe.ingredient_ids,
            title=recipe.title,
            source=recipe.source,
        )
        for offset, recipe in enumerate(recipes)
    ]


def merge_datasets(
    datasets: Sequence[RecipeDataset],
    reassign: bool = True,
) -> RecipeDataset:
    """Concatenate datasets into one.

    Args:
        datasets: Datasets in merge order.
        reassign: Assign fresh sequential ids (required whenever inputs
            share id ranges).  With ``reassign=False``, overlapping ids
            raise :class:`~repro.errors.CorpusError`.

    Returns:
        The merged dataset.
    """
    if not datasets:
        raise CorpusError("no datasets to merge")
    combined: list[Recipe] = []
    for dataset in datasets:
        combined.extend(dataset.recipes)
    if reassign:
        combined = reassign_ids(combined)
    return RecipeDataset(combined)


def subsample_dataset(
    dataset: RecipeDataset,
    fraction: float,
    seed: SeedLike = None,
    per_cuisine: bool = True,
    min_per_cuisine: int = 1,
) -> RecipeDataset:
    """Random subsample of a dataset, preserving cuisine structure.

    Args:
        dataset: Source corpus.
        fraction: Fraction of recipes to keep, in (0, 1].
        seed: RNG seed for a reproducible draw.
        per_cuisine: Sample within each cuisine (keeps every cuisine
            represented) instead of globally.
        min_per_cuisine: Floor on per-cuisine sample size.

    Returns:
        A new dataset with reassigned ids.
    """
    if not 0.0 < fraction <= 1.0:
        raise CorpusError(f"fraction must be in (0, 1], got {fraction}")
    rng = ensure_rng(seed)
    chosen: list[Recipe] = []
    if per_cuisine:
        for code in dataset.region_codes():
            recipes = dataset.cuisine(code).recipes
            keep = max(min_per_cuisine, int(round(len(recipes) * fraction)))
            keep = min(keep, len(recipes))
            rows = rng.choice(len(recipes), size=keep, replace=False)
            chosen.extend(recipes[int(row)] for row in np.sort(rows))
    else:
        recipes = dataset.recipes
        keep = max(1, int(round(len(recipes) * fraction)))
        rows = rng.choice(len(recipes), size=keep, replace=False)
        chosen.extend(recipes[int(row)] for row in np.sort(rows))
    return RecipeDataset(reassign_ids(chosen))
