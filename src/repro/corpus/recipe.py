"""Recipe datatypes.

Two levels mirror the paper's pipeline:

* :class:`RawRecipe` — a record as scraped from a website: free-text
  ingredient mentions plus multi-level geo-cultural annotation.
* :class:`Recipe` — a standardized record after the aliasing protocol:
  a set of lexicon ingredient ids under a single cuisine (region) code.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RawRecipe", "Recipe"]


@dataclass(frozen=True)
class RawRecipe:
    """A recipe as it would arrive from a recipe aggregator website.

    Attributes:
        raw_id: Unique id within its batch.
        title: Recipe display title.
        mentions: Free-text ingredient mentions, one per ingredient line
            (e.g. ``"2 cups finely chopped fresh cilantro leaves"``).
        continent: Continent-level geo-cultural annotation.
        region: Region-level annotation (the paper's "cuisine" level).
        country: Country-level annotation, possibly empty.
        source: Key of the aggregator website the record came from.
        instructions: Cooking procedure text (carried, not analyzed).
    """

    raw_id: int
    title: str
    mentions: tuple[str, ...]
    continent: str
    region: str
    country: str = ""
    source: str = ""
    instructions: str = ""

    def __post_init__(self) -> None:
        if not self.mentions:
            raise ValueError(f"raw recipe {self.raw_id} has no ingredient mentions")


@dataclass(frozen=True)
class Recipe:
    """A standardized recipe: a set of lexicon ingredient ids.

    The paper treats a recipe as the *set* of its standardized
    ingredients; sizes are therefore unique-ingredient counts.

    Attributes:
        recipe_id: Unique id within its dataset.
        region_code: Cuisine code (one of the 25 region codes).
        ingredient_ids: Sorted, duplicate-free lexicon ids.
        title: Optional display title.
        source: Optional aggregator key the recipe came from.
    """

    recipe_id: int
    region_code: str
    ingredient_ids: tuple[int, ...]
    title: str = ""
    source: str = ""

    def __post_init__(self) -> None:
        ids = self.ingredient_ids
        if not ids:
            raise ValueError(f"recipe {self.recipe_id} has no ingredients")
        deduplicated = tuple(sorted(set(ids)))
        if deduplicated != ids:
            object.__setattr__(self, "ingredient_ids", deduplicated)

    @property
    def size(self) -> int:
        """Number of distinct ingredients (the paper's recipe size)."""
        return len(self.ingredient_ids)

    def contains(self, ingredient_id: int) -> bool:
        """Membership test without building a set."""
        ids = self.ingredient_ids
        lo, hi = 0, len(ids)
        while lo < hi:
            mid = (lo + hi) // 2
            if ids[mid] < ingredient_id:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(ids) and ids[lo] == ingredient_id

    def replace_ingredients(self, ingredient_ids: tuple[int, ...]) -> "Recipe":
        """Copy of this recipe with a different ingredient set."""
        return Recipe(
            recipe_id=self.recipe_id,
            region_code=self.region_code,
            ingredient_ids=ingredient_ids,
            title=self.title,
            source=self.source,
        )
