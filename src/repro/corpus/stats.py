"""Descriptive corpus statistics (Sec. II narrative numbers).

Computes the quantities the paper reports when describing its dataset:
per-cuisine recipe and ingredient counts, averages across cuisines, and
recipe size summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.dataset import CuisineView, RecipeDataset
from repro.errors import EmptyCorpusError

__all__ = ["CuisineStats", "CorpusStats", "cuisine_stats", "corpus_stats"]


@dataclass(frozen=True)
class CuisineStats:
    """Summary statistics for one cuisine.

    Attributes:
        region_code: Cuisine code.
        n_recipes: Recipe count (Table I column 2).
        n_ingredients: Unique ingredient count (Table I column 3).
        avg_recipe_size: Mean distinct-ingredient count per recipe.
        min_recipe_size: Smallest recipe.
        max_recipe_size: Largest recipe.
        phi: Unique ingredients / recipes (Algorithm 1's φ).
    """

    region_code: str
    n_recipes: int
    n_ingredients: int
    avg_recipe_size: float
    min_recipe_size: int
    max_recipe_size: int
    phi: float


@dataclass(frozen=True)
class CorpusStats:
    """Whole-corpus summary (the Sec. II narrative).

    Attributes:
        n_recipes: Total recipes.
        n_cuisines: Number of cuisines present.
        avg_recipes_per_cuisine: The paper reports 6338.
        avg_ingredients_per_cuisine: The paper reports 421.
        largest_cuisine: (code, recipe count) — the paper: ITA, 23179.
        smallest_cuisine: (code, recipe count) — the paper: CAM, 470.
        mean_recipe_size: Aggregate mean size — the paper: approx. 9.
        per_cuisine: Per-cuisine records in region-code order.
    """

    n_recipes: int
    n_cuisines: int
    avg_recipes_per_cuisine: float
    avg_ingredients_per_cuisine: float
    largest_cuisine: tuple[str, int]
    smallest_cuisine: tuple[str, int]
    mean_recipe_size: float
    per_cuisine: tuple[CuisineStats, ...]


def cuisine_stats(view: CuisineView) -> CuisineStats:
    """Compute :class:`CuisineStats` for one cuisine view."""
    if not view:
        raise EmptyCorpusError(f"cuisine {view.region_code!r} has no recipes")
    sizes = view.sizes()
    return CuisineStats(
        region_code=view.region_code,
        n_recipes=view.n_recipes,
        n_ingredients=view.n_ingredients,
        avg_recipe_size=float(sizes.mean()),
        min_recipe_size=int(sizes.min()),
        max_recipe_size=int(sizes.max()),
        phi=view.phi(),
    )


def corpus_stats(dataset: RecipeDataset) -> CorpusStats:
    """Compute :class:`CorpusStats` for a full dataset."""
    if not dataset:
        raise EmptyCorpusError("dataset has no recipes")
    per_cuisine = tuple(
        cuisine_stats(dataset.cuisine(code)) for code in dataset.region_codes()
    )
    recipe_counts = [(stats.region_code, stats.n_recipes) for stats in per_cuisine]
    largest = max(recipe_counts, key=lambda item: item[1])
    smallest = min(recipe_counts, key=lambda item: item[1])
    return CorpusStats(
        n_recipes=len(dataset),
        n_cuisines=len(per_cuisine),
        avg_recipes_per_cuisine=float(
            np.mean([stats.n_recipes for stats in per_cuisine])
        ),
        avg_ingredients_per_cuisine=float(
            np.mean([stats.n_ingredients for stats in per_cuisine])
        ),
        largest_cuisine=largest,
        smallest_cuisine=smallest,
        mean_recipe_size=float(dataset.sizes().mean()),
        per_cuisine=per_cuisine,
    )
