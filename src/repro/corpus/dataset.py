"""Recipe dataset containers.

:class:`RecipeDataset` holds standardized recipes for the whole world
corpus; :class:`CuisineView` is a lightweight per-region view exposing
exactly the quantities the paper computes per cuisine (recipe count,
vocabulary, average recipe size, the φ ratio of Algorithm 1, ...).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.corpus.recipe import Recipe
from repro.corpus.regions import get_region
from repro.errors import CorpusError, EmptyCorpusError

__all__ = ["RecipeDataset", "CuisineView"]


class CuisineView:
    """All recipes of one cuisine (region) within a dataset.

    Thin immutable view; analytics modules take these as input.
    """

    def __init__(self, region_code: str, recipes: Sequence[Recipe]):
        self._region_code = region_code
        self._recipes = tuple(recipes)
        for recipe in self._recipes:
            if recipe.region_code != region_code:
                raise CorpusError(
                    f"recipe {recipe.recipe_id} belongs to "
                    f"{recipe.region_code!r}, not {region_code!r}"
                )

    @property
    def region_code(self) -> str:
        return self._region_code

    @property
    def recipes(self) -> tuple[Recipe, ...]:
        return self._recipes

    def __len__(self) -> int:
        return len(self._recipes)

    def __iter__(self) -> Iterator[Recipe]:
        return iter(self._recipes)

    def __bool__(self) -> bool:
        return bool(self._recipes)

    # ------------------------------------------------------------------
    # Paper quantities
    # ------------------------------------------------------------------

    @property
    def n_recipes(self) -> int:
        """N in Algorithm 1: total recipes in the cuisine."""
        return len(self._recipes)

    def ingredient_universe(self) -> tuple[int, ...]:
        """Sorted unique ingredient ids used by this cuisine (I)."""
        universe: set[int] = set()
        for recipe in self._recipes:
            universe.update(recipe.ingredient_ids)
        return tuple(sorted(universe))

    @property
    def n_ingredients(self) -> int:
        """Unique ingredient count (the Table I 'Ingredients' column)."""
        return len(self.ingredient_universe())

    def average_recipe_size(self) -> float:
        """s̄ in Algorithm 1: mean distinct-ingredient count per recipe."""
        self._require_nonempty()
        return float(np.mean([recipe.size for recipe in self._recipes]))

    def phi(self) -> float:
        """φ in Algorithm 1: unique ingredients / recipes."""
        self._require_nonempty()
        return self.n_ingredients / self.n_recipes

    def sizes(self) -> np.ndarray:
        """Recipe sizes as an integer array (Fig. 1 input)."""
        return np.array([recipe.size for recipe in self._recipes], dtype=np.int64)

    def ingredient_recipe_counts(self) -> Counter:
        """ingredient id -> number of recipes containing it (n_i of Eq. 1)."""
        counts: Counter = Counter()
        for recipe in self._recipes:
            counts.update(recipe.ingredient_ids)
        return counts

    def as_id_sets(self) -> list[frozenset[int]]:
        """Recipes as frozensets of ingredient ids (mining input)."""
        return [frozenset(recipe.ingredient_ids) for recipe in self._recipes]

    def _require_nonempty(self) -> None:
        if not self._recipes:
            raise EmptyCorpusError(
                f"cuisine {self._region_code!r} has no recipes"
            )


class RecipeDataset:
    """The full multi-cuisine recipe corpus.

    Iterable over recipes; indexable by region code via :meth:`cuisine`.
    """

    def __init__(self, recipes: Iterable[Recipe]):
        self._recipes: tuple[Recipe, ...] = tuple(recipes)
        by_region: dict[str, list[Recipe]] = {}
        seen_ids: set[int] = set()
        for recipe in self._recipes:
            if recipe.recipe_id in seen_ids:
                raise CorpusError(f"duplicate recipe id {recipe.recipe_id}")
            seen_ids.add(recipe.recipe_id)
            by_region.setdefault(recipe.region_code, []).append(recipe)
        self._views = {
            code: CuisineView(code, recipes_)
            for code, recipes_ in by_region.items()
        }

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._recipes)

    def __iter__(self) -> Iterator[Recipe]:
        return iter(self._recipes)

    def __bool__(self) -> bool:
        return bool(self._recipes)

    @property
    def recipes(self) -> tuple[Recipe, ...]:
        return self._recipes

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def region_codes(self) -> tuple[str, ...]:
        """Region codes present, sorted."""
        return tuple(sorted(self._views))

    def cuisine(self, region_code: str) -> CuisineView:
        """The per-cuisine view for ``region_code``.

        Accepts codes or full region names (resolved through the Table I
        registry); unknown regions raise, and known regions with no
        recipes return an empty view.
        """
        code = region_code if region_code in self._views else get_region(region_code).code
        view = self._views.get(code)
        if view is None:
            return CuisineView(code, ())
        return view

    def cuisines(self) -> dict[str, CuisineView]:
        """All per-cuisine views keyed by region code."""
        return dict(self._views)

    def filter(self, predicate: Callable[[Recipe], bool]) -> "RecipeDataset":
        """New dataset containing recipes satisfying ``predicate``."""
        return RecipeDataset(r for r in self._recipes if predicate(r))

    def subset(self, region_codes: Iterable[str]) -> "RecipeDataset":
        """New dataset restricted to the given regions."""
        wanted = {get_region(code).code for code in region_codes}
        return self.filter(lambda recipe: recipe.region_code in wanted)

    # ------------------------------------------------------------------
    # Aggregate quantities
    # ------------------------------------------------------------------

    def total_recipes_by_region(self) -> dict[str, int]:
        """Region code -> recipe count."""
        return {code: len(view) for code, view in self._views.items()}

    def ingredient_universe(self) -> tuple[int, ...]:
        """Sorted unique ingredient ids across the whole corpus."""
        universe: set[int] = set()
        for recipe in self._recipes:
            universe.update(recipe.ingredient_ids)
        return tuple(sorted(universe))

    def global_ingredient_recipe_counts(self) -> Counter:
        """ingredient id -> recipe count across all cuisines.

        This is Eq. 1's global term numerator (Σ_c n_i^c).
        """
        counts: Counter = Counter()
        for recipe in self._recipes:
            counts.update(recipe.ingredient_ids)
        return counts

    def sizes(self) -> np.ndarray:
        """All recipe sizes (aggregate Fig. 1 inset input)."""
        return np.array([recipe.size for recipe in self._recipes], dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecipeDataset({len(self._recipes)} recipes, "
            f"{len(self._views)} cuisines)"
        )
