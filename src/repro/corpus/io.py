"""Dataset persistence: JSON-lines, CSV, pickle and columnar round-trips.

JSONL is the primary text format (one recipe per line,
order-preserving); CSV is provided for interoperability with
spreadsheet tooling.  Pickle is the fastest whole-object snapshot —
and the baseline the storage benchmark measures the columnar format
against.  :func:`save_columnar`/:func:`load_columnar` delegate to
:mod:`repro.storage.columnar`, the memory-mapped format that scales
past what any eager loader should attempt (DESIGN.md §11).  All
formats round-trip exactly.
"""

from __future__ import annotations

import csv
import json
import pickle
from pathlib import Path
from typing import Iterable

from repro.corpus.dataset import RecipeDataset
from repro.corpus.recipe import RawRecipe, Recipe
from repro.errors import SerializationError

__all__ = [
    "save_jsonl",
    "load_jsonl",
    "save_csv",
    "load_csv",
    "save_pickle",
    "load_pickle",
    "save_columnar",
    "load_columnar",
    "save_raw_jsonl",
    "load_raw_jsonl",
]


def _recipe_to_record(recipe: Recipe) -> dict:
    return {
        "recipe_id": recipe.recipe_id,
        "region_code": recipe.region_code,
        "ingredient_ids": list(recipe.ingredient_ids),
        "title": recipe.title,
        "source": recipe.source,
    }


def _recipe_from_record(record: dict, line_number: int) -> Recipe:
    try:
        return Recipe(
            recipe_id=int(record["recipe_id"]),
            region_code=str(record["region_code"]),
            ingredient_ids=tuple(int(i) for i in record["ingredient_ids"]),
            title=str(record.get("title", "")),
            source=str(record.get("source", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed recipe record at line {line_number}: {exc}"
        ) from exc


def save_jsonl(dataset: RecipeDataset | Iterable[Recipe], path: str | Path) -> int:
    """Write recipes to a JSONL file; returns the number written."""
    recipes = dataset.recipes if isinstance(dataset, RecipeDataset) else tuple(dataset)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for recipe in recipes:
            handle.write(json.dumps(_recipe_to_record(recipe)) + "\n")
    return len(recipes)


def load_jsonl(path: str | Path) -> RecipeDataset:
    """Read a JSONL file written by :func:`save_jsonl`."""
    source = Path(path)
    if not source.exists():
        raise SerializationError(f"no such dataset file: {source}")
    recipes = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"invalid JSON at line {line_number} of {source}: {exc}"
                ) from exc
            recipes.append(_recipe_from_record(record, line_number))
    return RecipeDataset(recipes)


def save_pickle(
    dataset: RecipeDataset | Iterable[Recipe], path: str | Path
) -> int:
    """Snapshot a dataset to a pickle; returns the number of recipes.

    The eager-load baseline: fastest for small corpora, but load time
    and memory scale with the whole corpus.  Prefer
    :func:`save_columnar` once corpora stop fitting comfortably.
    """
    recipes = (
        dataset.recipes
        if isinstance(dataset, RecipeDataset)
        else tuple(dataset)
    )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("wb") as handle:
        pickle.dump(recipes, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return len(recipes)


def load_pickle(path: str | Path) -> RecipeDataset:
    """Read a pickle written by :func:`save_pickle`."""
    source = Path(path)
    if not source.exists():
        raise SerializationError(f"no such dataset file: {source}")
    try:
        with source.open("rb") as handle:
            recipes = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise SerializationError(
            f"unreadable dataset pickle {source}: {exc}"
        ) from exc
    return RecipeDataset(recipes)


def save_columnar(
    dataset: RecipeDataset | Iterable[Recipe],
    path: str | Path,
    store_text: bool = True,
    bitplanes: bool = True,
) -> int:
    """Pack a dataset into the columnar container (DESIGN.md §11).

    Returns the number of recipes written.  For corpora too large to
    hold as objects at all, stream directly with
    :meth:`repro.synthesis.worldgen.WorldKitchen.generate_columnar` or
    a :class:`repro.storage.columnar.ColumnarWriter` instead.
    """
    from repro.storage.columnar import pack_dataset

    with pack_dataset(
        dataset, path, store_text=store_text, bitplanes=bitplanes
    ) as corpus:
        return corpus.n_recipes


def load_columnar(path: str | Path):
    """Open a columnar container memory-mapped (no materialization).

    Returns a :class:`repro.storage.columnar.ColumnarCorpus`; call its
    ``to_dataset()`` for the eager object view.
    """
    from repro.storage.columnar import ColumnarCorpus

    return ColumnarCorpus.open(path)


_CSV_FIELDS = ("recipe_id", "region_code", "ingredient_ids", "title", "source")


def save_csv(dataset: RecipeDataset | Iterable[Recipe], path: str | Path) -> int:
    """Write recipes to CSV (ingredient ids space-separated)."""
    recipes = dataset.recipes if isinstance(dataset, RecipeDataset) else tuple(dataset)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for recipe in recipes:
            writer.writerow(
                {
                    "recipe_id": recipe.recipe_id,
                    "region_code": recipe.region_code,
                    "ingredient_ids": " ".join(map(str, recipe.ingredient_ids)),
                    "title": recipe.title,
                    "source": recipe.source,
                }
            )
    return len(recipes)


def load_csv(path: str | Path) -> RecipeDataset:
    """Read a CSV file written by :func:`save_csv`."""
    source = Path(path)
    if not source.exists():
        raise SerializationError(f"no such dataset file: {source}")
    recipes = []
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        for line_number, row in enumerate(reader, start=2):
            try:
                ids = tuple(int(i) for i in row["ingredient_ids"].split())
                recipes.append(
                    Recipe(
                        recipe_id=int(row["recipe_id"]),
                        region_code=row["region_code"],
                        ingredient_ids=ids,
                        title=row.get("title", ""),
                        source=row.get("source", ""),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SerializationError(
                    f"malformed CSV row at line {line_number}: {exc}"
                ) from exc
    return RecipeDataset(recipes)


def save_raw_jsonl(raw_recipes: Iterable[RawRecipe], path: str | Path) -> int:
    """Write raw (pre-standardization) records to JSONL."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w", encoding="utf-8") as handle:
        for raw in raw_recipes:
            handle.write(
                json.dumps(
                    {
                        "raw_id": raw.raw_id,
                        "title": raw.title,
                        "mentions": list(raw.mentions),
                        "continent": raw.continent,
                        "region": raw.region,
                        "country": raw.country,
                        "source": raw.source,
                        "instructions": raw.instructions,
                    }
                )
                + "\n"
            )
            count += 1
    return count


def load_raw_jsonl(path: str | Path) -> list[RawRecipe]:
    """Read raw records written by :func:`save_raw_jsonl`."""
    source = Path(path)
    if not source.exists():
        raise SerializationError(f"no such raw dataset file: {source}")
    raw_recipes = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                raw_recipes.append(
                    RawRecipe(
                        raw_id=int(record["raw_id"]),
                        title=str(record["title"]),
                        mentions=tuple(record["mentions"]),
                        continent=str(record["continent"]),
                        region=str(record["region"]),
                        country=str(record.get("country", "")),
                        source=str(record.get("source", "")),
                        instructions=str(record.get("instructions", "")),
                    )
                )
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
                raise SerializationError(
                    f"malformed raw record at line {line_number}: {exc}"
                ) from exc
    return raw_recipes
