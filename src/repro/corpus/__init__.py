"""Recipe corpus substrate (Sec. II).

Datatypes (:class:`Recipe`, :class:`RawRecipe`), the 25-region Table I
registry, the nine-source registry, dataset containers with per-cuisine
views, JSONL/CSV persistence, descriptive statistics and the raw-to-
standardized compilation pipeline.
"""

from repro.corpus.builder import (
    CompilationReport,
    CompilationResult,
    compile_corpus,
    compile_corpus_columnar,
)
from repro.corpus.dataset import CuisineView, RecipeDataset
from repro.corpus.io import (
    load_columnar,
    load_csv,
    load_jsonl,
    load_pickle,
    load_raw_jsonl,
    save_columnar,
    save_csv,
    save_jsonl,
    save_pickle,
    save_raw_jsonl,
)
from repro.corpus.merge import merge_datasets, reassign_ids, subsample_dataset
from repro.corpus.recipe import RawRecipe, Recipe
from repro.corpus.regions import (
    ALL_REGION_CODES,
    REGIONS,
    Region,
    get_region,
    iter_regions,
)
from repro.corpus.sources import (
    SOURCES,
    RecipeSource,
    source_weights,
    total_source_recipes,
)
from repro.corpus.stats import CorpusStats, CuisineStats, corpus_stats, cuisine_stats

__all__ = [
    "CompilationReport",
    "CompilationResult",
    "compile_corpus",
    "compile_corpus_columnar",
    "CuisineView",
    "RecipeDataset",
    "load_columnar",
    "load_csv",
    "load_jsonl",
    "load_pickle",
    "load_raw_jsonl",
    "save_columnar",
    "save_csv",
    "save_jsonl",
    "save_pickle",
    "save_raw_jsonl",
    "merge_datasets",
    "reassign_ids",
    "subsample_dataset",
    "RawRecipe",
    "Recipe",
    "ALL_REGION_CODES",
    "REGIONS",
    "Region",
    "get_region",
    "iter_regions",
    "SOURCES",
    "RecipeSource",
    "source_weights",
    "total_source_recipes",
    "CorpusStats",
    "CuisineStats",
    "corpus_stats",
    "cuisine_stats",
]
