"""The paper's 25 geo-cultural regions and their Table I statistics.

Table I of the paper reports, per region: the region code, the number of
compiled recipes, the number of unique ingredients, and the top five
overrepresented ingredients.  These published values are the calibration
targets for the synthetic corpus and the reference data for the
``table1`` experiment.

Note: the paper's INSC row lists *six* "top-5" ingredients (an editorial
slip we preserve verbatim); and the per-region recipe counts sum to
158,442 while the per-source counts (Sec. II) sum to the headline
158,544 — a 102-recipe discrepancy in the published text, also preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownRegionError

__all__ = ["Region", "REGIONS", "ALL_REGION_CODES", "get_region", "iter_regions"]


@dataclass(frozen=True)
class Region:
    """One of the paper's 25 geo-cultural regions.

    Attributes:
        code: Short region code used throughout the paper (e.g. ``"ITA"``).
        name: Full region name as printed in Table I.
        continent: Coarse geographic grouping (our annotation; the paper
            stores a continent level in its multi-level annotation).
        n_recipes: Recipes compiled for this region (Table I).
        n_ingredients: Unique ingredients observed (Table I).
        overrepresented: Top overrepresented ingredients (Table I),
            lowercase canonical lexicon names, in printed order.
    """

    code: str
    name: str
    continent: str
    n_recipes: int
    n_ingredients: int
    overrepresented: tuple[str, ...]

    @property
    def ingredients_per_recipe_ratio(self) -> float:
        """The paper's φ for this cuisine: unique ingredients / recipes."""
        return self.n_ingredients / self.n_recipes


#: Table I, verbatim (ingredient names mapped to canonical lexicon form).
REGIONS: tuple[Region, ...] = (
    Region("AFR", "Africa", "Africa", 5465, 442,
           ("cumin", "cinnamon", "olive", "cilantro", "paprika")),
    Region("ANZ", "Australia & NZ", "Oceania", 6169, 463,
           ("butter", "egg", "sugar", "flour", "coconut")),
    Region("IRL", "Republic of Ireland", "Europe", 2702, 378,
           ("potato", "butter", "cream", "flour", "baking powder")),
    Region("CAN", "Canada", "North America", 7725, 483,
           ("baking powder", "sugar", "butter", "flour", "vanilla")),
    Region("CBN", "Caribbean", "North America", 3887, 417,
           ("lime", "rum", "pineapple", "allspice", "thyme")),
    Region("CHN", "China", "Asia", 7123, 442,
           ("soybean sauce", "sesame", "ginger", "corn", "chicken")),
    Region("DACH", "DACH Countries", "Europe", 4641, 430,
           ("flour", "egg", "butter", "sugar", "swiss cheese")),
    Region("EE", "Eastern Europe", "Europe", 3179, 383,
           ("flour", "egg", "butter", "cream", "salt")),
    Region("FRA", "France", "Europe", 9590, 511,
           ("butter", "egg", "vanilla", "milk", "cream")),
    Region("GRC", "Greece", "Europe", 5286, 405,
           ("olive", "feta cheese", "oregano", "lemon juice", "tomato")),
    Region("INSC", "Indian Subcontinent", "Asia", 10531, 462,
           ("cayenne", "turmeric", "cumin", "cilantro", "ginger",
            "garam masala")),
    Region("ITA", "Italy", "Europe", 23179, 506,
           ("olive", "parmesan cheese", "basil", "garlic", "tomato")),
    Region("JPN", "Japan", "Asia", 2884, 382,
           ("soybean sauce", "sesame", "ginger", "vinegar", "sake")),
    Region("KOR", "Korea", "Asia", 1228, 291,
           ("sesame", "soybean sauce", "garlic", "sugar", "ginger")),
    Region("MEX", "Mexico", "North America", 16065, 467,
           ("tortilla", "cilantro", "lime", "cumin", "tomato")),
    Region("ME", "Middle East", "Asia", 4858, 423,
           ("olive", "lemon juice", "parsley", "cumin", "mint")),
    Region("SCND", "Scandinavia", "Europe", 3026, 377,
           ("sugar", "flour", "butter", "egg", "milk")),
    Region("SAM", "South America", "South America", 7458, 457,
           ("beef", "onion", "pepper", "garlic", "mushroom")),
    Region("SEA", "South East Asia", "Asia", 2523, 361,
           ("fish", "sugar", "soybean sauce", "garlic", "lime")),
    Region("SP", "Spain", "Europe", 4154, 413,
           ("olive", "paprika", "garlic", "tomato", "parsley")),
    Region("THA", "Thailand", "Asia", 3795, 378,
           ("fish", "lime", "cilantro", "coconut milk", "soybean sauce")),
    Region("USA", "USA", "North America", 16026, 592,
           ("butter", "sugar", "vanilla", "flour", "mustard")),
    Region("BN", "Belgium-Netherlands", "Europe", 1116, 323,
           ("butter", "flour", "egg", "sugar", "milk")),
    Region("CAM", "Central America", "North America", 470, 294,
           ("salt", "tomato", "onion", "macaroni", "celery")),
    Region("UK", "United Kingdom", "Europe", 5380, 456,
           ("butter", "flour", "egg", "sugar", "milk")),
)

ALL_REGION_CODES: tuple[str, ...] = tuple(region.code for region in REGIONS)

_BY_CODE = {region.code: region for region in REGIONS}
_BY_NAME = {region.name.lower(): region for region in REGIONS}


def get_region(key: str | Region) -> Region:
    """Resolve a region code or full name to its :class:`Region`.

    Raises:
        UnknownRegionError: If ``key`` is not one of the 25 regions.
    """
    if isinstance(key, Region):
        return key
    text = str(key).strip()
    found = _BY_CODE.get(text.upper()) or _BY_NAME.get(text.lower())
    if found is None:
        raise UnknownRegionError(text)
    return found


def iter_regions() -> tuple[Region, ...]:
    """All 25 regions in Table I order."""
    return REGIONS
